//! End-to-end demo: extract a SCoP from C source, schedule it under a
//! JSON configuration, and print the resulting schedule.
//!
//! ```text
//! cargo run --example demo
//! cargo run --example demo -- feautrier
//! ```

use polytops::{analyze, frontend, schedule, schedule_respects_dependence, SchedulerConfig};

const SOURCE: &str = r#"
    double A[N];
    double B[N];
    double C[N];
    #pragma scop
    for (i = 0; i < N; i++)
        B[i] = A[i];
    for (j = 0; j < N; j++)
        C[j] = B[j];
    #pragma endscop
"#;

fn main() {
    let preset = std::env::args().nth(1).unwrap_or_else(|| "pluto".into());
    let cfg = match preset.as_str() {
        "pluto" => SchedulerConfig::default(),
        "feautrier" => polytops::presets::feautrier(),
        "json" => SchedulerConfig::from_json(
            r#"{"scheduling_strategy": {"ILP_construction": [
                {"scheduling_dimension": "default",
                 "cost_functions": ["contiguity", "proximity"]}]}}"#,
        )
        .expect("inline config parses"),
        other => {
            eprintln!("unknown preset `{other}` (try: pluto, feautrier, json)");
            std::process::exit(2);
        }
    };

    let scop = frontend::parse_c("demo", SOURCE).expect("demo source parses");
    println!("== input ==\n{scop}");

    let deps = analyze(&scop);
    println!("{} dependences analyzed", deps.len());

    let sched = schedule(&scop, &cfg).expect("demo kernel schedules");
    println!("\n== schedule ({preset}) ==");
    print!("{}", polytops::codegen::schedule_table(&scop, &sched));

    let legal = deps.iter().all(|d| {
        schedule_respects_dependence(d, sched.stmt(d.src).rows(), sched.stmt(d.dst).rows())
    });
    println!(
        "\nlegality oracle: {}",
        if legal { "OK" } else { "VIOLATED" }
    );
    if !legal {
        std::process::exit(1);
    }
}
