//! Umbrella crate re-exporting the PolyTOPS public API.
//!
//! PolyTOPS is a reconfigurable polyhedral scheduler: it takes a SCoP
//! (built with [`ScopBuilder`], parsed from the textual exchange format
//! with [`parse_scop`], or extracted from restricted C with
//! [`frontend::parse_c`]) plus a [`SchedulerConfig`] and produces a legal
//! affine [`Schedule`] via [`schedule`].
//!
//! The implementation lives in focused workspace crates, all re-exported
//! here:
//!
//! * [`math`](polytops_math) — exact rational/integer math kernel;
//! * [`ir`](polytops_ir) — SCoPs, schedules, builders, frontends;
//! * [`deps`](polytops_deps) — dependence analysis and legality oracles;
//! * [`core`](polytops_core) — configurations, cost functions, the
//!   iterative scheduling driver, the parallel scenario engine and the
//!   machine-driven autotuner ([`tune`]);
//! * [`codegen`] — schedule-tree code generation and schedule printing;
//! * [`machine`] — machine models and the static performance model
//!   ([`machine::model`]) the autotuner scores schedules with;
//! * [`workloads`] — reference polyhedral kernels, the standard
//!   scenario sweep ([`workloads::sweep`]) and the service
//!   request-stream generator ([`workloads::requests`]);
//! * [`server`] — `polytopsd`, the batching scheduler daemon over the
//!   scenario engine, with its wire protocol and client
//!   (see `docs/SERVICE.md`).
//!
//! # Example
//!
//! ```
//! use polytops::{schedule, SchedulerConfig, ScopBuilder, Aff, StmtId};
//!
//! // for (i = 1; i < N; i++) A[i] = A[i-1];
//! let mut b = ScopBuilder::new("chain");
//! let n = b.param("N");
//! let a = b.array("A", &[n.clone()], 8);
//! b.open_loop("i", Aff::val(1), n - 1);
//! b.stmt("S0")
//!     .read(a, &[Aff::var("i") - 1])
//!     .write(a, &[Aff::var("i")])
//!     .add(&mut b);
//! b.close_loop();
//! let scop = b.build().unwrap();
//!
//! let sched = schedule(&scop, &SchedulerConfig::default()).unwrap();
//! assert_eq!(sched.stmt(StmtId(0)).rows()[0], vec![1, 0, 0]); // φ = i
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use polytops_codegen as codegen;
pub use polytops_machine as machine;
pub use polytops_server as server;
pub use polytops_workloads as workloads;

pub use polytops_core::{
    json, presets, registry, scenario, schedule, schedule_with_options, schedule_with_strategy,
    tune, ConfigStrategy, CostFn, DimMap, DimSolution, DimensionPlan, Directive, DirectiveKind,
    EngineOptions, FarkasCache, FusionControl, FusionHeuristic, IlpSpace, MachineModel,
    PipelineStats, PostProcess, Reaction, RegistryStats, ScenarioReport, ScenarioResult,
    ScenarioSet, ScheduleError, SchedulerConfig, ScopEntry, ScopRegistry, Strategy, StrategyState,
};
pub use polytops_deps::{
    analyze, dependence_sccs, order_steps, respects, schedule_respects_dependence,
    steps_respect_dependence, strongly_satisfies, zero_distance, DepKind, Dependence, OrderStep,
};
pub use polytops_ir::{
    frontend, parse_scop, print_scop, Aff, AffineExpr, ArrayId, ArrayInfo, BandMember, MarkKind,
    MemberTerm, PathStep, Schedule, ScheduleTree, Scop, ScopBuilder, Statement, StmtId,
    StmtSchedule, Subscript, TreeNode,
};
pub use polytops_math::{
    farkas_nonneg, ilp_feasible, ilp_lexmin, ilp_minimize, lp_minimize, ConstraintSystem,
    IlpOutcome, IntMatrix, LpOutcome, Rat, RowKind,
};
