//! Umbrella crate re-exporting the PolyTOPS public API.
