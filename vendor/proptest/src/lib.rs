//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The PolyTOPS build environment cannot reach crates.io, so this shim
//! implements exactly the surface the workspace's property tests use:
//! deterministic random generation driven by the [`strategy::Strategy`] trait, the
//! [`proptest!`] test macro, and the `prop_assert*` assertion macros.
//! There is no shrinking — a failing case panics with its case number so
//! the deterministic generator can replay it.

#![forbid(unsafe_code)]

/// Strategy combinators and integer/tuple/vec strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of generated values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f`, retrying (bounded) until one passes.
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 candidates", self.reason);
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start();
                    let hi = *self.end();
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let r = rng.next_u128() % width;
                    (lo as i128 + r as i128) as $t
                }
            }
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    (self.start..=self.end - 1).generate(rng)
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with the given element strategy and
    /// size specification (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..=self.size.hi_inclusive).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use std::fmt;

    /// Per-run configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property assertion (returned early out of the case body).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic xorshift64* PRNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h | 1, // never zero
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Next raw 128-bit value.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests; see the real proptest documentation.
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("case {} of {}: {}", __case, stringify!($name), e);
                }
            }
        }
    )*};
}

/// Property-test assertion; returns a [`test_runner::TestCaseError`]
/// instead of panicking so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                left,
                right,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-3i64..=7), &mut rng);
            assert!((-3..=7).contains(&v));
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("sizes");
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0i64..=1, 0..3), &mut rng);
            assert!(v.len() < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0i64..=5, 0i64..=5), c in 1usize..=3) {
            prop_assert!(a + b >= 0);
            prop_assert_eq!(c.min(3), c);
        }
    }
}
