//! Polyhedral dependence analysis for PolyTOPS (a miniature Candl).
//!
//! [`analyze`] extracts one convex [`Dependence`] per conflicting access
//! pair and per dependence level (carried levels plus the
//! loop-independent level), each backed by an exact integer-feasibility
//! test. [`strongly_satisfies`], [`zero_distance`] and [`respects`]
//! answer the satisfaction questions the iterative scheduler asks at
//! every dimension, and [`schedule_respects_dependence`] is the
//! independent legality oracle used by the test suite.
//!
//! # Example
//!
//! ```
//! use polytops_ir::{Aff, ScopBuilder};
//! use polytops_deps::{analyze, strongly_satisfies};
//!
//! // for (i = 1; i < N; i++) A[i] = A[i-1];
//! let mut b = ScopBuilder::new("chain");
//! let n = b.param("N");
//! let a = b.array("A", &[n.clone()], 8);
//! b.open_loop("i", Aff::val(1), n - 1);
//! b.stmt("S0")
//!     .read(a, &[Aff::var("i") - 1])
//!     .write(a, &[Aff::var("i")])
//!     .add(&mut b);
//! b.close_loop();
//! let scop = b.build().unwrap();
//!
//! let deps = analyze(&scop);
//! // Scheduling φ = i carries every dependence of the chain.
//! assert!(deps.iter().all(|d| strongly_satisfies(d, &[1, 0, 0], &[1, 0, 0])));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod graph;
mod satisfy;

pub use analysis::{analyze, common_loops, DepKind, Dependence};
pub use graph::{dependence_sccs, sccs_topological};
pub use satisfy::{
    distance_row, order_steps, respects, schedule_respects_dependence, step_carries,
    step_coincident, step_legal, steps_respect_dependence, strongly_satisfies, zero_distance,
    OrderStep,
};
