//! Dependence graphs and strongly connected components.
//!
//! Loop distribution (the `UnfuseSCCs` fallback of the paper's
//! Algorithm 1, lines 32–36) splits statements by the SCCs of the live
//! dependence graph, emitted in topological order.

use crate::analysis::Dependence;

/// Computes the strongly connected components of the dependence graph
/// over `num_stmts` statements, returned in a topological order of the
/// condensation (sources first). Statement ids inside each SCC are
/// sorted.
///
/// Uses Tarjan's algorithm (iterative), which conveniently emits SCCs in
/// reverse topological order.
///
/// # Examples
///
/// ```
/// use polytops_deps::sccs_topological;
///
/// // 0 -> 1, 1 -> 2, 2 -> 1 (cycle {1,2})
/// let edges = vec![(0, 1), (1, 2), (2, 1)];
/// let comps = sccs_topological(3, edges.iter().copied());
/// assert_eq!(comps, vec![vec![0], vec![1, 2]]);
/// ```
pub fn sccs_topological(
    num_stmts: usize,
    edges: impl Iterator<Item = (usize, usize)>,
) -> Vec<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_stmts];
    for (a, b) in edges {
        if a < num_stmts && b < num_stmts && a != b {
            adj[a].push(b);
        }
    }
    // Iterative Tarjan.
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: -1,
            lowlink: -1,
            on_stack: false,
        };
        num_stmts
    ];
    let mut next_index: i64 = 0;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs_rev: Vec<Vec<usize>> = Vec::new();

    for root in 0..num_stmts {
        if state[root].index != -1 {
            continue;
        }
        // Work stack of (node, next child position).
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        state[root].index = next_index;
        state[root].lowlink = next_index;
        next_index += 1;
        stack.push(root);
        state[root].on_stack = true;
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if state[w].index == -1 {
                    state[w].index = next_index;
                    state[w].lowlink = next_index;
                    next_index += 1;
                    stack.push(w);
                    state[w].on_stack = true;
                    work.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                work.pop();
                if let Some(&mut (p, _)) = work.last_mut() {
                    state[p].lowlink = state[p].lowlink.min(state[v].lowlink);
                }
                if state[v].lowlink == state[v].index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs_rev.push(comp);
                }
            }
        }
    }
    sccs_rev.reverse();
    sccs_rev
}

/// SCCs of the live dependence set (convenience wrapper over
/// [`sccs_topological`]).
pub fn dependence_sccs(num_stmts: usize, deps: &[Dependence]) -> Vec<Vec<usize>> {
    sccs_topological(num_stmts, deps.iter().map(|d| (d.src.0, d.dst.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_nodes_each_own_scc() {
        let comps = sccs_topological(3, std::iter::empty());
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn chain_is_topologically_ordered() {
        let comps = sccs_topological(3, [(2, 1), (1, 0)].iter().copied());
        assert_eq!(comps, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn cycle_collapses() {
        let comps = sccs_topological(4, [(0, 1), (1, 2), (2, 0), (2, 3)].iter().copied());
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn self_loops_ignored() {
        let comps = sccs_topological(2, [(0, 0), (0, 1)].iter().copied());
        assert_eq!(comps, vec![vec![0], vec![1]]);
    }

    #[test]
    fn diamond_topological_order_is_valid() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
        let comps = sccs_topological(4, [(0, 1), (0, 2), (1, 3), (2, 3)].iter().copied());
        let pos = |x: usize| comps.iter().position(|c| c.contains(&x)).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }
}
