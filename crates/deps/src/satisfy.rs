//! Dependence satisfaction and parallelism tests over partial schedules.
//!
//! Given a dependence `S → R` and one schedule row per statement, the
//! distance of the row on the dependence is
//! `Δ(it_S, it_R) = φ_R(it_R) − φ_S(it_S)`. Legality keeps `Δ ≥ 0`
//! everywhere; a row **strongly satisfies** (carries) the dependence when
//! `Δ ≥ 1` everywhere, and is **parallel** for it when `Δ = 0`
//! everywhere.

use polytops_math::ilp_feasible;

use crate::analysis::Dependence;

/// Builds the row of `Δ = φ_R − φ_S` over the dependence space
/// `(it_src, it_dst, params, 1)` from per-statement schedule rows (each
/// over that statement's `(iters, params, 1)` columns).
///
/// # Panics
///
/// Panics if row lengths do not match the dependence's statement depths.
pub fn distance_row(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> Vec<i64> {
    let ds = dep.src_depth;
    let dr = dep.dst_depth;
    let np = dep.poly.num_vars() - ds - dr;
    assert_eq!(src_row.len(), ds + np + 1, "source row arity");
    assert_eq!(dst_row.len(), dr + np + 1, "destination row arity");
    let nv = dep.poly.num_vars();
    let mut row = vec![0i64; nv + 1];
    for k in 0..ds {
        row[k] -= src_row[k];
    }
    for k in 0..dr {
        row[ds + k] += dst_row[k];
    }
    for j in 0..np {
        row[ds + dr + j] += dst_row[dr + j] - src_row[ds + j];
    }
    row[nv] = dst_row[dr + np] - src_row[ds + np];
    row
}

/// Whether `Δ ≥ 1` on the whole dependence polyhedron (the row *carries*
/// the dependence, which can then be removed from the live set).
pub fn strongly_satisfies(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> bool {
    // Strongly satisfied iff { poly ∧ Δ <= 0 } has no integer point.
    let delta = distance_row(dep, src_row, dst_row);
    let mut sys = dep.poly.clone();
    let nv = sys.num_vars();
    let mut leq = vec![0i64; nv + 1];
    for (o, d) in leq.iter_mut().zip(&delta) {
        *o = -d;
    }
    // -Δ >= 0  <=>  Δ <= 0.
    let _ = nv;
    sys.add_ineq(leq);
    !ilp_feasible(&sys)
}

/// Whether `Δ = 0` on the whole dependence polyhedron (the dimension is
/// parallel with respect to this dependence).
pub fn zero_distance(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> bool {
    let delta = distance_row(dep, src_row, dst_row);
    let nv = dep.poly.num_vars();
    // Δ >= 1 feasible?
    let mut up = dep.poly.clone();
    let mut row = delta.clone();
    row[nv] -= 1;
    up.add_ineq(row);
    if ilp_feasible(&up) {
        return false;
    }
    // Δ <= -1 feasible?
    let mut down = dep.poly.clone();
    let mut row: Vec<i64> = delta.iter().map(|&v| -v).collect();
    row[nv] -= 1;
    down.add_ineq(row);
    !ilp_feasible(&down)
}

/// Whether `Δ ≥ 0` on the whole polyhedron (the row is legal for this
/// dependence). Mostly used by tests and verification — the scheduler
/// enforces legality by construction via Farkas.
pub fn respects(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> bool {
    let delta = distance_row(dep, src_row, dst_row);
    let nv = dep.poly.num_vars();
    // Δ <= -1 feasible?
    let mut sys = dep.poly.clone();
    let mut row: Vec<i64> = delta.iter().map(|&v| -v).collect();
    row[nv] -= 1;
    sys.add_ineq(row);
    !ilp_feasible(&sys)
}

/// Verifies a complete multidimensional schedule against a dependence:
/// the destination timestamp must be lexicographically greater than the
/// source timestamp for every point of the polyhedron.
///
/// This is the independent legality oracle used by the test suite: it
/// shares no code path with the scheduler's Farkas construction.
pub fn schedule_respects_dependence(
    dep: &Dependence,
    src_rows: &[Vec<i64>],
    dst_rows: &[Vec<i64>],
) -> bool {
    assert_eq!(src_rows.len(), dst_rows.len(), "ragged schedules");
    // Violated iff there is a point with Δ_0..k-1 = 0 and Δ_k <= -1 for
    // some k, i.e. destination not lexicographically after source.
    let nv = dep.poly.num_vars();
    for k in 0..src_rows.len() {
        let mut sys = dep.poly.clone();
        for j in 0..k {
            let delta = distance_row(dep, &src_rows[j], &dst_rows[j]);
            sys.add_eq(delta);
        }
        let delta = distance_row(dep, &src_rows[k], &dst_rows[k]);
        let mut row: Vec<i64> = delta.iter().map(|&v| -v).collect();
        row[nv] -= 1;
        sys.add_ineq(row);
        if ilp_feasible(&sys) {
            return false;
        }
    }
    // Also violated if all dimensions are equal somewhere (no strict
    // order at all).
    let mut sys = dep.poly.clone();
    for k in 0..src_rows.len() {
        let delta = distance_row(dep, &src_rows[k], &dst_rows[k]);
        sys.add_eq(delta);
    }
    !ilp_feasible(&sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, DepKind};
    use polytops_ir::{Aff, Scop, ScopBuilder};

    fn chain_scop() -> Scop {
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.build().unwrap()
    }

    fn flow_dep() -> Dependence {
        analyze(&chain_scop())
            .into_iter()
            .find(|d| d.kind == DepKind::Flow)
            .unwrap()
    }

    #[test]
    fn identity_row_strongly_satisfies_chain() {
        let dep = flow_dep();
        // φ = i for both: Δ = i_r - i_s = 1 > 0 everywhere.
        let row = vec![1, 0, 0]; // (i, N, 1)
        assert!(strongly_satisfies(&dep, &row, &row));
        assert!(respects(&dep, &row, &row));
        assert!(!zero_distance(&dep, &row, &row));
    }

    #[test]
    fn reversed_row_is_illegal() {
        let dep = flow_dep();
        let row = vec![-1, 0, 0]; // φ = -i reverses the chain
        assert!(!respects(&dep, &row, &row));
        assert!(!strongly_satisfies(&dep, &row, &row));
    }

    #[test]
    fn constant_row_is_zero_distance() {
        let dep = flow_dep();
        let row = vec![0, 0, 7]; // φ = 7 for all instances
        assert!(zero_distance(&dep, &row, &row));
        assert!(respects(&dep, &row, &row));
        assert!(!strongly_satisfies(&dep, &row, &row));
    }

    #[test]
    fn full_schedule_verification() {
        let dep = flow_dep();
        // Θ = (i) is legal and total for the chain.
        assert!(schedule_respects_dependence(
            &dep,
            &[vec![1, 0, 0]],
            &[vec![1, 0, 0]]
        ));
        // Θ = (0) leaves instances unordered: illegal.
        assert!(!schedule_respects_dependence(
            &dep,
            &[vec![0, 0, 0]],
            &[vec![0, 0, 0]]
        ));
        // Θ = (-i) is illegal.
        assert!(!schedule_respects_dependence(
            &dep,
            &[vec![-1, 0, 0]],
            &[vec![-1, 0, 0]]
        ));
    }

    #[test]
    fn distance_row_shape() {
        let dep = flow_dep();
        let r = distance_row(&dep, &[2, 3, 4], &[5, 6, 7]);
        // (it_s, it_r, N, 1): -2*i_s + 5*i_r + (6-3)*N + (7-4).
        assert_eq!(r, vec![-2, 5, 3, 3]);
    }
}
