//! Dependence satisfaction and parallelism tests over partial schedules.
//!
//! Given a dependence `S → R` and one schedule row per statement, the
//! distance of the row on the dependence is
//! `Δ(it_S, it_R) = φ_R(it_R) − φ_S(it_S)`. Legality keeps `Δ ≥ 0`
//! everywhere; a row **strongly satisfies** (carries) the dependence when
//! `Δ ≥ 1` everywhere, and is **parallel** for it when `Δ = 0`
//! everywhere.

use polytops_math::ilp_feasible;

use crate::analysis::Dependence;

/// Builds the row of `Δ = φ_R − φ_S` over the dependence space
/// `(it_src, it_dst, params, 1)` from per-statement schedule rows (each
/// over that statement's `(iters, params, 1)` columns).
///
/// # Panics
///
/// Panics if row lengths do not match the dependence's statement depths.
pub fn distance_row(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> Vec<i64> {
    let ds = dep.src_depth;
    let dr = dep.dst_depth;
    let np = dep.poly.num_vars() - ds - dr;
    assert_eq!(src_row.len(), ds + np + 1, "source row arity");
    assert_eq!(dst_row.len(), dr + np + 1, "destination row arity");
    let nv = dep.poly.num_vars();
    let mut row = vec![0i64; nv + 1];
    for k in 0..ds {
        row[k] -= src_row[k];
    }
    for k in 0..dr {
        row[ds + k] += dst_row[k];
    }
    for j in 0..np {
        row[ds + dr + j] += dst_row[dr + j] - src_row[ds + j];
    }
    row[nv] = dst_row[dr + np] - src_row[ds + np];
    row
}

/// Whether `Δ ≥ 1` on the whole dependence polyhedron (the row *carries*
/// the dependence, which can then be removed from the live set).
pub fn strongly_satisfies(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> bool {
    // Strongly satisfied iff { poly ∧ Δ <= 0 } has no integer point.
    let delta = distance_row(dep, src_row, dst_row);
    let mut sys = dep.poly.clone();
    let nv = sys.num_vars();
    let mut leq = vec![0i64; nv + 1];
    for (o, d) in leq.iter_mut().zip(&delta) {
        *o = -d;
    }
    // -Δ >= 0  <=>  Δ <= 0.
    let _ = nv;
    sys.add_ineq(leq);
    !ilp_feasible(&sys)
}

/// Whether `Δ = 0` on the whole dependence polyhedron (the dimension is
/// parallel with respect to this dependence).
pub fn zero_distance(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> bool {
    let delta = distance_row(dep, src_row, dst_row);
    let nv = dep.poly.num_vars();
    // Δ >= 1 feasible?
    let mut up = dep.poly.clone();
    let mut row = delta.clone();
    row[nv] -= 1;
    up.add_ineq(row);
    if ilp_feasible(&up) {
        return false;
    }
    // Δ <= -1 feasible?
    let mut down = dep.poly.clone();
    let mut row: Vec<i64> = delta.iter().map(|&v| -v).collect();
    row[nv] -= 1;
    down.add_ineq(row);
    !ilp_feasible(&down)
}

/// Whether `Δ ≥ 0` on the whole polyhedron (the row is legal for this
/// dependence). Mostly used by tests and verification — the scheduler
/// enforces legality by construction via Farkas.
pub fn respects(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> bool {
    let delta = distance_row(dep, src_row, dst_row);
    let nv = dep.poly.num_vars();
    // Δ <= -1 feasible?
    let mut sys = dep.poly.clone();
    let mut row: Vec<i64> = delta.iter().map(|&v| -v).collect();
    row[nv] -= 1;
    sys.add_ineq(row);
    !ilp_feasible(&sys)
}

/// Verifies a complete multidimensional schedule against a dependence:
/// the destination timestamp must be lexicographically greater than the
/// source timestamp for every point of the polyhedron.
///
/// This is the independent legality oracle used by the test suite: it
/// shares no code path with the scheduler's Farkas construction.
pub fn schedule_respects_dependence(
    dep: &Dependence,
    src_rows: &[Vec<i64>],
    dst_rows: &[Vec<i64>],
) -> bool {
    assert_eq!(src_rows.len(), dst_rows.len(), "ragged schedules");
    // Violated iff there is a point with Δ_0..k-1 = 0 and Δ_k <= -1 for
    // some k, i.e. destination not lexicographically after source.
    let nv = dep.poly.num_vars();
    for k in 0..src_rows.len() {
        let mut sys = dep.poly.clone();
        for j in 0..k {
            let delta = distance_row(dep, &src_rows[j], &dst_rows[j]);
            sys.add_eq(delta);
        }
        let delta = distance_row(dep, &src_rows[k], &dst_rows[k]);
        let mut row: Vec<i64> = delta.iter().map(|&v| -v).collect();
        row[nv] -= 1;
        sys.add_ineq(row);
        if ilp_feasible(&sys) {
            return false;
        }
    }
    // Also violated if all dimensions are equal somewhere (no strict
    // order at all).
    let mut sys = dep.poly.clone();
    for k in 0..src_rows.len() {
        let delta = distance_row(dep, &src_rows[k], &dst_rows[k]);
        sys.add_eq(delta);
    }
    !ilp_feasible(&sys)
}

// ---------------------------------------------------------------------
// Quasi-affine step oracle (schedule trees).
// ---------------------------------------------------------------------

/// One step of a schedule-tree instance order, specialized to a
/// dependence's endpoint pair.
///
/// Built by [`order_steps`] from the two statements' tree paths; each
/// step is either a band-member *value* comparison (quasi-affine: sums
/// of floored terms on both sides) or a static sequence *position*
/// comparison. The `step_*` oracles below answer satisfaction questions
/// about such steps inside the same exact integer-feasibility machinery
/// as the affine row tests above, by extending the dependence
/// polyhedron with auxiliary integer variables:
///
/// * an affine term (divisor 1) contributes its distance exactly;
/// * a floored term pair `⌊row_dst·x/div⌋ − ⌊row_src·x/div⌋` is
///   abstracted by one integer variable `w` with the exact window
///   `δ − div + 1 ≤ div·w ≤ δ + div − 1` (where `δ = row_dst·x −
///   row_src·x`), the tightest linear envelope of a floor difference.
///   The variable is **shared** between steps referencing the same
///   `(src row, dst row, div)` term, which is what correlates a
///   wavefronted tile member with the plain tile members it sums.
///
/// The floored-term windows over-approximate the true floor difference,
/// so the oracle is *sound but conservative*: it never certifies an
/// illegal instance order and never reports a non-coincident member
/// coincident, but it may reject a legal transform (never observed for
/// permutable bands, where the windows are tight enough).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderStep {
    /// A band member: `(numerator row, divisor)` terms per side, the
    /// source side over `(it_src, params, 1)` and the destination side
    /// over `(it_dst, params, 1)`.
    Value {
        /// The source statement's floored terms.
        src: Vec<(Vec<i64>, i64)>,
        /// The destination statement's floored terms.
        dst: Vec<(Vec<i64>, i64)>,
    },
    /// A sequence node: static child positions of the two statements.
    Position {
        /// The source statement's position.
        src: i64,
        /// The destination statement's position.
        dst: i64,
    },
}

/// Pairs two statements' tree paths into the dependence's step sequence:
/// steps are zipped while the paths traverse the same structural nodes,
/// and a sequence node where the positions differ (which decides the
/// order statically) terminates the sequence.
pub fn order_steps(
    src_path: &[polytops_ir::PathStep],
    dst_path: &[polytops_ir::PathStep],
) -> Vec<OrderStep> {
    use polytops_ir::PathStep as P;
    let mut out = Vec::new();
    for (a, b) in src_path.iter().zip(dst_path.iter()) {
        match (a, b) {
            (
                P::Member {
                    node: na,
                    terms: ta,
                    ..
                },
                P::Member {
                    node: nb,
                    terms: tb,
                    ..
                },
            ) if na == nb => out.push(OrderStep::Value {
                src: ta.clone(),
                dst: tb.clone(),
            }),
            (P::Seq { node: na, pos: pa }, P::Seq { node: nb, pos: pb }) if na == nb => {
                let decided = pa != pb;
                out.push(OrderStep::Position { src: *pa, dst: *pb });
                if decided {
                    break;
                }
            }
            _ => break,
        }
    }
    out
}

/// The distance of one step over the extended variable space: either a
/// static constant (sequence positions) or a linear row over
/// `(it_src, it_dst, params, aux…, 1)`.
enum StepDelta {
    Const(i64),
    Linear(Vec<i64>),
}

/// The dependence polyhedron widened with the auxiliary floor variables
/// of a step sequence, plus each step's distance expression.
struct StepEncoding {
    sys: polytops_math::ConstraintSystem,
    deltas: Vec<StepDelta>,
}

/// A distinct floored term needing one auxiliary variable: either a
/// source/destination pair of the same member term (encoded as a
/// difference window) or a lone side term (encoded as a floor box).
#[derive(PartialEq, Eq, Hash, Clone)]
enum AuxKey {
    Pair(Vec<i64>, Vec<i64>, i64),
    Side(bool, Vec<i64>, i64),
}

impl StepEncoding {
    fn new(dep: &Dependence, steps: &[OrderStep]) -> StepEncoding {
        let ds = dep.src_depth;
        let dr = dep.dst_depth;
        let nv = dep.poly.num_vars();
        let np = nv - ds - dr;
        // First pass: one auxiliary variable per distinct floored term,
        // paired across sides when a member contributes the same
        // index-aligned term to both (always the case for terms built
        // from tree paths).
        let mut keys: Vec<AuxKey> = Vec::new();
        let mut index: std::collections::HashMap<AuxKey, usize> = std::collections::HashMap::new();
        let intern = |keys: &mut Vec<AuxKey>,
                      index: &mut std::collections::HashMap<AuxKey, usize>,
                      key: AuxKey|
         -> usize {
            *index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                keys.len() - 1
            })
        };
        for step in steps {
            if let OrderStep::Value { src, dst } = step {
                let paired = src.len() == dst.len()
                    && src.iter().zip(dst).all(|((_, da), (_, db))| da == db);
                if paired {
                    for ((rs, div), (rd, _)) in src.iter().zip(dst) {
                        if *div > 1 {
                            intern(
                                &mut keys,
                                &mut index,
                                AuxKey::Pair(rs.clone(), rd.clone(), *div),
                            );
                        }
                    }
                } else {
                    for (row, div) in src {
                        if *div > 1 {
                            intern(&mut keys, &mut index, AuxKey::Side(true, row.clone(), *div));
                        }
                    }
                    for (row, div) in dst {
                        if *div > 1 {
                            intern(
                                &mut keys,
                                &mut index,
                                AuxKey::Side(false, row.clone(), *div),
                            );
                        }
                    }
                }
            }
        }
        let next = nv + keys.len();
        let mut sys = polytops_math::ConstraintSystem::new(next);
        for (kind, row) in dep.poly.iter() {
            let mut r = vec![0i64; next + 1];
            r[..nv].copy_from_slice(&row[..nv]);
            r[next] = row[nv];
            match kind {
                polytops_math::RowKind::Eq => sys.add_eq(r),
                polytops_math::RowKind::Ineq => sys.add_ineq(r),
            }
        }
        // Lifts a per-side row over (iters, params, 1) into the
        // extended space.
        let lift = |row: &[i64], is_src: bool| -> Vec<i64> {
            let d = if is_src { ds } else { dr };
            debug_assert_eq!(row.len(), d + np + 1, "side row arity");
            let mut r = vec![0i64; next + 1];
            let base = if is_src { 0 } else { ds };
            r[base..base + d].copy_from_slice(&row[..d]);
            for j in 0..np {
                r[ds + dr + j] = row[d + j];
            }
            r[next] = row[d + np];
            r
        };
        // Defining constraints, once per auxiliary variable.
        for (i, key) in keys.iter().enumerate() {
            let q = nv + i;
            match key {
                AuxKey::Pair(rs, rd, div) => {
                    // w ≈ ⌊rd·x/div⌋ − ⌊rs·x/div⌋, windowed by
                    // δ − div + 1 ≤ div·w ≤ δ + div − 1 with
                    // δ = rd·x − rs·x.
                    let s = lift(rs, true);
                    let d = lift(rd, false);
                    let mut hi: Vec<i64> = d.iter().zip(&s).map(|(a, b)| a - b).collect();
                    hi[q] -= div;
                    hi[next] += div - 1;
                    sys.add_ineq(hi);
                    let mut lo: Vec<i64> = s.iter().zip(&d).map(|(a, b)| a - b).collect();
                    lo[q] += div;
                    lo[next] += div - 1;
                    sys.add_ineq(lo);
                    // Monotonicity cut: the floor function is monotone,
                    // so a sign-definite δ over the dependence
                    // polyhedron forces the same sign on the true floor
                    // difference. The window alone admits |w| < 1 of
                    // rational slack per term, which sends the
                    // certification of a *legal* wavefront (Σ wⱼ ≤ −1
                    // integrally infeasible but rationally feasible)
                    // into deep branch and bound; the cut makes it a
                    // pure LP refutation.
                    let mut base_delta = vec![0i64; nv + 1];
                    for (j, &c) in rd[..dr].iter().enumerate() {
                        base_delta[ds + j] += c;
                    }
                    for (j, &c) in rs[..ds].iter().enumerate() {
                        base_delta[j] -= c;
                    }
                    for j in 0..np {
                        base_delta[ds + dr + j] += rd[dr + j] - rs[ds + j];
                    }
                    base_delta[nv] += rd[dr + np] - rs[ds + np];
                    if polytops_math::ineq_implied(&dep.poly, &base_delta) {
                        let mut cut = vec![0i64; next + 1];
                        cut[q] = 1;
                        sys.add_ineq(cut);
                    } else {
                        let neg: Vec<i64> = base_delta.iter().map(|&c| -c).collect();
                        if polytops_math::ineq_implied(&dep.poly, &neg) {
                            let mut cut = vec![0i64; next + 1];
                            cut[q] = -1;
                            sys.add_ineq(cut);
                        }
                    }
                }
                AuxKey::Side(is_src, row, div) => {
                    // q = ⌊row·x / div⌋ via div·q ≤ row·x ≤ div·q + div − 1.
                    let mut lo = lift(row, *is_src);
                    lo[q] -= div;
                    sys.add_ineq(lo);
                    let mut hi: Vec<i64> = lift(row, *is_src).iter().map(|&c| -c).collect();
                    hi[q] += div;
                    hi[next] += div - 1;
                    sys.add_ineq(hi);
                }
            }
        }
        // Second pass: per-step distance expressions over the extended
        // space.
        let mut deltas = Vec::with_capacity(steps.len());
        for step in steps {
            match step {
                OrderStep::Position { src, dst } => deltas.push(StepDelta::Const(dst - src)),
                OrderStep::Value { src, dst } => {
                    let mut delta = vec![0i64; next + 1];
                    let paired = src.len() == dst.len()
                        && src.iter().zip(dst).all(|((_, da), (_, db))| da == db);
                    if paired {
                        for ((rs, div), (rd, _)) in src.iter().zip(dst) {
                            if *div == 1 {
                                for ((acc, a), b) in
                                    delta.iter_mut().zip(lift(rd, false)).zip(lift(rs, true))
                                {
                                    *acc += a - b;
                                }
                            } else {
                                delta[nv + index[&AuxKey::Pair(rs.clone(), rd.clone(), *div)]] += 1;
                            }
                        }
                    } else {
                        let mut add_side = |terms: &[(Vec<i64>, i64)], sign: i64, is_src: bool| {
                            for (row, div) in terms {
                                if *div == 1 {
                                    for (acc, v) in delta.iter_mut().zip(lift(row, is_src)) {
                                        *acc += sign * v;
                                    }
                                } else {
                                    let key = AuxKey::Side(is_src, row.clone(), *div);
                                    delta[nv + index[&key]] += sign;
                                }
                            }
                        };
                        add_side(src, -1, true);
                        add_side(dst, 1, false);
                    }
                    deltas.push(StepDelta::Linear(delta));
                }
            }
        }
        StepEncoding { sys, deltas }
    }
}

/// Verifies a schedule-tree instance order against a dependence: the
/// destination instance must come strictly after the source instance
/// for every point of the polyhedron. This is the tree-side counterpart
/// of [`schedule_respects_dependence`], sharing the same independent
/// integer-feasibility machinery (no code path in common with the
/// scheduler's Farkas construction).
pub fn steps_respect_dependence(dep: &Dependence, steps: &[OrderStep]) -> bool {
    let enc = StepEncoding::new(dep, steps);
    let mut sys = enc.sys;
    for delta in &enc.deltas {
        match delta {
            StepDelta::Const(c) => {
                if *c < 0 {
                    // Every instance still equal on the prefix is
                    // ordered backwards here.
                    return !ilp_feasible(&sys);
                }
                if *c > 0 {
                    // Strictly ordered wherever the prefix is equal;
                    // nothing can remain unordered below.
                    return true;
                }
            }
            StepDelta::Linear(row) => {
                let mut v = sys.clone();
                let mut neg: Vec<i64> = row.iter().map(|&x| -x).collect();
                let n = neg.len() - 1;
                neg[n] -= 1; // Δ ≤ −1
                v.add_ineq(neg);
                if ilp_feasible(&v) {
                    return false;
                }
                sys.add_eq(row.clone());
            }
        }
    }
    // Violated if some instance pair is equal on every step (no strict
    // order at all).
    !ilp_feasible(&sys)
}

/// Builds the system conditioned on every prefix step having distance 0,
/// plus the queried step's delta. Returns `None` when the prefix is
/// statically unsatisfiable (a sequence already separates the pair), in
/// which case every conditioned property holds vacuously.
fn conditioned(
    dep: &Dependence,
    prefix: &[OrderStep],
    step: &OrderStep,
) -> Option<(polytops_math::ConstraintSystem, StepDelta)> {
    let mut steps: Vec<OrderStep> = prefix.to_vec();
    steps.push(step.clone());
    let enc = StepEncoding::new(dep, &steps);
    let mut sys = enc.sys;
    let mut deltas = enc.deltas;
    let last = deltas.pop().expect("queried step");
    for delta in &deltas {
        match delta {
            StepDelta::Const(0) => {}
            StepDelta::Const(_) => return None,
            StepDelta::Linear(row) => sys.add_eq(row.clone()),
        }
    }
    Some((sys, last))
}

/// Whether the step's distance is 0 for every dependence instance with
/// equal coordinates on all `prefix` steps — the tree notion of
/// coincidence (the member's loop may run in parallel at that position
/// of the schedule). Conditioning on the prefix is what lets a
/// wavefronted tile band expose coincident inner tile members: a
/// dependence crossing tiles always crosses the skewed outer member
/// first.
pub fn step_coincident(dep: &Dependence, prefix: &[OrderStep], step: &OrderStep) -> bool {
    match conditioned(dep, prefix, step) {
        None => true,
        Some((sys, StepDelta::Const(c))) => c == 0 || !ilp_feasible(&sys),
        Some((sys, StepDelta::Linear(row))) => {
            let n = row.len() - 1;
            let mut up = sys.clone();
            let mut r = row.clone();
            r[n] -= 1; // Δ ≥ 1
            up.add_ineq(r);
            if ilp_feasible(&up) {
                return false;
            }
            let mut down = sys;
            let mut r: Vec<i64> = row.iter().map(|&x| -x).collect();
            r[n] -= 1; // Δ ≤ −1
            down.add_ineq(r);
            !ilp_feasible(&down)
        }
    }
}

/// Whether the step's distance is ≥ 0 for every dependence instance with
/// equal coordinates on all `prefix` steps (the member is individually
/// legal at that position — the per-member half of band permutability).
pub fn step_legal(dep: &Dependence, prefix: &[OrderStep], step: &OrderStep) -> bool {
    match conditioned(dep, prefix, step) {
        None => true,
        Some((sys, StepDelta::Const(c))) => c >= 0 || !ilp_feasible(&sys),
        Some((sys, StepDelta::Linear(row))) => {
            let n = row.len() - 1;
            let mut down = sys;
            let mut r: Vec<i64> = row.iter().map(|&x| -x).collect();
            r[n] -= 1; // Δ ≤ −1
            down.add_ineq(r);
            !ilp_feasible(&down)
        }
    }
}

/// Whether the step's distance is ≥ 1 for every dependence instance with
/// equal coordinates on all `prefix` steps (the step *carries* the
/// dependence at that position: nothing below needs to order it).
pub fn step_carries(dep: &Dependence, prefix: &[OrderStep], step: &OrderStep) -> bool {
    match conditioned(dep, prefix, step) {
        None => true,
        Some((sys, StepDelta::Const(c))) => c >= 1 || !ilp_feasible(&sys),
        Some((sys, StepDelta::Linear(row))) => {
            let mut down = sys;
            // Δ ≤ 0 feasible?
            down.add_ineq(row.iter().map(|&x| -x).collect());
            !ilp_feasible(&down)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, DepKind};
    use polytops_ir::{Aff, Scop, ScopBuilder};

    fn chain_scop() -> Scop {
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.build().unwrap()
    }

    fn flow_dep() -> Dependence {
        analyze(&chain_scop())
            .into_iter()
            .find(|d| d.kind == DepKind::Flow)
            .unwrap()
    }

    #[test]
    fn identity_row_strongly_satisfies_chain() {
        let dep = flow_dep();
        // φ = i for both: Δ = i_r - i_s = 1 > 0 everywhere.
        let row = vec![1, 0, 0]; // (i, N, 1)
        assert!(strongly_satisfies(&dep, &row, &row));
        assert!(respects(&dep, &row, &row));
        assert!(!zero_distance(&dep, &row, &row));
    }

    #[test]
    fn reversed_row_is_illegal() {
        let dep = flow_dep();
        let row = vec![-1, 0, 0]; // φ = -i reverses the chain
        assert!(!respects(&dep, &row, &row));
        assert!(!strongly_satisfies(&dep, &row, &row));
    }

    #[test]
    fn constant_row_is_zero_distance() {
        let dep = flow_dep();
        let row = vec![0, 0, 7]; // φ = 7 for all instances
        assert!(zero_distance(&dep, &row, &row));
        assert!(respects(&dep, &row, &row));
        assert!(!strongly_satisfies(&dep, &row, &row));
    }

    #[test]
    fn full_schedule_verification() {
        let dep = flow_dep();
        // Θ = (i) is legal and total for the chain.
        assert!(schedule_respects_dependence(
            &dep,
            &[vec![1, 0, 0]],
            &[vec![1, 0, 0]]
        ));
        // Θ = (0) leaves instances unordered: illegal.
        assert!(!schedule_respects_dependence(
            &dep,
            &[vec![0, 0, 0]],
            &[vec![0, 0, 0]]
        ));
        // Θ = (-i) is illegal.
        assert!(!schedule_respects_dependence(
            &dep,
            &[vec![-1, 0, 0]],
            &[vec![-1, 0, 0]]
        ));
    }

    /// A single-term affine step for the chain dep (φ = row on both
    /// sides).
    fn affine_step(row: Vec<i64>) -> OrderStep {
        OrderStep::Value {
            src: vec![(row.clone(), 1)],
            dst: vec![(row, 1)],
        }
    }

    #[test]
    fn affine_steps_match_the_row_oracle() {
        let dep = flow_dep();
        let id = affine_step(vec![1, 0, 0]);
        let rev = affine_step(vec![-1, 0, 0]);
        let cst = affine_step(vec![0, 0, 7]);
        // The step oracle must agree with the affine row oracle when
        // every term has divisor 1.
        assert!(steps_respect_dependence(&dep, &[id.clone()]));
        assert!(!steps_respect_dependence(&dep, &[rev.clone()]));
        assert!(!steps_respect_dependence(&dep, &[cst.clone()]));
        assert!(step_carries(&dep, &[], &id));
        assert!(!step_coincident(&dep, &[], &id));
        assert!(step_coincident(&dep, &[], &cst));
        assert!(step_legal(&dep, &[], &id));
        assert!(!step_legal(&dep, &[], &rev));
    }

    #[test]
    fn sequence_positions_decide_statically() {
        let dep = flow_dep();
        // Source before destination: respected without any value step.
        assert!(steps_respect_dependence(
            &dep,
            &[OrderStep::Position { src: 0, dst: 1 }]
        ));
        // Destination before source: violated (polyhedron nonempty).
        assert!(!steps_respect_dependence(
            &dep,
            &[OrderStep::Position { src: 1, dst: 0 }]
        ));
        // A separating prefix makes every conditioned property vacuous.
        let rev = affine_step(vec![-1, 0, 0]);
        assert!(step_coincident(
            &dep,
            &[OrderStep::Position { src: 0, dst: 1 }],
            &rev
        ));
    }

    #[test]
    fn tile_steps_follow_the_floors() {
        let dep = flow_dep(); // distance exactly 1 on i
        let tile = OrderStep::Value {
            src: vec![(vec![1, 0, 0], 4)],
            dst: vec![(vec![1, 0, 0], 4)],
        };
        let point = affine_step(vec![1, 0, 0]);
        // ⌊i/4⌋ neither carries (same-tile pairs exist) nor is
        // coincident (tile-crossing pairs exist), but it is legal.
        assert!(!step_carries(&dep, &[], &tile));
        assert!(!step_coincident(&dep, &[], &tile));
        assert!(step_legal(&dep, &[], &tile));
        // Within equal tiles the point step still carries; the full
        // (tile, point) order is respected.
        assert!(step_carries(&dep, &[tile.clone()], &point));
        assert!(steps_respect_dependence(&dep, &[tile, point]));
    }

    #[test]
    fn wavefront_of_tiles_exposes_coincidence() {
        // for t for i: A[i] = A[i-1] + A[i+1] under the skewed schedule
        // (t, t+i): tile members q0 = ⌊t/4⌋, q1 = ⌊(t+i)/4⌋. Neither is
        // coincident alone, but given the wavefronted outer member
        // q0 + q1 equal, q1 is (the classic tile-wavefront win).
        let mut b = ScopBuilder::new("jacobi");
        let tp = b.param("T");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("t", Aff::val(0), tp - 1);
        b.open_loop("i", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .read(a, &[Aff::var("i") + 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        assert!(!deps.is_empty());
        let t_row = vec![1i64, 0, 0, 0, 0]; // t over (t, i, T, N, 1)
        let skew_row = vec![1i64, 1, 0, 0, 0]; // t + i
        let q0 = (t_row, 4i64);
        let q1 = (skew_row, 4i64);
        let tile_q1 = OrderStep::Value {
            src: vec![q1.clone()],
            dst: vec![q1.clone()],
        };
        let wave = OrderStep::Value {
            src: vec![q0.clone(), q1.clone()],
            dst: vec![q0.clone(), q1.clone()],
        };
        for dep in &deps {
            assert!(
                !step_coincident(dep, &[], &tile_q1),
                "q1 alone crosses tiles"
            );
            assert!(
                step_coincident(dep, &[wave.clone()], &tile_q1),
                "q1 is coincident under the wavefront"
            );
            assert!(step_legal(dep, &[], &wave), "wavefront member legal");
        }
    }

    #[test]
    fn distance_row_shape() {
        let dep = flow_dep();
        let r = distance_row(&dep, &[2, 3, 4], &[5, 6, 7]);
        // (it_s, it_r, N, 1): -2*i_s + 5*i_r + (6-3)*N + (7-4).
        assert_eq!(r, vec![-2, 5, 3, 3]);
    }
}
