//! Candl-style dependence analysis: one convex dependence polyhedron per
//! access pair and per dependence level.

use polytops_ir::{AccessKind, ArrayId, Scop, Statement, StmtId, Subscript};
use polytops_math::{ilp_feasible, ConstraintSystem};

/// Dependence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read after write (true/flow dependence).
    Flow,
    /// Write after read (anti dependence).
    Anti,
    /// Write after write (output dependence).
    Output,
}

/// A dependence `src → dst`: instances of `src` must execute before the
/// related instances of `dst`.
///
/// The polyhedron lives in the combined space
/// `(it_src, it_dst, params, 1)` and is guaranteed non-empty (empty
/// candidates are filtered during analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct Dependence {
    /// Source statement (executes first).
    pub src: StmtId,
    /// Destination statement (executes second).
    pub dst: StmtId,
    /// Flow, anti or output.
    pub kind: DepKind,
    /// The array inducing the dependence.
    pub array: ArrayId,
    /// Dependence polyhedron over `(it_src, it_dst, params, 1)`.
    pub poly: ConstraintSystem,
    /// Candl-style level: `1..=common` means carried by that common loop;
    /// `common + 1` means loop-independent (textual order).
    pub level: usize,
    /// `false` when a non-affine subscript forced a conservative
    /// over-approximation (the subscript equality was dropped).
    pub exact: bool,
    /// Iterator count of the source statement (cached from the scop).
    pub src_depth: usize,
    /// Iterator count of the destination statement (cached from the scop).
    pub dst_depth: usize,
}

/// Number of common (shared) loops of two statements, derived from their
/// β prefixes: loops are the same source loop iff every enclosing β
/// position matches.
pub fn common_loops(s: &Statement, r: &Statement) -> usize {
    let max = s.depth().min(r.depth());
    let mut common = 0;
    for k in 0..max {
        if s.beta[k] == r.beta[k] {
            common += 1;
        } else {
            break;
        }
    }
    common
}

/// Whether `s` textually precedes `r` once they share `common` loops.
fn textually_before(s: &Statement, r: &Statement, common: usize) -> bool {
    let sb = s.beta.get(common).copied().unwrap_or(i64::MIN);
    let rb = r.beta.get(common).copied().unwrap_or(i64::MIN);
    sb < rb
}

/// Computes all dependences of a SCoP.
///
/// For every ordered statement pair `(S, R)` (including `S == R`), every
/// conflicting access pair (same array, at least one write) and every
/// dependence level, a candidate polyhedron is built from:
///
/// * both iteration domains,
/// * the parameter context,
/// * subscript equalities (skipped, conservatively, for div/mod
///   subscripts),
/// * the level's precedence constraint.
///
/// Candidates with no integer point are discarded (exact ILP test).
///
/// # Examples
///
/// ```
/// use polytops_ir::{Aff, ScopBuilder};
/// use polytops_deps::{analyze, DepKind};
///
/// // for (i = 1; i < N; i++) A[i] = A[i-1];  -- loop-carried flow dep.
/// let mut b = ScopBuilder::new("chain");
/// let n = b.param("N");
/// let a = b.array("A", &[n.clone()], 8);
/// b.open_loop("i", Aff::val(1), n - 1);
/// b.stmt("S0")
///     .read(a, &[Aff::var("i") - 1])
///     .write(a, &[Aff::var("i")])
///     .add(&mut b);
/// b.close_loop();
/// let scop = b.build().unwrap();
/// let deps = analyze(&scop);
/// assert!(deps.iter().any(|d| d.kind == DepKind::Flow && d.level == 1));
/// ```
pub fn analyze(scop: &Scop) -> Vec<Dependence> {
    let mut out = Vec::new();
    let np = scop.nparams();
    for s in &scop.statements {
        for r in &scop.statements {
            let common = common_loops(s, r);
            for a in &s.accesses {
                for b in &r.accesses {
                    if a.array != b.array {
                        continue;
                    }
                    let kind = match (a.kind, b.kind) {
                        (AccessKind::Write, AccessKind::Read) => DepKind::Flow,
                        (AccessKind::Read, AccessKind::Write) => DepKind::Anti,
                        (AccessKind::Write, AccessKind::Write) => DepKind::Output,
                        (AccessKind::Read, AccessKind::Read) => continue,
                    };
                    // Same-statement pairs are only related across
                    // *distinct* instances, which carried levels enforce
                    // (loop-independent self-pairs are skipped below).
                    // Carried levels.
                    for level in 1..=common {
                        if let Some(dep) = build_dep(scop, s, r, a, b, kind, level, common, np) {
                            out.push(dep);
                        }
                    }
                    // Loop-independent level.
                    if s.id != r.id && textually_before(s, r, common) {
                        if let Some(dep) = build_dep(scop, s, r, a, b, kind, common + 1, common, np)
                        {
                            out.push(dep);
                        }
                    }
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn build_dep(
    scop: &Scop,
    s: &Statement,
    r: &Statement,
    a: &polytops_ir::Access,
    b: &polytops_ir::Access,
    kind: DepKind,
    level: usize,
    common: usize,
    np: usize,
) -> Option<Dependence> {
    let ds = s.depth();
    let dr = r.depth();
    let nv = ds + dr + np;
    let mut poly = ConstraintSystem::new(nv);

    // Embed source domain: columns (it_s, params) -> (0..ds, ds+dr..).
    for (dkind, row) in s.domain.iter() {
        let mut nr = vec![0i64; nv + 1];
        nr[..ds].copy_from_slice(&row[..ds]);
        nr[ds + dr..ds + dr + np].copy_from_slice(&row[ds..ds + np]);
        nr[nv] = row[ds + np];
        match dkind {
            polytops_math::RowKind::Eq => poly.add_eq(nr),
            polytops_math::RowKind::Ineq => poly.add_ineq(nr),
        }
    }
    // Embed destination domain: columns (it_r, params).
    for (dkind, row) in r.domain.iter() {
        let mut nr = vec![0i64; nv + 1];
        nr[ds..ds + dr].copy_from_slice(&row[..dr]);
        nr[ds + dr..ds + dr + np].copy_from_slice(&row[dr..dr + np]);
        nr[nv] = row[dr + np];
        match dkind {
            polytops_math::RowKind::Eq => poly.add_eq(nr),
            polytops_math::RowKind::Ineq => poly.add_ineq(nr),
        }
    }
    // Context over params.
    for (ckind, row) in scop.context.iter() {
        let mut nr = vec![0i64; nv + 1];
        nr[ds + dr..ds + dr + np].copy_from_slice(&row[..np]);
        nr[nv] = row[np];
        match ckind {
            polytops_math::RowKind::Eq => poly.add_eq(nr),
            polytops_math::RowKind::Ineq => poly.add_ineq(nr),
        }
    }
    // Subscript equality per dimension; non-affine dims are skipped.
    let mut exact = true;
    for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
        match (sa, sb) {
            (Subscript::Aff(ea), Subscript::Aff(eb)) => {
                let mut nr = vec![0i64; nv + 1];
                for (k, &c) in ea.iter_coeffs().iter().enumerate() {
                    nr[k] += c;
                }
                for (k, &c) in eb.iter_coeffs().iter().enumerate() {
                    nr[ds + k] -= c;
                }
                for (k, &c) in ea.param_coeffs().iter().enumerate() {
                    nr[ds + dr + k] += c;
                }
                for (k, &c) in eb.param_coeffs().iter().enumerate() {
                    nr[ds + dr + k] -= c;
                }
                nr[nv] = ea.constant_term() - eb.constant_term();
                poly.add_eq(nr);
            }
            _ => {
                exact = false;
            }
        }
    }
    // Precedence at `level`.
    if level <= common {
        for k in 0..level - 1 {
            let mut nr = vec![0i64; nv + 1];
            nr[k] = 1;
            nr[ds + k] = -1;
            poly.add_eq(nr);
        }
        // it_r[level-1] - it_s[level-1] - 1 >= 0.
        let mut nr = vec![0i64; nv + 1];
        nr[level - 1] = -1;
        nr[ds + level - 1] = 1;
        nr[nv] = -1;
        poly.add_ineq(nr);
    } else {
        // Loop independent: all common iterators equal.
        for k in 0..common {
            let mut nr = vec![0i64; nv + 1];
            nr[k] = 1;
            nr[ds + k] = -1;
            poly.add_eq(nr);
        }
    }

    if !poly.normalize() {
        return None;
    }
    if !ilp_feasible(&poly) {
        return None;
    }
    Some(Dependence {
        src: s.id,
        dst: r.id,
        kind,
        array: a.array,
        poly,
        level,
        exact,
        src_depth: ds,
        dst_depth: dr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_ir::{Aff, ScopBuilder};

    fn chain_scop() -> Scop {
        // for (i = 1; i < N; i++) A[i] = A[i-1];
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn flow_dep_on_chain() {
        let deps = analyze(&chain_scop());
        let flows: Vec<_> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flows.len(), 1);
        let d = flows[0];
        assert_eq!(d.level, 1);
        assert_eq!(d.src, StmtId(0));
        assert_eq!(d.dst, StmtId(0));
        // (i_s, i_r, N) with i_r = i_s + 1 is in the polyhedron.
        assert!(d.poly.contains_point(&[1, 2, 3]));
        assert!(!d.poly.contains_point(&[2, 1, 3]));
        // The flow dep is the *only* dependence: every cell is written
        // once (no output dep) and each read happens after the write of
        // its cell (no anti dep).
        assert_eq!(deps.len(), 1);
    }

    #[test]
    fn independent_arrays_have_no_deps() {
        // Listing 1: two statements on disjoint arrays.
        let mut b = ScopBuilder::new("listing1");
        let a = b.array("a", &[Aff::val(10), Aff::val(100)], 8);
        let c = b.array("c", &[Aff::val(10), Aff::val(100)], 8);
        let e = b.array("e", &[Aff::val(100), Aff::val(10)], 8);
        let d = b.array("d", &[Aff::val(100), Aff::val(10)], 8);
        b.open_loop("i", Aff::val(0), Aff::val(99));
        b.open_loop("j", Aff::val(0), Aff::val(9));
        b.stmt("S0")
            .read(a, &[Aff::var("j"), Aff::var("i")])
            .write(c, &[Aff::var("j"), Aff::var("i")])
            .add(&mut b);
        b.stmt("S1")
            .read(e, &[Aff::var("i"), Aff::var("j")])
            .write(d, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        assert!(analyze(&scop).is_empty());
    }

    #[test]
    fn scalar_reduction_serializes() {
        // for i { x = x + A[i] }: output + flow + anti self-deps on x.
        let mut b = ScopBuilder::new("red");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let x = b.array("x", &[], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        b.stmt("S0")
            .read(x, &[])
            .read(a, &[Aff::var("i")])
            .write(x, &[])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        assert!(deps.iter().any(|d| d.kind == DepKind::Flow));
        assert!(deps.iter().any(|d| d.kind == DepKind::Anti));
        assert!(deps.iter().any(|d| d.kind == DepKind::Output));
    }

    #[test]
    fn loop_independent_dep_between_statements() {
        // for i { S0: B[i] = A[i]; S1: C[i] = B[i]; } — flow at level 2.
        let mut b = ScopBuilder::new("pipe");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let bb = b.array("B", &[n.clone()], 8);
        let c = b.array("C", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i")])
            .write(bb, &[Aff::var("i")])
            .add(&mut b);
        b.stmt("S1")
            .read(bb, &[Aff::var("i")])
            .write(c, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        let flows: Vec<_> = deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow && d.src == StmtId(0))
            .collect();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].level, 2); // loop-independent (common = 1)
                                       // No reverse dependence S1 -> S0.
        assert!(!deps
            .iter()
            .any(|d| d.src == StmtId(1) && d.dst == StmtId(0)));
    }

    #[test]
    fn stencil_has_bidirectional_carried_deps() {
        // for t { for i { A[i] = A[i-1] + A[i] + A[i+1] } }
        let mut b = ScopBuilder::new("jac");
        let n = b.param("N");
        let t = b.param("T");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("t", Aff::val(0), t - 1);
        b.open_loop("i", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .read(a, &[Aff::var("i")])
            .read(a, &[Aff::var("i") + 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        // Carried flow deps at level 1 (time loop) and level 2 (space).
        assert!(deps.iter().any(|d| d.kind == DepKind::Flow && d.level == 1));
        assert!(deps.iter().any(|d| d.kind == DepKind::Flow && d.level == 2));
    }

    #[test]
    fn divmod_access_is_conservative() {
        let mut b = ScopBuilder::new("pyr");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let c = b.array("C", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        b.stmt("S0")
            .read_subs(a, vec![polytops_ir::SubSpec::FloorDiv(Aff::var("i"), 2)])
            .write(c, &[Aff::var("i")])
            .add(&mut b);
        b.stmt("S1")
            .write_subs(a, vec![polytops_ir::SubSpec::Mod(Aff::var("i"), 4)])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        assert!(deps.iter().any(|d| !d.exact));
    }
}
