//! Polyhedral intermediate representation for the PolyTOPS scheduler.
//!
//! A kernel is modelled as a [`Scop`] (static control part): statements
//! with polyhedral iteration domains, affine (or PolyMage-style div/mod)
//! array accesses, and 2d+1 textual positions. Three front doors produce
//! SCoPs:
//!
//! * [`ScopBuilder`] — programmatic construction mirroring source nesting;
//! * [`parse_scop`] / [`print_scop`] — a textual exchange format in the
//!   spirit of OpenScop;
//! * [`frontend::parse_c`] — a miniature Clan extracting SCoPs from a
//!   restricted affine C subset.
//!
//! Scheduling results are represented by [`Schedule`] (per-statement
//! affine rows plus band/parallelism metadata), shared by the scheduler,
//! the code generator and the machine models. Post-processing attaches
//! a structured [`ScheduleTree`] view (isl-style Band / Filter /
//! Sequence / Mark nodes, module [`tree`]) on which tiling, wavefront
//! skewing and vectorization are expressed as tree-to-tree transforms.
//!
//! # Example
//!
//! ```
//! use polytops_ir::{Aff, Schedule, ScopBuilder, StmtId};
//!
//! // for (i = 0; i < N; i++) A[i] = A[i] + 1;
//! let mut b = ScopBuilder::new("inc");
//! let n = b.param("N");
//! let a = b.array("A", &[n.clone()], 8);
//! b.open_loop("i", Aff::val(0), n - 1);
//! b.stmt("S0")
//!     .read(a, &[Aff::var("i")])
//!     .write(a, &[Aff::var("i")])
//!     .add(&mut b);
//! b.close_loop();
//! let scop = b.build().unwrap();
//!
//! let sched = Schedule::identity_2dp1(&scop);
//! assert_eq!(sched.timestamp(StmtId(0), &[5], &[10]), vec![0, 5, 0]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod expr;
pub mod frontend;
mod openscop;
mod schedule;
mod scop;
pub mod tree;

pub use builder::{BuildError, ScopBuilder, StmtSpec, SubSpec};
pub use expr::{Aff, AffineExpr};
pub use openscop::{parse_scop, print_scop, ParseScopError};
pub use schedule::{Schedule, StmtSchedule};
pub use scop::{Access, AccessKind, ArrayId, ArrayInfo, Scop, Statement, StmtId, Subscript};
pub use tree::{
    instance_cmp_paths, BandMember, MarkKind, MemberTerm, PathStep, ScheduleTree, TreeNode,
};
