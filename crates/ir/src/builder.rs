//! Ergonomic construction of [`Scop`]s that mirrors source nesting.
//!
//! The builder keeps an explicit loop stack so the 2d+1 textual positions
//! (β-vectors) fall out of the construction order, exactly like reading
//! the original program top to bottom.

use std::error::Error;
use std::fmt;

use polytops_math::ConstraintSystem;

use crate::expr::{Aff, AffineExpr};
use crate::scop::{Access, AccessKind, ArrayId, ArrayInfo, Scop, Statement, StmtId, Subscript};

/// Errors reported while building a [`Scop`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// An expression referenced a name that is neither a surrounding
    /// iterator nor a declared parameter.
    UnknownName {
        /// The unresolved name.
        name: String,
        /// Statement or loop where it appeared.
        context: String,
    },
    /// `build` was called with loops still open.
    UnbalancedLoops,
    /// `close_loop` without a matching `open_loop`.
    NoOpenLoop,
    /// Two parameters or arrays share a name.
    DuplicateName(String),
    /// An access used the wrong number of subscripts.
    SubscriptArity {
        /// Array name.
        array: String,
        /// Declared dimensionality.
        expected: usize,
        /// Subscripts provided.
        found: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownName { name, context } => {
                write!(f, "unknown name `{name}` in {context}")
            }
            BuildError::UnbalancedLoops => write!(f, "build called with open loops"),
            BuildError::NoOpenLoop => write!(f, "close_loop without open_loop"),
            BuildError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            BuildError::SubscriptArity {
                array,
                expected,
                found,
            } => write!(
                f,
                "array `{array}` has {expected} dimensions but {found} subscripts were given"
            ),
        }
    }
}

impl Error for BuildError {}

/// A subscript specification accepted by [`StmtSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubSpec {
    /// Plain affine subscript.
    Aff(Aff),
    /// `floor(e / k)`, `k > 0`.
    FloorDiv(Aff, i64),
    /// `e mod k`, `k > 0`.
    Mod(Aff, i64),
}

impl From<Aff> for SubSpec {
    fn from(a: Aff) -> SubSpec {
        SubSpec::Aff(a)
    }
}

struct LoopFrame {
    name: String,
    lbs: Vec<Aff>,
    ubs: Vec<Aff>,
    beta_pos: i64,
}

struct PendingAccess {
    array: ArrayId,
    kind: AccessKind,
    subscripts: Vec<SubSpec>,
}

/// A statement under construction; finalize with [`StmtSpec::add`].
///
/// Created by [`ScopBuilder::stmt`]. All configuration methods consume and
/// return `self` for chaining.
pub struct StmtSpec {
    name: String,
    accesses: Vec<PendingAccess>,
    guards: Vec<Aff>,
    ops: u32,
    text: Option<String>,
}

impl StmtSpec {
    /// Declares a read of `array` at affine subscripts.
    pub fn read(mut self, array: ArrayId, subs: &[Aff]) -> StmtSpec {
        self.accesses.push(PendingAccess {
            array,
            kind: AccessKind::Read,
            subscripts: subs.iter().cloned().map(SubSpec::Aff).collect(),
        });
        self
    }

    /// Declares a write of `array` at affine subscripts.
    pub fn write(mut self, array: ArrayId, subs: &[Aff]) -> StmtSpec {
        self.accesses.push(PendingAccess {
            array,
            kind: AccessKind::Write,
            subscripts: subs.iter().cloned().map(SubSpec::Aff).collect(),
        });
        self
    }

    /// Declares a read with general subscripts (div/mod allowed).
    pub fn read_subs(mut self, array: ArrayId, subs: Vec<SubSpec>) -> StmtSpec {
        self.accesses.push(PendingAccess {
            array,
            kind: AccessKind::Read,
            subscripts: subs,
        });
        self
    }

    /// Declares a write with general subscripts (div/mod allowed).
    pub fn write_subs(mut self, array: ArrayId, subs: Vec<SubSpec>) -> StmtSpec {
        self.accesses.push(PendingAccess {
            array,
            kind: AccessKind::Write,
            subscripts: subs,
        });
        self
    }

    /// Adds a guard `expr >= 0` to the statement's domain.
    pub fn guard(mut self, expr: Aff) -> StmtSpec {
        self.guards.push(expr);
        self
    }

    /// Sets the arithmetic cost per instance (default 1).
    pub fn ops(mut self, ops: u32) -> StmtSpec {
        self.ops = ops;
        self
    }

    /// Attaches source text for pretty printing.
    pub fn text(mut self, text: &str) -> StmtSpec {
        self.text = Some(text.to_string());
        self
    }

    /// Finalizes the statement into the builder at the current loop
    /// nesting.
    ///
    /// # Panics
    ///
    /// Panics if a name cannot be resolved or a subscript arity is wrong;
    /// use [`StmtSpec::try_add`] for a fallible version.
    pub fn add(self, b: &mut ScopBuilder) {
        self.try_add(b).expect("statement construction failed");
    }

    /// Fallible version of [`StmtSpec::add`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when names cannot be resolved or subscripts
    /// do not match the array's dimensionality.
    pub fn try_add(self, b: &mut ScopBuilder) -> Result<(), BuildError> {
        b.add_stmt_spec(self)
    }
}

/// Builds [`Scop`]s with source-shaped nesting.
///
/// # Examples
///
/// ```
/// use polytops_ir::{Aff, ScopBuilder};
///
/// // for (i = 0; i < N; i++)
/// //   for (j = 0; j < N; j++)
/// //     C[i][j] = A[i][j] * 2;   (S0)
/// let mut b = ScopBuilder::new("scale");
/// let n = b.param("N");
/// let a = b.array("A", &[n.clone(), n.clone()], 8);
/// let c = b.array("C", &[n.clone(), n.clone()], 8);
/// b.open_loop("i", Aff::val(0), n.clone() - 1);
/// b.open_loop("j", Aff::val(0), n.clone() - 1);
/// b.stmt("S0")
///     .read(a, &[Aff::var("i"), Aff::var("j")])
///     .write(c, &[Aff::var("i"), Aff::var("j")])
///     .add(&mut b);
/// b.close_loop();
/// b.close_loop();
/// let scop = b.build().unwrap();
/// assert_eq!(scop.statements.len(), 1);
/// ```
pub struct ScopBuilder {
    name: String,
    params: Vec<String>,
    context_rows: Vec<Aff>,
    arrays: Vec<ArrayInfo>,
    array_dim_specs: Vec<Vec<Aff>>,
    loops: Vec<LoopFrame>,
    beta_counters: Vec<i64>,
    statements: Vec<Statement>,
    error: Option<BuildError>,
}

impl ScopBuilder {
    /// Starts building a SCoP called `name`.
    pub fn new(name: &str) -> ScopBuilder {
        ScopBuilder {
            name: name.to_string(),
            params: Vec::new(),
            context_rows: Vec::new(),
            arrays: Vec::new(),
            array_dim_specs: Vec::new(),
            loops: Vec::new(),
            beta_counters: vec![0],
            statements: Vec::new(),
            error: None,
        }
    }

    /// Declares a parameter and returns it as an [`Aff`] term. Also
    /// records the default context constraint `param >= 1`.
    pub fn param(&mut self, name: &str) -> Aff {
        if self.params.iter().any(|p| p == name) {
            self.error
                .get_or_insert(BuildError::DuplicateName(name.to_string()));
        } else {
            self.params.push(name.to_string());
            self.context_rows.push(Aff::var(name) - 1);
        }
        Aff::var(name)
    }

    /// Adds a context constraint `expr >= 0` over the parameters.
    pub fn context(&mut self, expr: Aff) {
        self.context_rows.push(expr);
    }

    /// Declares an array with the given per-dimension extents (affine in
    /// the parameters) and element size in bytes.
    pub fn array(&mut self, name: &str, dims: &[Aff], element_size: u32) -> ArrayId {
        if self.arrays.iter().any(|a| a.name == name) {
            self.error
                .get_or_insert(BuildError::DuplicateName(name.to_string()));
        }
        let id = ArrayId(self.arrays.len());
        self.arrays.push(ArrayInfo {
            name: name.to_string(),
            dims: Vec::new(), // resolved in build()
            element_size,
        });
        self.array_dim_specs.push(dims.to_vec());
        id
    }

    /// Opens a loop `lb <= name <= ub` (bounds affine in outer iterators
    /// and parameters).
    pub fn open_loop(&mut self, name: &str, lb: Aff, ub: Aff) {
        self.open_loop_multi(name, &[lb], &[ub]);
    }

    /// Opens a loop with `max(lbs) <= name <= min(ubs)`.
    pub fn open_loop_multi(&mut self, name: &str, lbs: &[Aff], ubs: &[Aff]) {
        let beta_pos = *self.beta_counters.last().expect("counter stack");
        *self.beta_counters.last_mut().unwrap() += 1;
        self.beta_counters.push(0);
        self.loops.push(LoopFrame {
            name: name.to_string(),
            lbs: lbs.to_vec(),
            ubs: ubs.to_vec(),
            beta_pos,
        });
    }

    /// Closes the innermost open loop.
    pub fn close_loop(&mut self) {
        if self.loops.pop().is_none() {
            self.error.get_or_insert(BuildError::NoOpenLoop);
        }
        self.beta_counters.pop();
    }

    /// Starts a statement at the current nesting.
    pub fn stmt(&self, name: &str) -> StmtSpec {
        StmtSpec {
            name: name.to_string(),
            accesses: Vec::new(),
            guards: Vec::new(),
            ops: 1,
            text: None,
        }
    }

    fn iter_names(&self) -> Vec<String> {
        self.loops.iter().map(|l| l.name.clone()).collect()
    }

    fn add_stmt_spec(&mut self, spec: StmtSpec) -> Result<(), BuildError> {
        let iter_names = self.iter_names();
        let depth = iter_names.len();
        let np = self.params.len();
        let resolve = |a: &Aff, ctx: &str| -> Result<AffineExpr, BuildError> {
            a.resolve(&iter_names, &self.params)
                .ok_or_else(|| BuildError::UnknownName {
                    name: a
                        .terms()
                        .iter()
                        .map(|(n, _)| n.clone())
                        .find(|n| !iter_names.contains(n) && !self.params.contains(n))
                        .unwrap_or_default(),
                    context: ctx.to_string(),
                })
        };

        // Domain: loop bounds outermost-in plus statement guards.
        let mut domain = ConstraintSystem::new(depth + np);
        for (level, frame) in self.loops.iter().enumerate() {
            for lb in &frame.lbs {
                // name - lb >= 0
                let e = Aff::var(&frame.name) - lb.clone();
                let ae = resolve(&e, &format!("loop {} lower bound", frame.name))?;
                let _ = level;
                domain.add_ineq(ae.to_row());
            }
            for ub in &frame.ubs {
                // ub - name >= 0
                let e = ub.clone() - Aff::var(&frame.name);
                let ae = resolve(&e, &format!("loop {} upper bound", frame.name))?;
                domain.add_ineq(ae.to_row());
            }
        }
        for g in &spec.guards {
            let ae = resolve(g, &format!("guard of {}", spec.name))?;
            domain.add_ineq(ae.to_row());
        }

        // Accesses.
        let mut accesses = Vec::with_capacity(spec.accesses.len());
        for pa in &spec.accesses {
            let info = &self.arrays[pa.array.0];
            let ndims = self.array_dim_specs[pa.array.0].len();
            if pa.subscripts.len() != ndims {
                return Err(BuildError::SubscriptArity {
                    array: info.name.clone(),
                    expected: ndims,
                    found: pa.subscripts.len(),
                });
            }
            let mut subs = Vec::with_capacity(pa.subscripts.len());
            for s in &pa.subscripts {
                let ctx = format!("access to {} in {}", info.name, spec.name);
                subs.push(match s {
                    SubSpec::Aff(a) => Subscript::Aff(resolve(a, &ctx)?),
                    SubSpec::FloorDiv(a, k) => Subscript::FloorDiv(resolve(a, &ctx)?, *k),
                    SubSpec::Mod(a, k) => Subscript::Mod(resolve(a, &ctx)?, *k),
                });
            }
            accesses.push(Access {
                array: pa.array,
                kind: pa.kind,
                subscripts: subs,
            });
        }

        // Beta: position of each open loop plus the statement's slot.
        let mut beta: Vec<i64> = self.loops.iter().map(|l| l.beta_pos).collect();
        beta.push(*self.beta_counters.last().unwrap());
        *self.beta_counters.last_mut().unwrap() += 1;

        let id = StmtId(self.statements.len());
        self.statements.push(Statement {
            id,
            name: spec.name,
            iter_names,
            domain,
            accesses,
            beta,
            compute_ops: spec.ops,
            text: spec.text,
        });
        Ok(())
    }

    /// Finalizes the SCoP.
    ///
    /// # Errors
    ///
    /// Returns the first construction error encountered, or
    /// [`BuildError::UnbalancedLoops`] if loops remain open.
    pub fn build(mut self) -> Result<Scop, BuildError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if !self.loops.is_empty() {
            return Err(BuildError::UnbalancedLoops);
        }
        // Resolve array extents (params only).
        let np = self.params.len();
        for (info, dims) in self.arrays.iter_mut().zip(&self.array_dim_specs) {
            let mut resolved = Vec::with_capacity(dims.len());
            for d in dims {
                let e = d
                    .resolve(&[], &self.params)
                    .ok_or_else(|| BuildError::UnknownName {
                        name: d
                            .terms()
                            .iter()
                            .map(|(n, _)| n.clone())
                            .find(|n| !self.params.contains(n))
                            .unwrap_or_default(),
                        context: format!("extent of array {}", info.name),
                    })?;
                // Re-embed into (0 iters, params) space.
                resolved.push(AffineExpr::new(
                    Vec::new(),
                    e.param_coeffs().to_vec(),
                    e.constant_term(),
                ));
            }
            info.dims = resolved;
        }
        let mut context = ConstraintSystem::new(np);
        for c in &self.context_rows {
            let e = c
                .resolve(&[], &self.params)
                .ok_or_else(|| BuildError::UnknownName {
                    name: String::new(),
                    context: "context constraint".to_string(),
                })?;
            let mut row = e.param_coeffs().to_vec();
            row.push(e.constant_term());
            context.add_ineq(row);
        }
        Ok(Scop {
            name: self.name,
            params: self.params,
            context,
            arrays: self.arrays,
            statements: self.statements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_vectors_follow_source_order() {
        // S0; for i { S1; for j { S2 } S3 } S4
        let mut b = ScopBuilder::new("beta");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.stmt("S0").write(a, &[Aff::val(0)]).add(&mut b);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S1").write(a, &[Aff::var("i")]).add(&mut b);
        b.open_loop("j", Aff::val(0), n.clone() - 1);
        b.stmt("S2").write(a, &[Aff::var("j")]).add(&mut b);
        b.close_loop();
        b.stmt("S3").write(a, &[Aff::var("i")]).add(&mut b);
        b.close_loop();
        b.stmt("S4").write(a, &[Aff::val(1)]).add(&mut b);
        let scop = b.build().unwrap();
        let betas: Vec<&[i64]> = scop.statements.iter().map(|s| s.beta.as_slice()).collect();
        assert_eq!(betas[0], &[0]);
        assert_eq!(betas[1], &[1, 0]);
        assert_eq!(betas[2], &[1, 1, 0]);
        assert_eq!(betas[3], &[1, 2]);
        assert_eq!(betas[4], &[2]);
    }

    #[test]
    fn unknown_name_is_reported() {
        let mut b = ScopBuilder::new("bad");
        let _n = b.param("N");
        let a = b.array("A", &[Aff::param("N")], 8);
        let r = b.stmt("S0").write(a, &[Aff::var("nope")]).try_add(&mut b);
        assert!(matches!(r, Err(BuildError::UnknownName { .. })));
    }

    #[test]
    fn subscript_arity_is_checked() {
        let mut b = ScopBuilder::new("bad");
        let n = b.param("N");
        let a = b.array("A", &[n.clone(), n.clone()], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        let r = b.stmt("S0").write(a, &[Aff::var("i")]).try_add(&mut b);
        assert!(matches!(r, Err(BuildError::SubscriptArity { .. })));
    }

    #[test]
    fn unbalanced_loops_fail_build() {
        let mut b = ScopBuilder::new("bad");
        let n = b.param("N");
        b.open_loop("i", Aff::val(0), n - 1);
        assert_eq!(b.build().unwrap_err(), BuildError::UnbalancedLoops);
    }

    #[test]
    fn duplicate_param_fails() {
        let mut b = ScopBuilder::new("bad");
        let _ = b.param("N");
        let _ = b.param("N");
        assert!(matches!(b.build(), Err(BuildError::DuplicateName(_))));
    }

    #[test]
    fn context_contains_declared_bounds() {
        let mut b = ScopBuilder::new("ctx");
        let n = b.param("N");
        b.context(n.clone() - 8); // N >= 8
        let scop = b.build().unwrap();
        assert!(scop.context.contains_point(&[8]));
        assert!(!scop.context.contains_point(&[7]));
    }

    #[test]
    fn triangular_bounds_resolve_outer_iters() {
        let mut b = ScopBuilder::new("tri");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 4);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.open_loop("j", Aff::var("i") + 1, n - 1);
        b.stmt("S0").write(a, &[Aff::var("j")]).add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let d = &scop.statements[0].domain;
        // (i, j, N): j >= i + 1 holds, j <= i fails.
        assert!(d.contains_point(&[0, 1, 4]));
        assert!(!d.contains_point(&[1, 1, 4]));
    }
}
