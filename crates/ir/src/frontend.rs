//! A miniature Clan: extracts a [`Scop`] from a restricted affine C
//! subset.
//!
//! Supported constructs (enough for every kernel in this repository):
//!
//! * array/scalar declarations: `double A[N][M]; float x;`
//! * `for (i = lb; i < ub; i++)` / `<=` loops with affine bounds;
//! * `if (affine-cond && ...)` guards;
//! * assignments `lv = expr;` and `lv += / -= / *= expr;` whose reads are
//!   arbitrary arithmetic over affine array references;
//! * subscripts may end in `/ c` or `% c` (PolyMage-style), producing
//!   non-affine [`Subscript`](crate::Subscript) local dimensions;
//! * an optional `#pragma scop` / `#pragma endscop` region.
//!
//! Free identifiers are treated as parameters, exactly like Clan.

use std::error::Error;
use std::fmt;

use crate::builder::{ScopBuilder, SubSpec};
use crate::expr::Aff;
use crate::scop::{ArrayId, Scop};

/// Errors from [`parse_c`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    line: usize,
    message: String,
}

impl FrontendError {
    fn new(line: usize, message: impl Into<String>) -> FrontendError {
        FrontendError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C frontend error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for FrontendError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
}

fn lex(src: &str) -> Result<Lexer, FrontendError> {
    let mut toks = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    while let Some((i, c)) = chars.next() {
        match c {
            '\n' => line += 1,
            c if c.is_whitespace() => {}
            '/' if matches!(chars.peek(), Some((_, '/'))) => {
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' if matches!(chars.peek(), Some((_, '*'))) => {
                chars.next();
                let mut prev = ' ';
                for (_, c2) in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                    }
                    if prev == '*' && c2 == '/' {
                        break;
                    }
                    prev = c2;
                }
            }
            '#' => {
                // Preprocessor line: keep `#pragma scop` / `endscop`.
                let mut text = String::from("#");
                while let Some((_, c2)) = chars.peek().copied() {
                    if c2 == '\n' {
                        break;
                    }
                    text.push(c2);
                    chars.next();
                }
                let t = text.split_whitespace().collect::<Vec<_>>().join(" ");
                if t == "#pragma scop" {
                    toks.push((line, Tok::Sym("#scop")));
                } else if t == "#pragma endscop" {
                    toks.push((line, Tok::Sym("#endscop")));
                }
                // Other preprocessor lines are ignored.
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i + c.len_utf8();
                while let Some((j, c2)) = chars.peek().copied() {
                    if c2.is_ascii_alphanumeric() || c2 == '_' {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((line, Tok::Ident(src[start..end].to_string())));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut end = i + 1;
                while let Some((j, c2)) = chars.peek().copied() {
                    if c2.is_ascii_digit() {
                        end = j + 1;
                        chars.next();
                    } else if c2 == '.' || c2 == 'f' || c2 == 'e' {
                        // Floating literal: consume and treat as value 1
                        // (cost counting only; affine contexts reject it).
                        end = j + 1;
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = &src[start..end];
                match text.parse::<i64>() {
                    Ok(v) => toks.push((line, Tok::Int(v))),
                    Err(_) => toks.push((line, Tok::Sym("fliteral"))),
                }
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2.min(src.len() - i)]
                } else {
                    ""
                };
                let sym2 = match two {
                    "++" | "--" | "+=" | "-=" | "*=" | "/=" | "<=" | ">=" | "==" | "!=" | "&&"
                    | "||" => Some(two),
                    _ => None,
                };
                if let Some(s2) = sym2 {
                    chars.next();
                    let stat: &'static str = match s2 {
                        "++" => "++",
                        "--" => "--",
                        "+=" => "+=",
                        "-=" => "-=",
                        "*=" => "*=",
                        "/=" => "/=",
                        "<=" => "<=",
                        ">=" => ">=",
                        "==" => "==",
                        "!=" => "!=",
                        "&&" => "&&",
                        "||" => "||",
                        _ => unreachable!(),
                    };
                    toks.push((line, Tok::Sym(stat)));
                } else {
                    let stat: &'static str = match c {
                        '(' => "(",
                        ')' => ")",
                        '[' => "[",
                        ']' => "]",
                        '{' => "{",
                        '}' => "}",
                        ';' => ";",
                        ',' => ",",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '%' => "%",
                        _ => {
                            return Err(FrontendError::new(
                                line,
                                format!("unexpected character `{c}`"),
                            ))
                        }
                    };
                    toks.push((line, Tok::Sym(stat)));
                }
            }
        }
    }
    Ok(Lexer { toks })
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    builder: ScopBuilder,
    arrays: Vec<(String, ArrayId, usize)>, // name, id, ndims
    scalars: Vec<String>,
    iter_stack: Vec<String>,
    guard_stack: Vec<Aff>,
    stmt_count: usize,
    known_params: Vec<String>,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn err(&self, msg: impl Into<String>) -> FrontendError {
        FrontendError::new(self.line(), msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek() == Some(&Tok::Sym(unsafe_static(s))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), FrontendError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, FrontendError> {
        match self.bump() {
            Some(Tok::Ident(n)) => Ok(n),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn is_type_name(name: &str) -> bool {
        matches!(
            name,
            "double" | "float" | "int" | "long" | "char" | "short" | "unsigned"
        )
    }

    fn lookup_array(&self, name: &str) -> Option<(ArrayId, usize)> {
        self.arrays
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, id, nd)| (*id, *nd))
    }

    /// Ensures `name` is registered as a parameter if it is not an
    /// iterator, array or scalar.
    fn note_param(&mut self, name: &str) {
        if self.iter_stack.iter().any(|n| n == name) {
            return;
        }
        if self.arrays.iter().any(|(n, _, _)| n == name) {
            return;
        }
        if self.scalars.iter().any(|n| n == name) {
            return;
        }
        if !self.known_params.contains(&name.to_string()) {
            self.known_params.push(name.to_string());
            self.builder.param(name);
        }
    }

    fn parse_decl(&mut self) -> Result<(), FrontendError> {
        // type ident ([expr])* (, ident ([expr])*)* ;
        let _ty = self.expect_ident()?;
        loop {
            let name = self.expect_ident()?;
            let mut dims: Vec<Aff> = Vec::new();
            while self.eat_sym("[") {
                let e = self.parse_affine()?;
                self.expect_sym("]")?;
                dims.push(e);
            }
            if dims.is_empty() {
                self.scalars.push(name.clone());
                let id = self.builder.array(&name, &[], 8);
                self.arrays.push((name, id, 0));
            } else {
                for d in &dims {
                    for (n, _) in d.terms() {
                        self.note_param(n);
                    }
                }
                let id = self.builder.array(&name, &dims, 8);
                self.arrays.push((name, id, dims.len()));
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(";")?;
        Ok(())
    }

    /// Parses an affine expression (sums of products of constants and
    /// identifiers).
    fn parse_affine(&mut self) -> Result<Aff, FrontendError> {
        let mut acc = self.parse_affine_term()?;
        loop {
            if self.eat_sym("+") {
                let t = self.parse_affine_term()?;
                acc = acc + t;
            } else if self.eat_sym("-") {
                let t = self.parse_affine_term()?;
                acc = acc - t;
            } else {
                return Ok(acc);
            }
        }
    }

    fn parse_affine_term(&mut self) -> Result<Aff, FrontendError> {
        let mut factor = self.parse_affine_atom()?;
        while self.eat_sym("*") {
            let rhs = self.parse_affine_atom()?;
            // One side must be constant.
            if rhs.terms().is_empty() {
                factor = factor * rhs.constant_term();
            } else if factor.terms().is_empty() {
                let c = factor.constant_term();
                factor = rhs * c;
            } else {
                return Err(self.err("non-affine product of two variables"));
            }
        }
        Ok(factor)
    }

    fn parse_affine_atom(&mut self) -> Result<Aff, FrontendError> {
        if self.eat_sym("(") {
            let e = self.parse_affine()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        if self.eat_sym("-") {
            let e = self.parse_affine_atom()?;
            return Ok(-e);
        }
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Aff::val(v)),
            Some(Tok::Ident(n)) => {
                self.note_param(&n);
                Ok(Aff::var(&n))
            }
            other => Err(self.err(format!("expected affine atom, found {other:?}"))),
        }
    }

    /// Parses one subscript: affine expression optionally followed by
    /// `/ const` or `% const` at top level.
    fn parse_subscript(&mut self) -> Result<SubSpec, FrontendError> {
        let e = self.parse_affine()?;
        if self.eat_sym("/") {
            match self.bump() {
                Some(Tok::Int(k)) if k > 0 => Ok(SubSpec::FloorDiv(e, k)),
                other => Err(self.err(format!("expected positive divisor, found {other:?}"))),
            }
        } else if self.eat_sym("%") {
            match self.bump() {
                Some(Tok::Int(k)) if k > 0 => Ok(SubSpec::Mod(e, k)),
                other => Err(self.err(format!("expected positive modulus, found {other:?}"))),
            }
        } else {
            Ok(SubSpec::Aff(e))
        }
    }

    fn parse_for(&mut self) -> Result<(), FrontendError> {
        self.expect_sym("(")?;
        // Optional `int` in the init.
        if let Some(Tok::Ident(n)) = self.peek() {
            if Self::is_type_name(n) {
                self.bump();
            }
        }
        let iter = self.expect_ident()?;
        self.expect_sym("=")?;
        let lb = self.parse_affine()?;
        self.expect_sym(";")?;
        let cond_iter = self.expect_ident()?;
        if cond_iter != iter {
            return Err(self.err("loop condition must test the loop iterator"));
        }
        let strict = if self.eat_sym("<") {
            true
        } else if self.eat_sym("<=") {
            false
        } else {
            return Err(self.err("expected `<` or `<=` in loop condition"));
        };
        let ub_raw = self.parse_affine()?;
        let ub = if strict { ub_raw - 1 } else { ub_raw };
        self.expect_sym(";")?;
        // Increment: i++ or i = i + 1 or i += 1.
        let inc_iter = self.expect_ident()?;
        if inc_iter != iter {
            return Err(self.err("loop increment must update the loop iterator"));
        }
        if self.eat_sym("++") {
        } else if self.eat_sym("+=") {
            match self.bump() {
                Some(Tok::Int(1)) => {}
                _ => return Err(self.err("only unit stride loops are supported")),
            }
        } else if self.eat_sym("=") {
            let e = self.parse_affine()?;
            let expect = Aff::var(&iter) + 1;
            if e != expect {
                return Err(self.err("only unit stride loops are supported"));
            }
        } else {
            return Err(self.err("unsupported loop increment"));
        }
        self.expect_sym(")")?;
        self.builder.open_loop(&iter, lb, ub);
        self.iter_stack.push(iter);
        self.parse_body()?;
        self.iter_stack.pop();
        self.builder.close_loop();
        Ok(())
    }

    fn parse_if(&mut self) -> Result<(), FrontendError> {
        self.expect_sym("(")?;
        let mut guards: Vec<Aff> = Vec::new();
        loop {
            let lhs = self.parse_affine()?;
            let op = match self.bump() {
                Some(Tok::Sym(s)) => s,
                other => return Err(self.err(format!("expected comparison, found {other:?}"))),
            };
            let rhs = self.parse_affine()?;
            match op {
                "<" => guards.push(rhs - lhs - 1),
                "<=" => guards.push(rhs - lhs),
                ">" => guards.push(lhs - rhs - 1),
                ">=" => guards.push(lhs - rhs),
                "==" => {
                    guards.push(lhs.clone() - rhs.clone());
                    guards.push(rhs - lhs);
                }
                other => return Err(self.err(format!("unsupported comparison `{other}`"))),
            }
            if !self.eat_sym("&&") {
                break;
            }
        }
        self.expect_sym(")")?;
        let added = guards.len();
        self.guard_stack.extend(guards);
        self.parse_body()?;
        for _ in 0..added {
            self.guard_stack.pop();
        }
        Ok(())
    }

    fn parse_body(&mut self) -> Result<(), FrontendError> {
        if self.eat_sym("{") {
            while !self.eat_sym("}") {
                self.parse_item()?;
            }
            Ok(())
        } else {
            self.parse_item()
        }
    }

    /// Parses an arbitrary arithmetic RHS, collecting reads and counting
    /// operators.
    fn parse_rhs(
        &mut self,
        reads: &mut Vec<(ArrayId, Vec<SubSpec>)>,
        ops: &mut u32,
    ) -> Result<(), FrontendError> {
        self.parse_rhs_term(reads, ops)?;
        loop {
            if self.eat_sym("+") || self.eat_sym("-") {
                *ops += 1;
                self.parse_rhs_term(reads, ops)?;
            } else {
                return Ok(());
            }
        }
    }

    fn parse_rhs_term(
        &mut self,
        reads: &mut Vec<(ArrayId, Vec<SubSpec>)>,
        ops: &mut u32,
    ) -> Result<(), FrontendError> {
        self.parse_rhs_atom(reads, ops)?;
        loop {
            if self.eat_sym("*") || self.eat_sym("/") || self.eat_sym("%") {
                *ops += 1;
                self.parse_rhs_atom(reads, ops)?;
            } else {
                return Ok(());
            }
        }
    }

    fn parse_rhs_atom(
        &mut self,
        reads: &mut Vec<(ArrayId, Vec<SubSpec>)>,
        ops: &mut u32,
    ) -> Result<(), FrontendError> {
        if self.eat_sym("(") {
            self.parse_rhs(reads, ops)?;
            self.expect_sym(")")?;
            return Ok(());
        }
        if self.eat_sym("-") {
            return self.parse_rhs_atom(reads, ops);
        }
        match self.bump() {
            Some(Tok::Int(_)) | Some(Tok::Sym("fliteral")) => Ok(()),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::Sym("(")) {
                    // Function call (e.g. sqrt): parse args as reads.
                    self.bump();
                    *ops += 1;
                    if self.peek() != Some(&Tok::Sym(")")) {
                        loop {
                            self.parse_rhs(reads, ops)?;
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym(")")?;
                    return Ok(());
                }
                if self.peek() == Some(&Tok::Sym("[")) {
                    let (id, nd) = self
                        .lookup_array(&name)
                        .ok_or_else(|| self.err(format!("undeclared array `{name}`")))?;
                    let mut subs = Vec::new();
                    while self.eat_sym("[") {
                        subs.push(self.parse_subscript()?);
                        self.expect_sym("]")?;
                    }
                    if subs.len() != nd {
                        return Err(self.err(format!(
                            "array `{name}` used with {} subscripts, declared with {nd}",
                            subs.len()
                        )));
                    }
                    reads.push((id, subs));
                    return Ok(());
                }
                // Bare identifier: scalar read, iterator or parameter.
                if let Some((id, 0)) = self.lookup_array(&name) {
                    reads.push((id, Vec::new()));
                } else {
                    self.note_param(&name);
                }
                Ok(())
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn parse_assignment(&mut self) -> Result<(), FrontendError> {
        let start_line = self.line();
        let name = self.expect_ident()?;
        // Lvalue.
        let (array, nd) = match self.lookup_array(&name) {
            Some(x) => x,
            None => {
                // Auto-declare a scalar on first write.
                self.scalars.push(name.clone());
                let id = self.builder.array(&name, &[], 8);
                self.arrays.push((name.clone(), id, 0));
                (id, 0)
            }
        };
        let mut lsubs: Vec<SubSpec> = Vec::new();
        while self.eat_sym("[") {
            lsubs.push(self.parse_subscript()?);
            self.expect_sym("]")?;
        }
        if lsubs.len() != nd {
            return Err(self.err(format!(
                "array `{name}` used with {} subscripts, declared with {nd}",
                lsubs.len()
            )));
        }
        let mut reads: Vec<(ArrayId, Vec<SubSpec>)> = Vec::new();
        let mut ops: u32 = 0;
        let compound = if self.eat_sym("=") {
            false
        } else if self.eat_sym("+=")
            || self.eat_sym("-=")
            || self.eat_sym("*=")
            || self.eat_sym("/=")
        {
            ops += 1;
            true
        } else {
            return Err(self.err("expected assignment operator"));
        };
        if compound {
            reads.push((array, lsubs.clone()));
        }
        self.parse_rhs(&mut reads, &mut ops)?;
        self.expect_sym(";")?;
        let mut spec = self
            .builder
            .stmt(&format!("S{}", self.stmt_count))
            .write_subs(array, lsubs)
            .ops(ops.max(1))
            .text(&format!("line {start_line}"));
        self.stmt_count += 1;
        for (id, subs) in reads {
            spec = spec.read_subs(id, subs);
        }
        for g in self.guard_stack.clone() {
            spec = spec.guard(g);
        }
        spec.try_add(&mut self.builder)
            .map_err(|e| self.err(e.to_string()))
    }

    fn parse_item(&mut self) -> Result<(), FrontendError> {
        match self.peek() {
            Some(Tok::Ident(n)) if n == "for" => {
                self.bump();
                self.parse_for()
            }
            Some(Tok::Ident(n)) if n == "if" => {
                self.bump();
                self.parse_if()
            }
            Some(Tok::Ident(n))
                if Self::is_type_name(n) && matches!(self.peek2(), Some(Tok::Ident(_))) =>
            {
                self.parse_decl()
            }
            Some(Tok::Ident(_)) => self.parse_assignment(),
            Some(Tok::Sym("{")) => self.parse_body(),
            other => Err(self.err(format!("unexpected {other:?}"))),
        }
    }
}

fn unsafe_static(s: &str) -> &'static str {
    // Interns the small fixed set of symbols used by `eat_sym`.
    match s {
        "(" => "(",
        ")" => ")",
        "[" => "[",
        "]" => "]",
        "{" => "{",
        "}" => "}",
        ";" => ";",
        "," => ",",
        "=" => "=",
        "<" => "<",
        ">" => ">",
        "+" => "+",
        "-" => "-",
        "*" => "*",
        "/" => "/",
        "%" => "%",
        "++" => "++",
        "--" => "--",
        "+=" => "+=",
        "-=" => "-=",
        "*=" => "*=",
        "/=" => "/=",
        "<=" => "<=",
        ">=" => ">=",
        "==" => "==",
        "!=" => "!=",
        "&&" => "&&",
        "||" => "||",
        "#scop" => "#scop",
        "#endscop" => "#endscop",
        _ => panic!("unknown symbol `{s}`"),
    }
}

/// Parses a restricted affine C subset into a [`Scop`] named `name`.
///
/// # Errors
///
/// Returns [`FrontendError`] with a line number for unsupported or
/// malformed constructs.
///
/// # Examples
///
/// ```
/// let src = r#"
///     double A[N][N];
///     double B[N][N];
///     #pragma scop
///     for (i = 0; i < N; i++)
///         for (j = 0; j < N; j++)
///             B[i][j] = A[i][j] * 2.0;
///     #pragma endscop
/// "#;
/// let scop = polytops_ir::frontend::parse_c("scale", src).unwrap();
/// assert_eq!(scop.statements.len(), 1);
/// assert_eq!(scop.params, vec!["N".to_string()]);
/// ```
pub fn parse_c(name: &str, src: &str) -> Result<Scop, FrontendError> {
    let lexer = lex(src)?;
    let mut p = Parser {
        toks: lexer.toks,
        pos: 0,
        builder: ScopBuilder::new(name),
        arrays: Vec::new(),
        scalars: Vec::new(),
        iter_stack: Vec::new(),
        guard_stack: Vec::new(),
        stmt_count: 0,
        known_params: Vec::new(),
    };
    // Declarations may appear before the pragma region.
    let mut in_scop = !p.toks.iter().any(|(_, t)| *t == Tok::Sym("#scop"));
    while p.pos < p.toks.len() {
        match p.peek() {
            Some(Tok::Sym("#scop")) => {
                p.bump();
                in_scop = true;
            }
            Some(Tok::Sym("#endscop")) => {
                p.bump();
                in_scop = false;
            }
            Some(Tok::Ident(n))
                if Parser::is_type_name(n) && matches!(p.peek2(), Some(Tok::Ident(_))) =>
            {
                p.parse_decl()?;
            }
            _ if in_scop => p.parse_item()?,
            _ => {
                p.bump(); // skip tokens outside the scop region
            }
        }
    }
    p.builder
        .build()
        .map_err(|e| FrontendError::new(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scop::AccessKind;

    #[test]
    fn parses_gemm_shape() {
        let src = r#"
            double A[N][K]; double B[K][M]; double C[N][M];
            for (i = 0; i < N; i++)
                for (j = 0; j < M; j++) {
                    C[i][j] *= beta;
                    for (k = 0; k < K; k++)
                        C[i][j] += alpha * A[i][k] * B[k][j];
                }
        "#;
        let scop = parse_c("gemm", src).unwrap();
        assert_eq!(scop.statements.len(), 2);
        assert_eq!(scop.statements[0].depth(), 2);
        assert_eq!(scop.statements[1].depth(), 3);
        // alpha/beta became parameters alongside N, M, K.
        assert!(scop.params.contains(&"alpha".to_string()));
        // S1 sits in loop i (pos 0), loop j (pos 0), loop k (second item
        // of j's body, pos 1), first statement of k's body.
        assert_eq!(scop.statements[1].beta, vec![0, 0, 1, 0]);
        // C[i][j] += ... has both read and write of C.
        let s1 = &scop.statements[1];
        let c_reads = s1
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Read && scop.array(a.array).name == "C")
            .count();
        assert_eq!(c_reads, 1);
    }

    #[test]
    fn triangular_loop_bounds() {
        let src = r#"
            double L[N][N]; double x[N]; double b[N];
            for (i = 0; i < N; i++)
                for (j = 0; j <= i - 1; j++)
                    b[i] -= L[i][j] * x[j];
        "#;
        let scop = parse_c("trisolv_part", src).unwrap();
        let d = &scop.statements[0].domain;
        // (i, j, N): j <= i - 1.
        assert!(d.contains_point(&[2, 1, 5]));
        assert!(!d.contains_point(&[2, 2, 5]));
    }

    #[test]
    fn if_guard_becomes_domain_constraint() {
        let src = r#"
            double A[N];
            for (i = 0; i < N; i++)
                if (i >= 2)
                    A[i] = A[i - 2];
        "#;
        let scop = parse_c("guarded", src).unwrap();
        let d = &scop.statements[0].domain;
        assert!(d.contains_point(&[2, 5]));
        assert!(!d.contains_point(&[1, 5]));
    }

    #[test]
    fn divmod_subscripts_flagged_non_affine() {
        let src = r#"
            double in[N]; double out[N];
            for (i = 0; i < N; i++)
                out[i / 2] = in[i % 4];
        "#;
        let scop = parse_c("pyr", src).unwrap();
        assert!(!scop.is_fully_affine());
    }

    #[test]
    fn rejects_nonaffine_bound() {
        let src = r#"
            double A[N];
            for (i = 0; i < N * N; i++)
                A[0] = A[0] + 1;
        "#;
        // N*N is a product of two variables: rejected.
        assert!(parse_c("bad", src).is_err());
    }

    #[test]
    fn rejects_non_unit_stride() {
        let src = r#"
            double A[N];
            for (i = 0; i < N; i += 2)
                A[i] = 0.0;
        "#;
        assert!(parse_c("bad", src).is_err());
    }

    #[test]
    fn pragma_region_limits_extraction() {
        let src = r#"
            double A[N];
            int unrelated;
            unrelated = 3;
            #pragma scop
            for (i = 0; i < N; i++)
                A[i] = 0.0;
            #pragma endscop
            unrelated = 4;
        "#;
        let scop = parse_c("region", src).unwrap();
        assert_eq!(scop.statements.len(), 1);
    }

    #[test]
    fn function_calls_counted_as_ops() {
        let src = r#"
            double A[N]; double B[N];
            for (i = 0; i < N; i++)
                B[i] = sqrt(A[i]);
        "#;
        let scop = parse_c("calls", src).unwrap();
        assert_eq!(scop.statements.len(), 1);
        assert!(scop.statements[0].compute_ops >= 1);
        assert_eq!(scop.statements[0].reads().count(), 1);
    }
}
