//! The static control part (SCoP) model: arrays, accesses, statements.

use std::fmt;

use polytops_math::ConstraintSystem;

use crate::expr::AffineExpr;

/// Identifies an array declared in a [`Scop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// Identifies a statement within a [`Scop`] (textual order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub usize);

/// An array (or scalar, when `dims` is empty) accessed by the SCoP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Source-level name.
    pub name: String,
    /// Extent of each dimension, affine in the parameters (no iterators).
    pub dims: Vec<AffineExpr>,
    /// Element size in bytes (simulators use this for cache lines).
    pub element_size: u32,
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The statement reads the cell.
    Read,
    /// The statement writes the cell.
    Write,
}

/// One array subscript expression.
///
/// Affine subscripts drive exact dependence analysis; `FloorDiv`/`Mod`
/// subscripts (PolyMage-style image pipelines) are evaluated exactly by
/// the simulator but analyzed conservatively (they also make a SCoP
/// unsupported by schedulers without "local dimension" support — the n.a.
/// entries of the paper's Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subscript {
    /// A plain affine subscript.
    Aff(AffineExpr),
    /// `floor(e / k)` with `k > 0`.
    FloorDiv(AffineExpr, i64),
    /// `e mod k` with `k > 0`.
    Mod(AffineExpr, i64),
}

impl Subscript {
    /// The underlying affine expression.
    pub fn expr(&self) -> &AffineExpr {
        match self {
            Subscript::Aff(e) | Subscript::FloorDiv(e, _) | Subscript::Mod(e, _) => e,
        }
    }

    /// Whether the subscript is plain affine.
    pub fn is_affine(&self) -> bool {
        matches!(self, Subscript::Aff(_))
    }

    /// Evaluates at concrete iterator/parameter values.
    pub fn eval(&self, iters: &[i64], params: &[i64]) -> i64 {
        match self {
            Subscript::Aff(e) => e.eval(iters, params),
            Subscript::FloorDiv(e, k) => polytops_math::floor_div(e.eval(iters, params), *k),
            Subscript::Mod(e, k) => polytops_math::modulo(e.eval(iters, params), *k),
        }
    }
}

/// A single memory access performed by a statement instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Which array is touched.
    pub array: ArrayId,
    /// Read or write.
    pub kind: AccessKind,
    /// One subscript per array dimension (empty for scalars).
    pub subscripts: Vec<Subscript>,
}

impl Access {
    /// Whether all subscripts are affine.
    pub fn is_affine(&self) -> bool {
        self.subscripts.iter().all(Subscript::is_affine)
    }
}

/// A statement of the SCoP: an iteration domain plus its accesses.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// Statement id (textual order).
    pub id: StmtId,
    /// Source-level name, e.g. `S0`.
    pub name: String,
    /// Names of the surrounding loop iterators, outermost first.
    pub iter_names: Vec<String>,
    /// Iteration domain over `(iters, params, 1)` columns.
    pub domain: ConstraintSystem,
    /// Memory accesses (reads and writes).
    pub accesses: Vec<Access>,
    /// The 2d+1 textual position: `beta[k]` is the statement's position
    /// at nesting level `k` (length `depth + 1`).
    pub beta: Vec<i64>,
    /// Arithmetic operations per instance (simulator cost).
    pub compute_ops: u32,
    /// Optional source text for pretty printing.
    pub text: Option<String>,
}

impl Statement {
    /// Loop nesting depth.
    pub fn depth(&self) -> usize {
        self.iter_names.len()
    }

    /// The write accesses.
    pub fn writes(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.kind == AccessKind::Write)
    }

    /// The read accesses.
    pub fn reads(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.kind == AccessKind::Read)
    }

    /// Whether every access of the statement is affine.
    pub fn is_affine(&self) -> bool {
        self.accesses.iter().all(Access::is_affine)
    }
}

/// A static control part: the unit of polyhedral optimization.
///
/// Build one with [`ScopBuilder`](crate::ScopBuilder), parse one from the
/// textual exchange format ([`crate::parse_scop`]) or extract one from C
/// source with [`crate::frontend::parse_c`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scop {
    /// Kernel name.
    pub name: String,
    /// Global parameter names (symbolic sizes).
    pub params: Vec<String>,
    /// Known constraints over the parameters (e.g. `N >= 1`), over
    /// `(params, 1)` columns.
    pub context: ConstraintSystem,
    /// Arrays referenced by the statements.
    pub arrays: Vec<ArrayInfo>,
    /// Statements in textual order.
    pub statements: Vec<Statement>,
}

impl Scop {
    /// Number of parameters.
    pub fn nparams(&self) -> usize {
        self.params.len()
    }

    /// Looks up a statement.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn stmt(&self, id: StmtId) -> &Statement {
        &self.statements[id.0]
    }

    /// Looks up an array.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.0]
    }

    /// Maximum statement depth.
    pub fn max_depth(&self) -> usize {
        self.statements
            .iter()
            .map(Statement::depth)
            .max()
            .unwrap_or(0)
    }

    /// Whether every access in every statement is affine (no div/mod
    /// local dimensions). Tools without local-variable support reject
    /// SCoPs where this is `false` (Table II n.a. entries).
    pub fn is_fully_affine(&self) -> bool {
        self.statements.iter().all(Statement::is_affine)
    }

    /// Enumerates the concrete points of a statement's domain for given
    /// parameter values, in lexicographic iteration order. Intended for
    /// testing and for the simulator on modest sizes.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.nparams()` or if a domain is
    /// unbounded for the given parameters.
    pub fn enumerate_domain(&self, id: StmtId, params: &[i64]) -> Vec<Vec<i64>> {
        assert_eq!(params.len(), self.nparams(), "param arity mismatch");
        let stmt = self.stmt(id);
        let depth = stmt.depth();
        let mut out = Vec::new();
        let mut point = vec![0i64; depth];
        // Derive bounds per level by scanning constraint rows.
        fn rec(
            stmt: &Statement,
            params: &[i64],
            depth: usize,
            level: usize,
            point: &mut Vec<i64>,
            out: &mut Vec<Vec<i64>>,
        ) {
            if level == depth {
                out.push(point.clone());
                return;
            }
            let (lo, hi) = level_bounds(stmt, params, level, point);
            for v in lo..=hi {
                point[level] = v;
                // Check rows fully determined up to this level.
                if row_prefix_feasible(stmt, params, level, point) {
                    rec(stmt, params, depth, level + 1, point, out);
                }
            }
            point[level] = 0;
        }
        /// Bounds for `level` given fixed outer values.
        fn level_bounds(
            stmt: &Statement,
            params: &[i64],
            level: usize,
            point: &[i64],
        ) -> (i64, i64) {
            let depth = stmt.depth();
            let np = params.len();
            let mut lo = i64::MIN;
            let mut hi = i64::MAX;
            for (kind, row) in stmt.domain.iter() {
                // Only rows whose innermost involved iterator is `level`.
                if row[level] == 0 {
                    continue;
                }
                if row[level + 1..depth].iter().any(|&c| c != 0) {
                    continue;
                }
                let mut rest = i128::from(row[depth + np]);
                for k in 0..level {
                    rest += i128::from(row[k]) * i128::from(point[k]);
                }
                for j in 0..np {
                    rest += i128::from(row[depth + j]) * i128::from(params[j]);
                }
                let a = row[level];
                match kind {
                    polytops_math::RowKind::Ineq => {
                        // a*x + rest >= 0
                        if a > 0 {
                            let b = polytops_math::ceil_div(
                                i64::try_from(-rest).expect("bound overflow"),
                                a,
                            );
                            lo = lo.max(b);
                        } else {
                            let b = polytops_math::floor_div(
                                i64::try_from(rest).expect("bound overflow"),
                                -a,
                            );
                            hi = hi.min(b);
                        }
                    }
                    polytops_math::RowKind::Eq => {
                        let r = i64::try_from(-rest).expect("bound overflow");
                        if r % a == 0 {
                            lo = lo.max(r / a);
                            hi = hi.min(r / a);
                        } else {
                            // No integer solution at this level.
                            return (1, 0);
                        }
                    }
                }
            }
            if (lo == i64::MIN || hi == i64::MAX) && lo <= hi {
                panic!("unbounded domain for {} at level {level}", stmt.name);
            }
            (lo, hi)
        }
        /// Re-checks rows that only involve iterators `0..=level`.
        fn row_prefix_feasible(
            stmt: &Statement,
            params: &[i64],
            level: usize,
            point: &[i64],
        ) -> bool {
            let depth = stmt.depth();
            let np = params.len();
            for (kind, row) in stmt.domain.iter() {
                if row[level + 1..depth].iter().any(|&c| c != 0) {
                    continue;
                }
                let mut acc = i128::from(row[depth + np]);
                for k in 0..=level {
                    acc += i128::from(row[k]) * i128::from(point[k]);
                }
                for j in 0..np {
                    acc += i128::from(row[depth + j]) * i128::from(params[j]);
                }
                let ok = match kind {
                    polytops_math::RowKind::Ineq => acc >= 0,
                    polytops_math::RowKind::Eq => acc == 0,
                };
                if !ok {
                    return false;
                }
            }
            true
        }
        rec(stmt, params, depth, 0, &mut point, &mut out);
        out
    }
}

impl fmt::Display for Scop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scop {} (params: {}; {} arrays, {} statements)",
            self.name,
            self.params.join(", "),
            self.arrays.len(),
            self.statements.len()
        )?;
        for s in &self.statements {
            writeln!(
                f,
                "  {}[{}] beta={:?} ops={}",
                s.name,
                s.iter_names.join(", "),
                s.beta,
                s.compute_ops
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScopBuilder;
    use crate::expr::Aff;

    fn triangle_scop() -> Scop {
        // for (i = 0; i < N; i++) for (j = 0; j <= i; j++) S0;
        let mut b = ScopBuilder::new("tri");
        let n = b.param("N");
        let a = b.array("A", &[Aff::param("N"), Aff::param("N")], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.open_loop("j", Aff::val(0), Aff::var("i"));
        b.stmt("S0")
            .write(a, &[Aff::var("i"), Aff::var("j")])
            .ops(1)
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn enumerate_triangle() {
        let scop = triangle_scop();
        let pts = scop.enumerate_domain(StmtId(0), &[3]);
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![1, 1],
                vec![2, 0],
                vec![2, 1],
                vec![2, 2]
            ]
        );
    }

    #[test]
    fn empty_domain_enumerates_nothing() {
        let scop = triangle_scop();
        assert!(scop.enumerate_domain(StmtId(0), &[0]).is_empty());
    }

    #[test]
    fn accessors() {
        let scop = triangle_scop();
        assert_eq!(scop.nparams(), 1);
        assert_eq!(scop.max_depth(), 2);
        assert!(scop.is_fully_affine());
        let s = scop.stmt(StmtId(0));
        assert_eq!(s.depth(), 2);
        assert_eq!(s.writes().count(), 1);
        assert_eq!(s.reads().count(), 0);
    }
}
