//! Explicit isl-style schedule trees.
//!
//! A [`ScheduleTree`] is the structured form of a [`Schedule`]: instead
//! of a flat list of rows plus side-channel metadata, the schedule is a
//! tree of nodes in the isl vocabulary —
//!
//! * [`TreeNode::Band`]: a permutable run of quasi-affine members, each
//!   with its own coincidence (parallelism) flag;
//! * [`TreeNode::Sequence`] over [`TreeNode::Filter`] children: explicit
//!   textual ordering of disjoint statement groups (what a constant
//!   splitting row encodes in the flat form);
//! * [`TreeNode::Mark`]: post-processing annotations (tiling sizes,
//!   wavefront, vectorization) that carry no ordering semantics;
//! * [`TreeNode::Leaf`]: the end of a branch.
//!
//! Band members are *quasi-affine*: a member's value at a statement
//! instance is a sum of floored affine forms `Σ ⌊rowⱼ·x / divⱼ⌋`. An
//! ordinary loop dimension is a single term with divisor 1; a tile
//! counter is a single term with divisor = tile size; a wavefront of
//! tile loops is a sum of several floored terms (which is exactly why
//! the flat row representation could not express it).
//!
//! The semantics of a tree is an *instance order*: every statement has a
//! root-to-leaf path of [`PathStep`]s, and two instances compare
//! lexicographically along their paths, stepping in lockstep while the
//! paths traverse the same nodes ([`ScheduleTree::instance_cmp`]). This
//! is the function that makes tree/flat equivalence checkable and lets
//! the dependence oracle certify transformed trees.

use std::cmp::Ordering;
use std::fmt::Write as _;

use crate::schedule::Schedule;
use crate::scop::{Scop, StmtId};

/// Floor division (rounds toward negative infinity; `div > 0`).
pub fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "positive divisor");
    let (q, r) = (a / b, a % b);
    if r < 0 {
        q - 1
    } else {
        q
    }
}

/// One additive term of a band member: contributes `⌊row·x / div⌋` to
/// the member's value (plain `row·x` when `div == 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberTerm {
    /// Per-statement numerator rows, indexed by statement id; each row
    /// is over that statement's `(iters, params, 1)` columns. Entries
    /// for statements outside the owning node's subtree are unused.
    pub rows: Vec<Vec<i64>>,
    /// Positive divisor (1 for an affine term, the tile size for a tile
    /// counter).
    pub div: i64,
    /// The flat scheduling dimension this term scans (feature
    /// extraction and loop naming trace tree facts back through it).
    pub source_dim: usize,
}

/// One dimension of a band: a quasi-affine function of the statement
/// instance, `value = Σ ⌊rowⱼ·x / divⱼ⌋` over the member's terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BandMember {
    /// The additive floored terms (at least one).
    pub terms: Vec<MemberTerm>,
    /// Whether the member is coincident (zero dependence distance given
    /// equal outer schedule coordinates): its loop may run in parallel.
    pub coincident: bool,
}

impl BandMember {
    /// The member's primary flat scheduling dimension (of its first
    /// term).
    pub fn source_dim(&self) -> usize {
        self.terms.first().map_or(0, |t| t.source_dim)
    }

    /// Whether the member is a plain affine form (a single term with
    /// divisor 1).
    pub fn is_affine(&self) -> bool {
        self.terms.len() == 1 && self.terms[0].div == 1
    }

    /// Evaluates the member at a concrete statement instance.
    ///
    /// # Panics
    ///
    /// Panics if the statement id is out of range or the row arity does
    /// not match `iters.len() + params.len() + 1`.
    pub fn eval(&self, stmt: StmtId, iters: &[i64], params: &[i64]) -> i64 {
        self.terms
            .iter()
            .map(|t| {
                let row = &t.rows[stmt.0];
                assert_eq!(row.len(), iters.len() + params.len() + 1, "row arity");
                let mut acc = row[row.len() - 1];
                for (c, v) in row.iter().zip(iters.iter().chain(params)) {
                    acc += c * v;
                }
                div_floor(acc, t.div)
            })
            .sum()
    }
}

/// A post-processing annotation attached to the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkKind {
    /// The band below is a tile band created by tiling with these sizes
    /// (one per member of the original band).
    Tile(Vec<i64>),
    /// The band below had its outermost member wavefront-skewed.
    Wavefront,
    /// The innermost member of the band below is vectorizable for these
    /// statements.
    Vectorize(Vec<usize>),
}

/// A node of the schedule tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// A permutable band of quasi-affine members.
    Band {
        /// The band's members, outermost first.
        members: Vec<BandMember>,
        /// Whether the members may be freely interchanged (every member
        /// individually legal for every dependence live at the band).
        permutable: bool,
        /// The subtree below the band.
        child: Box<TreeNode>,
    },
    /// Restricts the subtree to a statement subset.
    Filter {
        /// Statement ids selected by this filter (sorted, disjoint from
        /// sibling filters).
        stmts: Vec<usize>,
        /// The subtree for the selected statements.
        child: Box<TreeNode>,
    },
    /// Ordered children executed one after another (each child is
    /// normally a [`TreeNode::Filter`]).
    Sequence(Vec<TreeNode>),
    /// An annotation with no ordering semantics of its own.
    Mark {
        /// What the annotation says.
        kind: MarkKind,
        /// The annotated subtree.
        child: Box<TreeNode>,
    },
    /// The end of a branch.
    Leaf,
}

impl TreeNode {
    /// Wraps a node in a box (builder convenience).
    pub fn boxed(self) -> Box<TreeNode> {
        Box::new(self)
    }
}

/// One step of a statement's root-to-leaf path through the tree: the
/// unit of the instance-order semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStep {
    /// A band member crossed by the statement. Two instances whose
    /// paths share the step's `node` compare by the member's value.
    Member {
        /// Structural node id — equal across statements that cross the
        /// same member of the same band.
        node: usize,
        /// The member's terms specialized to this statement:
        /// `(numerator row, divisor)` with the row over the statement's
        /// `(iters, params, 1)` columns.
        terms: Vec<(Vec<i64>, i64)>,
        /// The member's coincidence flag.
        coincident: bool,
    },
    /// A sequence decision: this statement sits in child `pos`. Two
    /// instances whose paths share the step's `node` compare by `pos`.
    Seq {
        /// Structural node id of the sequence.
        node: usize,
        /// The statement's child position within the sequence.
        pos: i64,
    },
}

impl PathStep {
    /// Evaluates the step at a concrete instance of its statement.
    pub fn eval(&self, iters: &[i64], params: &[i64]) -> i64 {
        match self {
            PathStep::Seq { pos, .. } => *pos,
            PathStep::Member { terms, .. } => terms
                .iter()
                .map(|(row, div)| {
                    let mut acc = row[row.len() - 1];
                    for (c, v) in row.iter().zip(iters.iter().chain(params)) {
                        acc += c * v;
                    }
                    div_floor(acc, *div)
                })
                .sum(),
        }
    }
}

/// An explicit schedule tree over a SCoP's statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTree {
    /// Number of statements the tree schedules (term rows are indexed
    /// by statement id up to this count).
    pub nstmts: usize,
    /// The root node.
    pub root: TreeNode,
}

impl ScheduleTree {
    /// Lowers a flat [`Schedule`] into its canonical tree form.
    ///
    /// Constant (splitting) dimensions become [`TreeNode::Sequence`]
    /// nodes over [`TreeNode::Filter`] children, grouped and ordered by
    /// the rows' `(constant, params)` value (a run where every active
    /// statement agrees is elided); maximal runs of loop dimensions
    /// within one flat band become [`TreeNode::Band`] nodes whose
    /// members copy the rows (divisor 1) and the per-dimension parallel
    /// flags. The resulting tree's instance order is identical to the
    /// flat schedule's lexicographic timestamp order.
    pub fn lower(sched: &Schedule) -> ScheduleTree {
        let nstmts = sched.num_statements();
        let active: Vec<usize> = (0..nstmts).collect();
        let root = if nstmts == 0 {
            TreeNode::Leaf
        } else {
            lower_dims(sched, &active, 0)
        };
        ScheduleTree { nstmts, root }
    }

    /// The root-to-leaf path of every statement, with structural node
    /// ids assigned in preorder (shared across statements that cross
    /// the same node).
    pub fn stmt_paths(&self) -> Vec<Vec<PathStep>> {
        let mut paths = vec![Vec::new(); self.nstmts];
        let active: Vec<usize> = (0..self.nstmts).collect();
        let mut counter = 0;
        collect_paths(&self.root, &active, &mut counter, &mut paths);
        paths
    }

    /// The statements scheduled by a subtree (every statement when the
    /// subtree has no filters), restricted to `active`.
    pub fn stmts_of(node: &TreeNode, active: &[usize]) -> Vec<usize> {
        match node {
            TreeNode::Leaf => active.to_vec(),
            TreeNode::Filter { stmts, .. } => active
                .iter()
                .copied()
                .filter(|s| stmts.contains(s))
                .collect(),
            TreeNode::Band { child, .. } | TreeNode::Mark { child, .. } => {
                ScheduleTree::stmts_of(child, active)
            }
            TreeNode::Sequence(children) => {
                let mut out = Vec::new();
                for c in children {
                    out.extend(ScheduleTree::stmts_of(c, active));
                }
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// The tree timestamp of one statement instance: the evaluated path
    /// steps, outermost first.
    ///
    /// Timestamps of *different* statements may have different lengths
    /// and are only comparable through [`ScheduleTree::instance_cmp`],
    /// which aligns them structurally.
    ///
    /// # Panics
    ///
    /// Panics if the statement id is out of range or arities mismatch.
    pub fn timestamp(&self, id: StmtId, iters: &[i64], params: &[i64]) -> Vec<i64> {
        self.stmt_paths()[id.0]
            .iter()
            .map(|s| s.eval(iters, params))
            .collect()
    }

    /// Compares two statement instances in the tree's instance order:
    /// paths are walked in lockstep while they traverse the same nodes,
    /// and the first differing step value decides. `Equal` means the
    /// tree does not order the instances (same leaf, same coordinates).
    ///
    /// # Panics
    ///
    /// Panics if a statement id is out of range or arities mismatch.
    pub fn instance_cmp(
        &self,
        a: (StmtId, &[i64]),
        b: (StmtId, &[i64]),
        params: &[i64],
    ) -> Ordering {
        let paths = self.stmt_paths();
        instance_cmp_paths(&paths[a.0 .0], &paths[b.0 .0], a.1, b.1, params)
    }

    /// Renders the tree for humans (the demo's `tree` mode), using the
    /// SCoP's statement, iterator and parameter names.
    pub fn render(&self, scop: &Scop) -> String {
        let mut out = String::new();
        render_node(&self.root, scop, 0, &mut out);
        out
    }

    /// Visits every band in depth-first order, passing the structural
    /// node id of its first member (the numbering of
    /// [`ScheduleTree::stmt_paths`] — member `j` of the band has id
    /// `first + j`) and the band's members.
    pub fn for_each_band(&self, mut f: impl FnMut(usize, &[BandMember])) {
        fn walk(node: &TreeNode, counter: &mut usize, f: &mut impl FnMut(usize, &[BandMember])) {
            match node {
                TreeNode::Leaf => {}
                TreeNode::Filter { child, .. } | TreeNode::Mark { child, .. } => {
                    walk(child, counter, f);
                }
                TreeNode::Band { members, child, .. } => {
                    let first = *counter;
                    *counter += members.len();
                    f(first, members);
                    walk(child, counter, f);
                }
                TreeNode::Sequence(children) => {
                    *counter += 1;
                    for c in children {
                        walk(c, counter, f);
                    }
                }
            }
        }
        let mut counter = 0;
        walk(&self.root, &mut counter, &mut f);
    }

    /// Mutable variant of [`ScheduleTree::for_each_band`] (same
    /// numbering).
    pub fn for_each_band_mut(&mut self, mut f: impl FnMut(usize, &mut Vec<BandMember>)) {
        fn walk(
            node: &mut TreeNode,
            counter: &mut usize,
            f: &mut impl FnMut(usize, &mut Vec<BandMember>),
        ) {
            match node {
                TreeNode::Leaf => {}
                TreeNode::Filter { child, .. } | TreeNode::Mark { child, .. } => {
                    walk(child, counter, f);
                }
                TreeNode::Band { members, child, .. } => {
                    let first = *counter;
                    *counter += members.len();
                    f(first, members);
                    walk(child, counter, f);
                }
                TreeNode::Sequence(children) => {
                    *counter += 1;
                    for c in children {
                        walk(c, counter, f);
                    }
                }
            }
        }
        let mut counter = 0;
        walk(&mut self.root, &mut counter, &mut f);
    }

    /// Every mark in the tree, depth-first.
    pub fn marks(&self) -> Vec<&MarkKind> {
        fn walk<'a>(node: &'a TreeNode, out: &mut Vec<&'a MarkKind>) {
            match node {
                TreeNode::Leaf => {}
                TreeNode::Filter { child, .. } => walk(child, out),
                TreeNode::Band { child, .. } => walk(child, out),
                TreeNode::Mark { kind, child } => {
                    out.push(kind);
                    walk(child, out);
                }
                TreeNode::Sequence(children) => {
                    for c in children {
                        walk(c, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Re-embeds the tree of a sub-SCoP into a parent statement space:
    /// local statement `s` becomes `map[s]` of `nstmts` total, term rows
    /// move to the mapped slots (sub-SCoP extraction keeps each
    /// statement's iterator/parameter arity, so rows transfer verbatim)
    /// and every term's `source_dim` shifts by `dim_shift` (the flat
    /// dimensions the parent prepends, e.g. a distribution level).
    pub fn remap(&self, nstmts: usize, map: &[usize], dim_shift: usize) -> ScheduleTree {
        fn walk(node: &TreeNode, nstmts: usize, map: &[usize], shift: usize) -> TreeNode {
            match node {
                TreeNode::Leaf => TreeNode::Leaf,
                TreeNode::Filter { stmts, child } => {
                    let mut stmts: Vec<usize> = stmts.iter().map(|&s| map[s]).collect();
                    stmts.sort_unstable();
                    TreeNode::Filter {
                        stmts,
                        child: walk(child, nstmts, map, shift).boxed(),
                    }
                }
                TreeNode::Mark { kind, child } => {
                    let kind = match kind {
                        MarkKind::Vectorize(stmts) => {
                            let mut stmts: Vec<usize> = stmts.iter().map(|&s| map[s]).collect();
                            stmts.sort_unstable();
                            MarkKind::Vectorize(stmts)
                        }
                        other => other.clone(),
                    };
                    TreeNode::Mark {
                        kind,
                        child: walk(child, nstmts, map, shift).boxed(),
                    }
                }
                TreeNode::Sequence(children) => TreeNode::Sequence(
                    children
                        .iter()
                        .map(|c| walk(c, nstmts, map, shift))
                        .collect(),
                ),
                TreeNode::Band {
                    members,
                    permutable,
                    child,
                } => TreeNode::Band {
                    members: members
                        .iter()
                        .map(|m| BandMember {
                            terms: m
                                .terms
                                .iter()
                                .map(|t| {
                                    let mut rows = vec![Vec::new(); nstmts];
                                    for (s, row) in t.rows.iter().enumerate() {
                                        if let Some(&g) = map.get(s) {
                                            rows[g] = row.clone();
                                        }
                                    }
                                    MemberTerm {
                                        rows,
                                        div: t.div,
                                        source_dim: t.source_dim + shift,
                                    }
                                })
                                .collect(),
                            coincident: m.coincident,
                        })
                        .collect(),
                    permutable: *permutable,
                    child: walk(child, nstmts, map, shift).boxed(),
                },
            }
        }
        ScheduleTree {
            nstmts,
            root: walk(&self.root, nstmts, map, dim_shift),
        }
    }
}

/// Compares two instances along precomputed paths (see
/// [`ScheduleTree::instance_cmp`]).
pub fn instance_cmp_paths(
    pa: &[PathStep],
    pb: &[PathStep],
    ia: &[i64],
    ib: &[i64],
    params: &[i64],
) -> Ordering {
    for (sa, sb) in pa.iter().zip(pb.iter()) {
        let aligned = match (sa, sb) {
            (PathStep::Member { node: na, .. }, PathStep::Member { node: nb, .. }) => na == nb,
            (PathStep::Seq { node: na, .. }, PathStep::Seq { node: nb, .. }) => na == nb,
            _ => false,
        };
        if !aligned {
            // Structural divergence without a sequence decision: the
            // tree does not order the instances beyond this point.
            break;
        }
        let (va, vb) = (sa.eval(ia, params), sb.eval(ib, params));
        match va.cmp(&vb) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Recursive lowering worker: builds the subtree for `active` statements
/// starting at flat dimension `d`.
fn lower_dims(sched: &Schedule, active: &[usize], d: usize) -> TreeNode {
    if d == sched.dims() || active.is_empty() {
        return TreeNode::Leaf;
    }
    let constant = active
        .iter()
        .all(|&s| sched.stmt(StmtId(s)).row_is_constant(d));
    if constant {
        // A splitting level: group by the row's (constant, params)
        // value in ascending order.
        let np = sched.stmt(StmtId(active[0])).nparams();
        let mut groups: Vec<(Vec<i64>, Vec<usize>)> = Vec::new();
        for &s in active {
            let ss = sched.stmt(StmtId(s));
            let row = &ss.rows()[d];
            let depth = ss.depth();
            let mut key = vec![row[depth + np]];
            key.extend_from_slice(&row[depth..depth + np]);
            match groups.iter_mut().find(|(g, _)| *g == key) {
                Some((_, members)) => members.push(s),
                None => groups.push((key, vec![s])),
            }
        }
        if groups.len() == 1 {
            return lower_dims(sched, active, d + 1);
        }
        groups.sort_by(|(a, _), (b, _)| a.cmp(b));
        return TreeNode::Sequence(
            groups
                .into_iter()
                .map(|(_, members)| TreeNode::Filter {
                    child: lower_dims(sched, &members, d + 1).boxed(),
                    stmts: members,
                })
                .collect(),
        );
    }
    // A band: the maximal run of same-band loop dimensions.
    let band = sched.bands()[d];
    let mut end = d;
    while end < sched.dims()
        && sched.bands()[end] == band
        && active
            .iter()
            .any(|&s| !sched.stmt(StmtId(s)).row_is_constant(end))
    {
        end += 1;
    }
    let members = (d..end)
        .map(|dim| BandMember {
            terms: vec![MemberTerm {
                rows: (0..sched.num_statements())
                    .map(|s| sched.stmt(StmtId(s)).rows()[dim].clone())
                    .collect(),
                div: 1,
                source_dim: dim,
            }],
            coincident: sched.parallel().get(dim).copied().unwrap_or(false),
        })
        .collect();
    TreeNode::Band {
        members,
        permutable: true,
        child: lower_dims(sched, active, end).boxed(),
    }
}

/// Path-collection worker (preorder node ids).
fn collect_paths(
    node: &TreeNode,
    active: &[usize],
    counter: &mut usize,
    paths: &mut [Vec<PathStep>],
) {
    match node {
        TreeNode::Leaf => {}
        TreeNode::Filter { child, .. } => {
            let sub = ScheduleTree::stmts_of(node, active);
            collect_paths(child, &sub, counter, paths);
        }
        TreeNode::Mark { child, .. } => collect_paths(child, active, counter, paths),
        TreeNode::Band { members, child, .. } => {
            for m in members {
                let id = *counter;
                *counter += 1;
                for &s in active {
                    paths[s].push(PathStep::Member {
                        node: id,
                        terms: m.terms.iter().map(|t| (t.rows[s].clone(), t.div)).collect(),
                        coincident: m.coincident,
                    });
                }
            }
            collect_paths(child, active, counter, paths);
        }
        TreeNode::Sequence(children) => {
            let id = *counter;
            *counter += 1;
            for (pos, c) in children.iter().enumerate() {
                let sub = ScheduleTree::stmts_of(c, active);
                for &s in &sub {
                    paths[s].push(PathStep::Seq {
                        node: id,
                        pos: pos as i64,
                    });
                }
                collect_paths(c, &sub, counter, paths);
            }
        }
    }
}

/// Renders one term of a member for a statement (`render` worker).
fn render_term(term: &MemberTerm, s: usize, scop: &Scop) -> String {
    let stmt = &scop.statements[s];
    let iters: Vec<&str> = stmt.iter_names.iter().map(String::as_str).collect();
    let params: Vec<&str> = scop.params.iter().map(String::as_str).collect();
    let e = crate::expr::AffineExpr::from_row(&term.rows[s], stmt.depth(), scop.nparams());
    let body = e.display(&iters, &params);
    if term.div == 1 {
        body
    } else {
        format!("floord({body}, {})", term.div)
    }
}

/// Tree pretty-printer worker.
fn render_node(node: &TreeNode, scop: &Scop, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        TreeNode::Leaf => {
            let _ = writeln!(out, "{pad}leaf");
        }
        TreeNode::Sequence(children) => {
            let _ = writeln!(out, "{pad}sequence");
            for c in children {
                render_node(c, scop, indent + 1, out);
            }
        }
        TreeNode::Filter { stmts, child } => {
            let names: Vec<&str> = stmts
                .iter()
                .map(|&s| scop.statements[s].name.as_str())
                .collect();
            let _ = writeln!(out, "{pad}filter {{{}}}", names.join(", "));
            render_node(child, scop, indent + 1, out);
        }
        TreeNode::Mark { kind, child } => {
            match kind {
                MarkKind::Tile(sizes) => {
                    let _ = writeln!(out, "{pad}mark tile sizes={sizes:?}");
                }
                MarkKind::Wavefront => {
                    let _ = writeln!(out, "{pad}mark wavefront");
                }
                MarkKind::Vectorize(stmts) => {
                    let names: Vec<&str> = stmts
                        .iter()
                        .map(|&s| scop.statements[s].name.as_str())
                        .collect();
                    let _ = writeln!(out, "{pad}mark vectorize {{{}}}", names.join(", "));
                }
            }
            render_node(child, scop, indent + 1, out);
        }
        TreeNode::Band {
            members,
            permutable,
            child,
        } => {
            let _ = writeln!(
                out,
                "{pad}band permutable={permutable} [{} member{}]",
                members.len(),
                if members.len() == 1 { "" } else { "s" }
            );
            let active: Vec<usize> =
                ScheduleTree::stmts_of(child, &(0..scop.statements.len()).collect::<Vec<_>>());
            for (i, m) in members.iter().enumerate() {
                let exprs: Vec<String> = active
                    .iter()
                    .map(|&s| {
                        let terms: Vec<String> =
                            m.terms.iter().map(|t| render_term(t, s, scop)).collect();
                        format!("{}: {}", scop.statements[s].name, terms.join(" + "))
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}  member {i}{}: {}",
                    if m.coincident { " [coincident]" } else { "" },
                    exprs.join(", ")
                );
            }
            render_node(child, scop, indent + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScopBuilder;
    use crate::expr::Aff;

    fn two_stmt_scop() -> Scop {
        // for i { S0; for j { S1 } }
        let mut b = ScopBuilder::new("k");
        let n = b.param("N");
        let a = b.array("A", &[n.clone(), n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0")
            .write(a, &[Aff::var("i"), Aff::val(0)])
            .add(&mut b);
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S1")
            .write(a, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn lowering_matches_flat_order_on_2dp1() {
        let scop = two_stmt_scop();
        let sched = Schedule::identity_2dp1(&scop);
        let tree = ScheduleTree::lower(&sched);
        let params = [4i64];
        // S0(i) vs S1(i, j) over a small grid: the tree order must
        // reproduce the flat lexicographic timestamp order exactly.
        for i0 in 0..4 {
            for i1 in 0..4 {
                for j1 in 0..4 {
                    let flat = sched
                        .timestamp(StmtId(0), &[i0], &params)
                        .cmp(&sched.timestamp(StmtId(1), &[i1, j1], &params));
                    let treed =
                        tree.instance_cmp((StmtId(0), &[i0]), (StmtId(1), &[i1, j1]), &params);
                    assert_eq!(flat, treed, "i0={i0} i1={i1} j1={j1}");
                }
            }
        }
    }

    #[test]
    fn lowering_builds_sequence_of_filters() {
        let scop = two_stmt_scop();
        let sched = Schedule::identity_2dp1(&scop);
        let tree = ScheduleTree::lower(&sched);
        // 2d+1 for { S0; for { S1 } }: outer band over i, then a β
        // split (S0 before S1), then S1's inner j band.
        let TreeNode::Band { members, child, .. } = &tree.root else {
            panic!("outer band, got {:?}", tree.root);
        };
        assert_eq!(members.len(), 1);
        assert!(members[0].is_affine());
        let TreeNode::Sequence(children) = child.as_ref() else {
            panic!("sequence under band, got {child:?}");
        };
        assert_eq!(children.len(), 2);
        let TreeNode::Filter { stmts, .. } = &children[0] else {
            panic!("filter child");
        };
        assert_eq!(stmts, &[0]);
    }

    #[test]
    fn member_eval_floors_negative_values() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(-8, 2), -4);
        let m = BandMember {
            terms: vec![MemberTerm {
                rows: vec![vec![1, 0, -3]], // i - 3 over (i, N, 1)
                div: 2,
                source_dim: 0,
            }],
            coincident: false,
        };
        assert_eq!(m.eval(StmtId(0), &[0], &[10]), -2); // ⌊-3/2⌋
        assert_eq!(m.eval(StmtId(0), &[4], &[10]), 0);
    }

    #[test]
    fn render_names_nodes_and_flags() {
        let scop = two_stmt_scop();
        let sched = Schedule::identity_2dp1(&scop);
        let tree = ScheduleTree::lower(&sched);
        let text = tree.render(&scop);
        assert!(text.contains("band"), "{text}");
        assert!(text.contains("sequence"), "{text}");
        assert!(text.contains("filter {S0}"), "{text}");
        assert!(text.contains("leaf"), "{text}");
    }
}
