//! Multidimensional affine schedules (the scheduler's output).

use std::fmt;

use crate::expr::AffineExpr;
use crate::scop::{Scop, StmtId};
use crate::tree::ScheduleTree;

/// The schedule of one statement: one affine row per scheduling dimension,
/// each over the statement's `(iters, params, 1)` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtSchedule {
    depth: usize,
    nparams: usize,
    rows: Vec<Vec<i64>>,
}

impl StmtSchedule {
    /// Creates an empty schedule for a statement with the given space.
    pub fn new(depth: usize, nparams: usize) -> StmtSchedule {
        StmtSchedule {
            depth,
            nparams,
            rows: Vec::new(),
        }
    }

    /// Statement iterator count.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Parameter count.
    pub fn nparams(&self) -> usize {
        self.nparams
    }

    /// Number of scheduling dimensions so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no dimension has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a scheduling row `[iter coeffs, param coeffs, const]`.
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong length.
    pub fn push_row(&mut self, row: Vec<i64>) {
        assert_eq!(row.len(), self.depth + self.nparams + 1, "row length");
        self.rows.push(row);
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<i64>] {
        &self.rows
    }

    /// Replaces row `i` (used by post-processing transformations such as
    /// wavefront skewing).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the row has the wrong length.
    pub fn set_row(&mut self, i: usize, row: Vec<i64>) {
        assert_eq!(row.len(), self.depth + self.nparams + 1, "row length");
        self.rows[i] = row;
    }

    /// Row `i` as an affine expression.
    pub fn row_expr(&self, i: usize) -> AffineExpr {
        AffineExpr::from_row(&self.rows[i], self.depth, self.nparams)
    }

    /// Whether row `i` has no iterator coefficients (a splitting level).
    pub fn row_is_constant(&self, i: usize) -> bool {
        self.rows[i][..self.depth].iter().all(|&c| c == 0)
    }

    /// Evaluates the full timestamp at a concrete point.
    pub fn eval(&self, iters: &[i64], params: &[i64]) -> Vec<i64> {
        self.rows
            .iter()
            .map(|r| AffineExpr::from_row(r, self.depth, self.nparams).eval(iters, params))
            .collect()
    }

    /// The iterator-coefficient submatrix (rows × depth), used for rank /
    /// bijectivity checks and inversion during code generation.
    pub fn iter_matrix(&self) -> polytops_math::IntMatrix {
        let mut m = polytops_math::IntMatrix::zeros(0, self.depth);
        for r in &self.rows {
            m.push_row(r[..self.depth].to_vec());
        }
        m
    }
}

/// A complete schedule for a [`Scop`]: per-statement rows plus band and
/// parallelism metadata produced by the scheduler (paper Algorithm 1's
/// `Bands` and `ParallelDimension` outputs), and — after the
/// post-processing stage — the structured [`ScheduleTree`] view that
/// tiling, wavefronting and vectorization are expressed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    per_stmt: Vec<StmtSchedule>,
    /// Band id of each scheduling dimension; consecutive equal ids form a
    /// permutable (tilable) band.
    bands: Vec<usize>,
    /// Whether each scheduling dimension is parallel.
    parallel: Vec<bool>,
    /// The structured schedule-tree view. `None` until post-processing
    /// lowers the flat rows (tiling, wavefronting and vectorization are
    /// tree transforms and live here, not in the rows).
    tree: Option<ScheduleTree>,
}

impl Schedule {
    /// Creates an empty schedule shaped for `scop`.
    pub fn empty(scop: &Scop) -> Schedule {
        Schedule {
            per_stmt: scop
                .statements
                .iter()
                .map(|s| StmtSchedule::new(s.depth(), scop.nparams()))
                .collect(),
            bands: Vec::new(),
            parallel: Vec::new(),
            tree: None,
        }
    }

    /// The classic 2d+1 identity schedule: interleaves β positions and
    /// iterators, padding shallower statements so all timestamps have
    /// equal length.
    ///
    /// # Examples
    ///
    /// ```
    /// use polytops_ir::{Aff, Schedule, ScopBuilder, StmtId};
    ///
    /// let mut b = ScopBuilder::new("k");
    /// let n = b.param("N");
    /// let a = b.array("A", &[n.clone()], 8);
    /// b.open_loop("i", Aff::val(0), n - 1);
    /// b.stmt("S0").write(a, &[Aff::var("i")]).add(&mut b);
    /// b.close_loop();
    /// let scop = b.build().unwrap();
    /// let sched = Schedule::identity_2dp1(&scop);
    /// // Timestamp of S0(i = 3) with N = 10: (beta0, i, beta1) = (0, 3, 0).
    /// assert_eq!(sched.timestamp(StmtId(0), &[3], &[10]), vec![0, 3, 0]);
    /// ```
    pub fn identity_2dp1(scop: &Scop) -> Schedule {
        let max_depth = scop.max_depth();
        let nrows = 2 * max_depth + 1;
        let np = scop.nparams();
        let mut per_stmt = Vec::with_capacity(scop.statements.len());
        for s in &scop.statements {
            let d = s.depth();
            let mut ss = StmtSchedule::new(d, np);
            for level in 0..=max_depth {
                // β row.
                let beta = s.beta.get(level).copied().unwrap_or(0);
                let mut row = vec![0i64; d + np + 1];
                row[d + np] = beta;
                ss.push_row(row);
                // Iterator row.
                if level < max_depth {
                    let mut row = vec![0i64; d + np + 1];
                    if level < d {
                        row[level] = 1;
                    }
                    ss.push_row(row);
                }
            }
            debug_assert_eq!(ss.len(), nrows);
            per_stmt.push(ss);
        }
        // Bands: every loop level is its own band in the 2d+1 form.
        let bands = (0..nrows).collect();
        let parallel = vec![false; nrows];
        Schedule {
            per_stmt,
            bands,
            parallel,
            tree: None,
        }
    }

    /// Builds a schedule from parts.
    ///
    /// # Panics
    ///
    /// Panics if metadata lengths disagree with the row count.
    pub fn from_parts(
        per_stmt: Vec<StmtSchedule>,
        bands: Vec<usize>,
        parallel: Vec<bool>,
    ) -> Schedule {
        let dims = per_stmt.first().map_or(0, StmtSchedule::len);
        for ss in &per_stmt {
            assert_eq!(ss.len(), dims, "ragged schedule");
        }
        assert_eq!(bands.len(), dims, "bands length");
        assert_eq!(parallel.len(), dims, "parallel length");
        Schedule {
            per_stmt,
            bands,
            parallel,
            tree: None,
        }
    }

    /// The structured schedule-tree view (attached by post-processing;
    /// `None` on a raw solver schedule).
    pub fn tree(&self) -> Option<&ScheduleTree> {
        self.tree.as_ref()
    }

    /// The schedule-tree view, lowering the flat rows on the fly when no
    /// tree has been attached yet.
    pub fn tree_or_lowered(&self) -> ScheduleTree {
        self.tree
            .clone()
            .unwrap_or_else(|| ScheduleTree::lower(self))
    }

    /// Attaches (or replaces) the structured schedule-tree view.
    pub fn set_tree(&mut self, tree: ScheduleTree) {
        self.tree = Some(tree);
    }

    /// Number of scheduling dimensions (equal across statements).
    pub fn dims(&self) -> usize {
        self.bands.len()
    }

    /// Number of statements.
    pub fn num_statements(&self) -> usize {
        self.per_stmt.len()
    }

    /// The per-statement schedule.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn stmt(&self, id: StmtId) -> &StmtSchedule {
        &self.per_stmt[id.0]
    }

    /// Mutable access (used by post-processing passes).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn stmt_mut(&mut self, id: StmtId) -> &mut StmtSchedule {
        &mut self.per_stmt[id.0]
    }

    /// Band ids per dimension.
    pub fn bands(&self) -> &[usize] {
        &self.bands
    }

    /// Parallel flags per dimension.
    pub fn parallel(&self) -> &[bool] {
        &self.parallel
    }

    /// Mutable parallel flags (post-processing).
    pub fn parallel_mut(&mut self) -> &mut Vec<bool> {
        &mut self.parallel
    }

    /// Timestamp of a statement instance.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or arities mismatch.
    pub fn timestamp(&self, id: StmtId, iters: &[i64], params: &[i64]) -> Vec<i64> {
        self.per_stmt[id.0].eval(iters, params)
    }

    /// Maximal permutable bands as `(start_dim, end_dim_exclusive)` ranges.
    pub fn band_ranges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.bands.len() {
            let b = self.bands[i];
            let mut j = i + 1;
            while j < self.bands.len() && self.bands[j] == b {
                j += 1;
            }
            out.push((i, j));
            i = j;
        }
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (sid, ss) in self.per_stmt.iter().enumerate() {
            writeln!(f, "S{sid}:")?;
            for (d, row) in ss.rows().iter().enumerate() {
                let e = AffineExpr::from_row(row, ss.depth(), ss.nparams());
                writeln!(
                    f,
                    "  t{d} = {:?}{}{}",
                    e,
                    if self.parallel.get(d).copied().unwrap_or(false) {
                        "  [parallel]"
                    } else {
                        ""
                    },
                    if d > 0 && self.bands.get(d) == self.bands.get(d - 1) {
                        "  (same band)"
                    } else {
                        ""
                    },
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScopBuilder;
    use crate::expr::Aff;

    fn two_stmt_scop() -> Scop {
        // for i { S0; for j { S1 } }
        let mut b = ScopBuilder::new("k");
        let n = b.param("N");
        let a = b.array("A", &[n.clone(), n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0")
            .write(a, &[Aff::var("i"), Aff::val(0)])
            .add(&mut b);
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S1")
            .write(a, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn identity_orders_textually() {
        let scop = two_stmt_scop();
        let sched = Schedule::identity_2dp1(&scop);
        assert_eq!(sched.dims(), 5); // 2*2+1
                                     // S0(i=1) happens before S1(i=1, j=0): compare timestamps.
        let t0 = sched.timestamp(StmtId(0), &[1], &[4]);
        let t1 = sched.timestamp(StmtId(1), &[1, 0], &[4]);
        assert!(t0 < t1, "{t0:?} < {t1:?}");
        // S1(i=0, *) before S0(i=1).
        let t1 = sched.timestamp(StmtId(1), &[0, 3], &[4]);
        let t0 = sched.timestamp(StmtId(0), &[1], &[4]);
        assert!(t1 < t0);
    }

    #[test]
    fn band_ranges_group_consecutive() {
        let scop = two_stmt_scop();
        let mut sched = Schedule::identity_2dp1(&scop);
        assert_eq!(sched.band_ranges().len(), 5);
        // Pretend the first two dims form one band.
        sched.bands = vec![0, 0, 1, 2, 3];
        assert_eq!(sched.band_ranges(), vec![(0, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn iter_matrix_extracts_coefficients() {
        let scop = two_stmt_scop();
        let sched = Schedule::identity_2dp1(&scop);
        let m = sched.stmt(StmtId(1)).iter_matrix();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.rank(), 2); // covers both iterators
    }
}
