//! Affine expressions over statement iterators and global parameters.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `Σ aᵢ·itᵢ + Σ bⱼ·Nⱼ + c` over a statement's
/// iteration vector and the SCoP's parameters.
///
/// The iterator/parameter spaces are positional; names live in the
/// enclosing [`Statement`](crate::Statement) and [`Scop`](crate::Scop).
///
/// # Examples
///
/// ```
/// use polytops_ir::AffineExpr;
///
/// // 2*i - j + N - 1 over 2 iterators and 1 parameter
/// let e = AffineExpr::new(vec![2, -1], vec![1], -1);
/// assert_eq!(e.eval(&[3, 4], &[10]), 2 * 3 - 4 + 10 - 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    iter_coeffs: Vec<i64>,
    param_coeffs: Vec<i64>,
    constant: i64,
}

impl AffineExpr {
    /// Creates an expression from raw coefficient vectors.
    pub fn new(iter_coeffs: Vec<i64>, param_coeffs: Vec<i64>, constant: i64) -> AffineExpr {
        AffineExpr {
            iter_coeffs,
            param_coeffs,
            constant,
        }
    }

    /// The zero expression in a `(depth, nparams)` space.
    pub fn zero(depth: usize, nparams: usize) -> AffineExpr {
        AffineExpr::new(vec![0; depth], vec![0; nparams], 0)
    }

    /// A constant expression in a `(depth, nparams)` space.
    pub fn constant(depth: usize, nparams: usize, value: i64) -> AffineExpr {
        AffineExpr::new(vec![0; depth], vec![0; nparams], value)
    }

    /// The expression `itᵢ` in a `(depth, nparams)` space.
    ///
    /// # Panics
    ///
    /// Panics if `i >= depth`.
    pub fn iter(depth: usize, nparams: usize, i: usize) -> AffineExpr {
        let mut e = AffineExpr::zero(depth, nparams);
        e.iter_coeffs[i] = 1;
        e
    }

    /// The expression `Nⱼ` in a `(depth, nparams)` space.
    ///
    /// # Panics
    ///
    /// Panics if `j >= nparams`.
    pub fn param(depth: usize, nparams: usize, j: usize) -> AffineExpr {
        let mut e = AffineExpr::zero(depth, nparams);
        e.param_coeffs[j] = 1;
        e
    }

    /// Iterator coefficients.
    pub fn iter_coeffs(&self) -> &[i64] {
        &self.iter_coeffs
    }

    /// Parameter coefficients.
    pub fn param_coeffs(&self) -> &[i64] {
        &self.param_coeffs
    }

    /// Constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Number of iterator dimensions of the space.
    pub fn depth(&self) -> usize {
        self.iter_coeffs.len()
    }

    /// Number of parameter dimensions of the space.
    pub fn nparams(&self) -> usize {
        self.param_coeffs.len()
    }

    /// Evaluates at concrete iterator and parameter values.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn eval(&self, iters: &[i64], params: &[i64]) -> i64 {
        assert_eq!(iters.len(), self.iter_coeffs.len(), "iter arity mismatch");
        assert_eq!(
            params.len(),
            self.param_coeffs.len(),
            "param arity mismatch"
        );
        let mut acc = i128::from(self.constant);
        for (c, v) in self.iter_coeffs.iter().zip(iters) {
            acc += i128::from(*c) * i128::from(*v);
        }
        for (c, v) in self.param_coeffs.iter().zip(params) {
            acc += i128::from(*c) * i128::from(*v);
        }
        i64::try_from(acc).expect("affine evaluation overflow")
    }

    /// Whether every coefficient and the constant are zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0
            && self.iter_coeffs.iter().all(|&c| c == 0)
            && self.param_coeffs.iter().all(|&c| c == 0)
    }

    /// Whether the expression ignores all iterators (constant + params only).
    pub fn is_iter_free(&self) -> bool {
        self.iter_coeffs.iter().all(|&c| c == 0)
    }

    /// The row `[iter_coeffs, param_coeffs, constant]` used by constraint
    /// systems over the `(iters, params, 1)` column layout.
    pub fn to_row(&self) -> Vec<i64> {
        let mut row = Vec::with_capacity(self.iter_coeffs.len() + self.param_coeffs.len() + 1);
        row.extend_from_slice(&self.iter_coeffs);
        row.extend_from_slice(&self.param_coeffs);
        row.push(self.constant);
        row
    }

    /// Builds an expression back from a `(iters, params, 1)` row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != depth + nparams + 1`.
    pub fn from_row(row: &[i64], depth: usize, nparams: usize) -> AffineExpr {
        assert_eq!(row.len(), depth + nparams + 1, "row length mismatch");
        AffineExpr {
            iter_coeffs: row[..depth].to_vec(),
            param_coeffs: row[depth..depth + nparams].to_vec(),
            constant: row[depth + nparams],
        }
    }

    /// Renders with the given names (used by the pretty printers).
    pub fn display(&self, iter_names: &[&str], param_names: &[&str]) -> String {
        let mut terms: Vec<String> = Vec::new();
        let mut push_term = |c: i64, name: &str| {
            if c == 0 {
                return;
            }
            if c == 1 {
                terms.push(name.to_string());
            } else if c == -1 {
                terms.push(format!("-{name}"));
            } else {
                terms.push(format!("{c}*{name}"));
            }
        };
        for (c, name) in self.iter_coeffs.iter().zip(iter_names) {
            push_term(*c, name);
        }
        for (c, name) in self.param_coeffs.iter().zip(param_names) {
            push_term(*c, name);
        }
        if self.constant != 0 || terms.is_empty() {
            terms.push(self.constant.to_string());
        }
        let mut out = String::new();
        for (i, t) in terms.iter().enumerate() {
            if i == 0 {
                out.push_str(t);
            } else if let Some(stripped) = t.strip_prefix('-') {
                out.push_str(" - ");
                out.push_str(stripped);
            } else {
                out.push_str(" + ");
                out.push_str(t);
            }
        }
        out
    }
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let iters: Vec<String> = (0..self.iter_coeffs.len())
            .map(|i| format!("i{i}"))
            .collect();
        let params: Vec<String> = (0..self.param_coeffs.len())
            .map(|j| format!("N{j}"))
            .collect();
        let in_refs: Vec<&str> = iters.iter().map(String::as_str).collect();
        let pn_refs: Vec<&str> = params.iter().map(String::as_str).collect();
        write!(f, "{}", self.display(&in_refs, &pn_refs))
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(self, rhs: AffineExpr) -> AffineExpr {
        assert_eq!(self.depth(), rhs.depth(), "space mismatch");
        assert_eq!(self.nparams(), rhs.nparams(), "space mismatch");
        AffineExpr {
            iter_coeffs: self
                .iter_coeffs
                .iter()
                .zip(&rhs.iter_coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            param_coeffs: self
                .param_coeffs
                .iter()
                .zip(&rhs.param_coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + rhs.constant,
        }
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + (-rhs)
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(mut self) -> AffineExpr {
        for c in &mut self.iter_coeffs {
            *c = -*c;
        }
        for c in &mut self.param_coeffs {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(mut self, k: i64) -> AffineExpr {
        for c in &mut self.iter_coeffs {
            *c *= k;
        }
        for c in &mut self.param_coeffs {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

/// A symbolic affine term used by [`ScopBuilder`](crate::ScopBuilder):
/// a name-based expression resolved to positional coefficients when the
/// statement is finalized.
///
/// # Examples
///
/// ```
/// use polytops_ir::Aff;
///
/// let e = Aff::var("i") * 2 + Aff::param("N") - 1;
/// assert_eq!(format!("{e:?}"), "2*i + N - 1");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Aff {
    /// `(name, coefficient)` pairs; variables and parameters share the
    /// namespace and are disambiguated at resolution time.
    terms: Vec<(String, i64)>,
    constant: i64,
}

impl Aff {
    /// A named loop iterator (or parameter — resolution decides).
    pub fn var(name: &str) -> Aff {
        Aff {
            terms: vec![(name.to_string(), 1)],
            constant: 0,
        }
    }

    /// A named parameter (alias of [`Aff::var`]; kept for readability).
    pub fn param(name: &str) -> Aff {
        Aff::var(name)
    }

    /// An integer constant.
    pub fn val(c: i64) -> Aff {
        Aff {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The symbolic terms.
    pub fn terms(&self) -> &[(String, i64)] {
        &self.terms
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Resolves against named iterator and parameter lists.
    ///
    /// Returns `None` if a term's name is neither an iterator nor a
    /// parameter.
    pub fn resolve(&self, iter_names: &[String], param_names: &[String]) -> Option<AffineExpr> {
        let mut e = AffineExpr::zero(iter_names.len(), param_names.len());
        e.constant = self.constant;
        for (name, c) in &self.terms {
            if let Some(i) = iter_names.iter().position(|n| n == name) {
                e.iter_coeffs[i] += c;
            } else if let Some(j) = param_names.iter().position(|n| n == name) {
                e.param_coeffs[j] += c;
            } else {
                return None;
            }
        }
        Some(e)
    }
}

impl fmt::Debug for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, c) in &self.terms {
            if *c == 0 {
                continue;
            }
            if first {
                if *c == 1 {
                    write!(f, "{name}")?;
                } else if *c == -1 {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{c}*{name}")?;
                }
                first = false;
            } else if *c > 0 {
                if *c == 1 {
                    write!(f, " + {name}")?;
                } else {
                    write!(f, " + {c}*{name}")?;
                }
            } else if *c == -1 {
                write!(f, " - {name}")?;
            } else {
                write!(f, " - {}*{name}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

impl From<i64> for Aff {
    fn from(v: i64) -> Aff {
        Aff::val(v)
    }
}

impl Add for Aff {
    type Output = Aff;
    fn add(mut self, rhs: Aff) -> Aff {
        for (name, c) in rhs.terms {
            if let Some(t) = self.terms.iter_mut().find(|(n, _)| *n == name) {
                t.1 += c;
            } else {
                self.terms.push((name, c));
            }
        }
        self.constant += rhs.constant;
        self
    }
}

impl Add<i64> for Aff {
    type Output = Aff;
    fn add(self, rhs: i64) -> Aff {
        self + Aff::val(rhs)
    }
}

impl Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        self + (-rhs)
    }
}

impl Sub<i64> for Aff {
    type Output = Aff;
    fn sub(self, rhs: i64) -> Aff {
        self + Aff::val(-rhs)
    }
}

impl Neg for Aff {
    type Output = Aff;
    fn neg(mut self) -> Aff {
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<i64> for Aff {
    type Output = Aff;
    fn mul(mut self, k: i64) -> Aff {
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.constant *= k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_coefficients() {
        let e = AffineExpr::new(vec![1, -2], vec![3], 4);
        assert_eq!(e.eval(&[10, 1], &[2]), 10 - 2 + 6 + 4);
    }

    #[test]
    fn row_round_trip() {
        let e = AffineExpr::new(vec![1, -2], vec![3], 4);
        let row = e.to_row();
        assert_eq!(row, vec![1, -2, 3, 4]);
        assert_eq!(AffineExpr::from_row(&row, 2, 1), e);
    }

    #[test]
    fn arithmetic() {
        let a = AffineExpr::new(vec![1, 0], vec![0], 1);
        let b = AffineExpr::new(vec![0, 1], vec![1], -1);
        let s = a.clone() + b.clone();
        assert_eq!(s, AffineExpr::new(vec![1, 1], vec![1], 0));
        assert_eq!(a.clone() - a.clone(), AffineExpr::zero(2, 1));
        assert_eq!(b * 2, AffineExpr::new(vec![0, 2], vec![2], -2));
    }

    #[test]
    fn display_is_readable() {
        let e = AffineExpr::new(vec![2, -1], vec![1], -1);
        assert_eq!(e.display(&["i", "j"], &["N"]), "2*i - j + N - 1");
        assert_eq!(AffineExpr::zero(0, 0).display(&[], &[]), "0");
    }

    #[test]
    fn aff_resolution() {
        let e = Aff::var("i") * 2 + Aff::param("N") - 3;
        let resolved = e.resolve(&["i".into(), "j".into()], &["N".into()]).unwrap();
        assert_eq!(resolved, AffineExpr::new(vec![2, 0], vec![1], -3));
        assert!(Aff::var("zz").resolve(&["i".into()], &[]).is_none());
    }

    #[test]
    fn aff_merges_repeated_names() {
        let e = Aff::var("i") + Aff::var("i") - 1;
        let resolved = e.resolve(&["i".into()], &[]).unwrap();
        assert_eq!(resolved, AffineExpr::new(vec![2], vec![], -1));
    }
}
