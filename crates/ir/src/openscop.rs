//! A textual exchange format for [`Scop`]s, in the spirit of OpenScop.
//!
//! The format is line-oriented and self-describing; [`print_scop`] and
//! [`parse_scop`] round-trip exactly. It is not byte-compatible with the
//! original OpenScop (we have no isl/Clan to exchange with) but carries
//! the same information: context, arrays, per-statement domains, accesses
//! and β positions.

use std::error::Error;
use std::fmt;

use polytops_math::{ConstraintSystem, RowKind};

use crate::expr::AffineExpr;
use crate::scop::{Access, AccessKind, ArrayId, ArrayInfo, Scop, Statement, StmtId, Subscript};

/// Errors from [`parse_scop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScopError {
    line: usize,
    message: String,
}

impl ParseScopError {
    fn new(line: usize, message: impl Into<String>) -> ParseScopError {
        ParseScopError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseScopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scop parse error at line {}: {}",
            self.line + 1,
            self.message
        )
    }
}

impl Error for ParseScopError {}

/// Serializes a SCoP to the textual exchange format.
///
/// # Examples
///
/// ```
/// use polytops_ir::{Aff, ScopBuilder, print_scop, parse_scop};
///
/// let mut b = ScopBuilder::new("k");
/// let n = b.param("N");
/// let a = b.array("A", &[n.clone()], 8);
/// b.open_loop("i", Aff::val(0), n - 1);
/// b.stmt("S0").write(a, &[Aff::var("i")]).add(&mut b);
/// b.close_loop();
/// let scop = b.build().unwrap();
/// let text = print_scop(&scop);
/// let back = parse_scop(&text).unwrap();
/// assert_eq!(scop, back);
/// ```
pub fn print_scop(scop: &Scop) -> String {
    let mut out = String::new();
    let mut w = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    w("<polyscop>".to_string());
    w(format!("name {}", scop.name));
    w(format!("params {}", scop.params.join(" ")));
    w(format!("context {}", scop.context.len()));
    for (kind, row) in scop.context.iter() {
        w(format!("  {} {}", kind_str(kind), join(row)));
    }
    w(format!("arrays {}", scop.arrays.len()));
    for a in &scop.arrays {
        w(format!(
            "array {} {} {}",
            a.name,
            a.element_size,
            a.dims.len()
        ));
        for d in &a.dims {
            let mut row = d.param_coeffs().to_vec();
            row.push(d.constant_term());
            w(format!("  dim {}", join(&row)));
        }
    }
    w(format!("statements {}", scop.statements.len()));
    for s in &scop.statements {
        w(format!("statement {}", s.name));
        w(format!("  iters {}", s.iter_names.join(" ")));
        w(format!("  beta {}", join(&s.beta)));
        w(format!("  ops {}", s.compute_ops));
        if let Some(t) = &s.text {
            w(format!("  text {t}"));
        }
        w(format!("  domain {}", s.domain.len()));
        for (kind, row) in s.domain.iter() {
            w(format!("    {} {}", kind_str(kind), join(row)));
        }
        w(format!("  accesses {}", s.accesses.len()));
        for a in &s.accesses {
            let kind = match a.kind {
                AccessKind::Read => "read",
                AccessKind::Write => "write",
            };
            w(format!("  {} {} {}", kind, a.array.0, a.subscripts.len()));
            for sub in &a.subscripts {
                match sub {
                    Subscript::Aff(e) => w(format!("    aff {}", join(&e.to_row()))),
                    Subscript::FloorDiv(e, k) => w(format!("    div {k} {}", join(&e.to_row()))),
                    Subscript::Mod(e, k) => w(format!("    mod {k} {}", join(&e.to_row()))),
                }
            }
        }
    }
    w("</polyscop>".to_string());
    out
}

fn kind_str(kind: RowKind) -> &'static str {
    match kind {
        RowKind::Eq => "eq",
        RowKind::Ineq => "ineq",
    }
}

fn join(row: &[i64]) -> String {
    row.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

struct Cursor<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Result<(usize, Vec<&'a str>), ParseScopError> {
        while self.pos < self.lines.len() {
            let raw = self.lines[self.pos].trim();
            let at = self.pos;
            self.pos += 1;
            if raw.is_empty() || raw.starts_with('#') {
                continue;
            }
            return Ok((at, raw.split_whitespace().collect()));
        }
        Err(ParseScopError::new(
            self.lines.len(),
            "unexpected end of input",
        ))
    }

    fn expect(&mut self, head: &str) -> Result<(usize, Vec<&'a str>), ParseScopError> {
        let (at, toks) = self.next()?;
        if toks.first() != Some(&head) {
            return Err(ParseScopError::new(
                at,
                format!("expected `{head}`, found `{}`", toks.join(" ")),
            ));
        }
        Ok((at, toks))
    }
}

fn ints(at: usize, toks: &[&str]) -> Result<Vec<i64>, ParseScopError> {
    toks.iter()
        .map(|t| {
            t.parse::<i64>()
                .map_err(|_| ParseScopError::new(at, format!("expected integer, found `{t}`")))
        })
        .collect()
}

/// Parses the textual exchange format back into a [`Scop`].
///
/// # Errors
///
/// Returns [`ParseScopError`] with a line number on malformed input.
pub fn parse_scop(text: &str) -> Result<Scop, ParseScopError> {
    let mut cur = Cursor {
        lines: text.lines().collect(),
        pos: 0,
    };
    cur.expect("<polyscop>")?;
    let (_, name_toks) = cur.expect("name")?;
    let name = name_toks.get(1).unwrap_or(&"scop").to_string();
    let (_, ptoks) = cur.expect("params")?;
    let params: Vec<String> = ptoks[1..].iter().map(|s| s.to_string()).collect();
    let np = params.len();

    let (at, ctoks) = cur.expect("context")?;
    let nctx: usize = ctoks
        .get(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseScopError::new(at, "bad context row count"))?;
    let mut context = ConstraintSystem::new(np);
    for _ in 0..nctx {
        let (at, toks) = cur.next()?;
        let row = ints(at, &toks[1..])?;
        if row.len() != np + 1 {
            return Err(ParseScopError::new(at, "context row arity"));
        }
        match toks[0] {
            "eq" => context.add_eq(row),
            "ineq" => context.add_ineq(row),
            other => return Err(ParseScopError::new(at, format!("bad row kind `{other}`"))),
        }
    }

    let (at, atoks) = cur.expect("arrays")?;
    let narr: usize = atoks
        .get(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseScopError::new(at, "bad array count"))?;
    let mut arrays = Vec::with_capacity(narr);
    for _ in 0..narr {
        let (at, toks) = cur.expect("array")?;
        if toks.len() != 4 {
            return Err(ParseScopError::new(at, "array header arity"));
        }
        let aname = toks[1].to_string();
        let esize: u32 = toks[2]
            .parse()
            .map_err(|_| ParseScopError::new(at, "bad element size"))?;
        let ndims: usize = toks[3]
            .parse()
            .map_err(|_| ParseScopError::new(at, "bad dim count"))?;
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let (at, toks) = cur.expect("dim")?;
            let row = ints(at, &toks[1..])?;
            if row.len() != np + 1 {
                return Err(ParseScopError::new(at, "dim row arity"));
            }
            dims.push(AffineExpr::new(Vec::new(), row[..np].to_vec(), row[np]));
        }
        arrays.push(ArrayInfo {
            name: aname,
            dims,
            element_size: esize,
        });
    }

    let (at, stoks) = cur.expect("statements")?;
    let nst: usize = stoks
        .get(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseScopError::new(at, "bad statement count"))?;
    let mut statements = Vec::with_capacity(nst);
    for sid in 0..nst {
        let (_, toks) = cur.expect("statement")?;
        let sname = toks.get(1).unwrap_or(&"S").to_string();
        let (_, itoks) = cur.expect("iters")?;
        let iter_names: Vec<String> = itoks[1..].iter().map(|s| s.to_string()).collect();
        let depth = iter_names.len();
        let (at, btoks) = cur.expect("beta")?;
        let beta = ints(at, &btoks[1..])?;
        let (at, otoks) = cur.expect("ops")?;
        let ops: u32 = otoks
            .get(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseScopError::new(at, "bad ops"))?;
        // Optional text line.
        let save = cur.pos;
        let mut text = None;
        if let Ok((_, toks)) = cur.next() {
            if toks.first() == Some(&"text") {
                // Recover the raw remainder of the line to preserve spacing.
                let raw = cur.lines[cur.pos - 1].trim();
                text = Some(raw["text".len()..].trim().to_string());
            } else {
                cur.pos = save;
            }
        }
        let (at, dtoks) = cur.expect("domain")?;
        let ndom: usize = dtoks
            .get(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseScopError::new(at, "bad domain row count"))?;
        let mut domain = ConstraintSystem::new(depth + np);
        for _ in 0..ndom {
            let (at, toks) = cur.next()?;
            let row = ints(at, &toks[1..])?;
            if row.len() != depth + np + 1 {
                return Err(ParseScopError::new(at, "domain row arity"));
            }
            match toks[0] {
                "eq" => domain.add_eq(row),
                "ineq" => domain.add_ineq(row),
                other => return Err(ParseScopError::new(at, format!("bad row kind `{other}`"))),
            }
        }
        let (at, atoks) = cur.expect("accesses")?;
        let nacc: usize = atoks
            .get(1)
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseScopError::new(at, "bad access count"))?;
        let mut accesses = Vec::with_capacity(nacc);
        for _ in 0..nacc {
            let (at, toks) = cur.next()?;
            let kind = match toks[0] {
                "read" => AccessKind::Read,
                "write" => AccessKind::Write,
                other => {
                    return Err(ParseScopError::new(
                        at,
                        format!("bad access kind `{other}`"),
                    ))
                }
            };
            let arr: usize = toks
                .get(1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseScopError::new(at, "bad array id"))?;
            let nsub: usize = toks
                .get(2)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseScopError::new(at, "bad subscript count"))?;
            let mut subscripts = Vec::with_capacity(nsub);
            for _ in 0..nsub {
                let (at, toks) = cur.next()?;
                let parse_expr = |from: usize| -> Result<AffineExpr, ParseScopError> {
                    let row = ints(at, &toks[from..])?;
                    if row.len() != depth + np + 1 {
                        return Err(ParseScopError::new(at, "subscript row arity"));
                    }
                    Ok(AffineExpr::from_row(&row, depth, np))
                };
                match toks[0] {
                    "aff" => subscripts.push(Subscript::Aff(parse_expr(1)?)),
                    "div" | "mod" => {
                        let k: i64 = toks
                            .get(1)
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| ParseScopError::new(at, "bad div/mod constant"))?;
                        let e = parse_expr(2)?;
                        subscripts.push(if toks[0] == "div" {
                            Subscript::FloorDiv(e, k)
                        } else {
                            Subscript::Mod(e, k)
                        });
                    }
                    other => {
                        return Err(ParseScopError::new(
                            at,
                            format!("bad subscript kind `{other}`"),
                        ))
                    }
                }
            }
            accesses.push(Access {
                array: ArrayId(arr),
                kind,
                subscripts,
            });
        }
        statements.push(Statement {
            id: StmtId(sid),
            name: sname,
            iter_names,
            domain,
            accesses,
            beta,
            compute_ops: ops,
            text,
        });
    }
    cur.expect("</polyscop>")?;
    Ok(Scop {
        name,
        params,
        context,
        arrays,
        statements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ScopBuilder, SubSpec};
    use crate::expr::Aff;

    fn sample() -> Scop {
        let mut b = ScopBuilder::new("sample");
        let n = b.param("N");
        let m = b.param("M");
        let a = b.array("A", &[n.clone(), m.clone()], 8);
        let x = b.array("x", &[], 4);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i"), Aff::val(0)])
            .write(x, &[])
            .ops(2)
            .text("x += A[i][0]")
            .add(&mut b);
        b.open_loop("j", Aff::val(1), m - 1);
        b.stmt("S1")
            .write_subs(
                a,
                vec![
                    SubSpec::Aff(Aff::var("i")),
                    SubSpec::Mod(Aff::var("j") + 1, 4),
                ],
            )
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let scop = sample();
        let text = print_scop(&scop);
        let back = parse_scop(&text).unwrap();
        assert_eq!(scop, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_scop("not a scop").is_err());
        let mut text = print_scop(&sample());
        text = text.replace("ineq", "wat");
        assert!(parse_scop(&text).is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_scop("<polyscop>\nbogus").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = print_scop(&sample());
        let with_comments = format!("# header\n\n{text}");
        assert_eq!(parse_scop(&with_comments).unwrap(), sample());
    }
}
