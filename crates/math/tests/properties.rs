//! Property-based tests for the exact math kernel.

use proptest::prelude::*;

use polytops_math::{
    ilp_feasible, ilp_lexmin, ilp_lexmin_canonical, ilp_lexmin_warm, ilp_minimize, lp_minimize,
    orthogonal_complement, ConstraintSystem, IlpOutcome, IlpStats, IntMatrix, LpOutcome, Rat,
};

fn small_rat() -> impl Strategy<Value = Rat> {
    (-20i128..=20, 1i128..=9).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    #[test]
    fn rat_add_commutes(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rat_mul_distributes(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rat_sub_then_add_round_trips(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a - b + b, a);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in small_rat()) {
        let f = Rat::from(a.floor());
        let c = Rat::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(c - f <= Rat::ONE);
    }

    #[test]
    fn rat_recip_involutive(a in small_rat().prop_filter("nonzero", |r| !r.is_zero())) {
        prop_assert_eq!(a.recip().recip(), a);
        prop_assert_eq!(a * a.recip(), Rat::ONE);
    }
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = IntMatrix> {
    proptest::collection::vec(proptest::collection::vec(-5i64..=5, cols), rows)
        .prop_map(|rows| IntMatrix::from_rows(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn inverse_round_trips(m in small_matrix(3, 3)) {
        let rm = m.to_rat();
        if let Ok(inv) = rm.inverse() {
            let prod = rm.mul(&inv).unwrap();
            for i in 0..3 {
                for j in 0..3 {
                    let expected = if i == j { Rat::ONE } else { Rat::ZERO };
                    prop_assert_eq!(prod[(i, j)], expected);
                }
            }
        }
    }

    #[test]
    fn hnf_preserves_lattice(m in small_matrix(2, 3)) {
        let (h, u) = m.hermite_normal_form().unwrap();
        // m * u == h and u unimodular (|det| == 1 checked via rank + inverse).
        prop_assert_eq!(m.mul(&u).unwrap(), h);
        let ur = u.to_rat();
        prop_assert!(ur.inverse().is_ok(), "unimodular matrices are invertible");
    }

    #[test]
    fn ortho_complement_rows_are_orthogonal(m in small_matrix(1, 4)) {
        if m.rank() == 1 {
            let perp = orthogonal_complement(&m).unwrap();
            for r in perp.iter_rows() {
                let dot: i64 = r.iter().zip(m.row(0)).map(|(a, b)| a * b).sum();
                prop_assert_eq!(dot, 0);
            }
            // Complement + original spans the full space.
            let mut all = perp.clone();
            all.push_row(m.row(0).to_vec());
            prop_assert_eq!(all.rank(), 4);
        }
    }
}

/// Generates a random non-empty box plus extra random inequality rows.
fn boxed_system() -> impl Strategy<Value = (ConstraintSystem, Vec<(i64, i64)>)> {
    let bounds = proptest::collection::vec((-4i64..=0, 0i64..=4), 3);
    (
        bounds,
        proptest::collection::vec(proptest::collection::vec(-2i64..=2, 4), 0..3),
    )
        .prop_map(|(bounds, extra)| {
            let n = bounds.len();
            let mut cs = ConstraintSystem::new(n);
            for (j, &(lo, hi)) in bounds.iter().enumerate() {
                let mut row = vec![0i64; n + 1];
                row[j] = 1;
                row[n] = -lo;
                cs.add_ineq(row);
                let mut row = vec![0i64; n + 1];
                row[j] = -1;
                row[n] = hi;
                cs.add_ineq(row);
            }
            for r in extra {
                cs.add_ineq(r);
            }
            (cs, bounds)
        })
}

/// Enumerates the integer points of the box and filters by the system.
fn brute_points(cs: &ConstraintSystem, bounds: &[(i64, i64)]) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    let (l0, h0) = bounds[0];
    let (l1, h1) = bounds[1];
    let (l2, h2) = bounds[2];
    for x in l0..=h0 {
        for y in l1..=h1 {
            for z in l2..=h2 {
                let p = vec![x, y, z];
                if cs.contains_point(&p) {
                    out.push(p);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ilp_feasibility_matches_brute_force((cs, bounds) in boxed_system()) {
        let pts = brute_points(&cs, &bounds);
        prop_assert_eq!(ilp_feasible(&cs), !pts.is_empty());
    }

    #[test]
    fn ilp_min_matches_brute_force((cs, bounds) in boxed_system(), obj in proptest::collection::vec(-3i64..=3, 3)) {
        let pts = brute_points(&cs, &bounds);
        let brute = pts
            .iter()
            .map(|p| p.iter().zip(&obj).map(|(a, b)| a * b).sum::<i64>())
            .min();
        match (ilp_minimize(&cs, &obj), brute) {
            (IlpOutcome::Optimal { value, point }, Some(bv)) => {
                prop_assert_eq!(value, bv);
                prop_assert!(cs.contains_point(&point));
            }
            (IlpOutcome::Infeasible, None) => {}
            (got, want) => prop_assert!(false, "solver {:?} vs brute {:?}", got, want),
        }
    }

    #[test]
    fn lexmin_matches_brute_force((cs, bounds) in boxed_system()) {
        let pts = brute_points(&cs, &bounds);
        let objs: Vec<Vec<i64>> = vec![
            vec![1, 0, 0],
            vec![0, 1, 0],
            vec![0, 0, 1],
        ];
        let got = ilp_lexmin(&cs, &objs);
        let want = pts.iter().min().cloned();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn lp_value_bounds_ilp_value((cs, bounds) in boxed_system(), obj in proptest::collection::vec(-3i64..=3, 3)) {
        let pts = brute_points(&cs, &bounds);
        if let (LpOutcome::Optimal { value, .. }, Some(bv)) = (
            lp_minimize(&cs, &obj),
            pts.iter()
                .map(|p| p.iter().zip(&obj).map(|(a, b)| a * b).sum::<i64>())
                .min(),
        ) {
            prop_assert!(value <= Rat::from(bv), "LP relaxation must lower-bound ILP");
        }
    }

    #[test]
    fn warm_lexmin_matches_cold_for_any_seed(
        (cs, bounds) in boxed_system(),
        seed in proptest::collection::vec(-5i64..=5, 3),
        use_seed in 0u8..=1,
    ) {
        // The dual-simplex warm path must be a pure optimization: same
        // answer as the cold solver whatever seed it is handed —
        // feasible, infeasible, or absent. The full identity cascade
        // makes the lexmin point unique, so equality is exact.
        let _ = bounds;
        let objs = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        let cold = ilp_lexmin(&cs, &objs);
        let mut stats = IlpStats::default();
        let warm = ilp_lexmin_warm(&cs, &objs, (use_seed == 1).then_some(seed.as_slice()), &mut stats);
        prop_assert_eq!(warm, cold);
    }

    #[test]
    fn canonical_lexmin_is_seed_independent_and_lex_minimal(
        (cs, bounds) in boxed_system(),
        obj in proptest::collection::vec(-2i64..=2, 3),
        seed in proptest::collection::vec(-5i64..=5, 3),
    ) {
        // A single (possibly degenerate) objective leaves ties for the
        // canonical cascade to break: the result must be the
        // lexicographically smallest point among the objective's optima,
        // and the seed must never change it.
        let objs = vec![obj.clone()];
        let mut s = IlpStats::default();
        let unseeded = ilp_lexmin_canonical(&cs, &objs, None, &mut s);
        let mut s = IlpStats::default();
        let seeded = ilp_lexmin_canonical(&cs, &objs, Some(&seed), &mut s);
        prop_assert_eq!(&seeded, &unseeded);
        let pts = brute_points(&cs, &bounds);
        let value = |p: &Vec<i64>| p.iter().zip(&obj).map(|(a, b)| a * b).sum::<i64>();
        let best = pts.iter().map(value).min();
        let want = pts.iter().filter(|p| Some(value(p)) == best).min().cloned();
        prop_assert_eq!(unseeded, want);
    }

    #[test]
    fn fm_elimination_is_sound_and_complete((cs, bounds) in boxed_system()) {
        // Soundness: every point of cs projects into the eliminated system.
        // Completeness (rational shadow): projection contains no integer
        // point whose fiber is rationally empty — we check the weaker but
        // exact property that projections of actual points are accepted.
        let proj = cs.eliminate_var(2).unwrap();
        for p in brute_points(&cs, &bounds) {
            prop_assert!(proj.contains_point(&p[..2]), "projection lost {:?}", p);
        }
    }
}
