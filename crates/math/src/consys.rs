//! Affine constraint systems over integer variables, with exact
//! Fourier–Motzkin elimination.
//!
//! A [`ConstraintSystem`] stores rows `a·x + c (>= | ==) 0` over a fixed
//! number of variables. The final column of every row is the constant term.
//! This is the workhorse representation shared by iteration domains,
//! dependence polyhedra and scheduler ILP systems.

use std::collections::HashSet;
use std::fmt;

use crate::error::Result;
use crate::num::{floor_div, gcd_slice, narrow};

/// Whether a row is an equality or an inequality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowKind {
    /// `a·x + c == 0`
    Eq,
    /// `a·x + c >= 0`
    Ineq,
}

/// A conjunction of affine equalities and inequalities over `num_vars`
/// integer variables.
///
/// # Examples
///
/// ```
/// use polytops_math::ConstraintSystem;
///
/// // { (i, j) | 0 <= i <= 9, i <= j }
/// let mut cs = ConstraintSystem::new(2);
/// cs.add_ineq(vec![1, 0, 0]);    // i >= 0
/// cs.add_ineq(vec![-1, 0, 9]);   // -i + 9 >= 0
/// cs.add_ineq(vec![-1, 1, 0]);   // j - i >= 0
/// assert_eq!(cs.num_vars(), 2);
/// assert!(cs.contains_point(&[3, 5]));
/// assert!(!cs.contains_point(&[5, 3]));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct ConstraintSystem {
    num_vars: usize,
    rows: Vec<(RowKind, Vec<i64>)>,
}

impl ConstraintSystem {
    /// Creates an unconstrained system over `num_vars` variables.
    pub fn new(num_vars: usize) -> ConstraintSystem {
        ConstraintSystem {
            num_vars,
            rows: Vec::new(),
        }
    }

    /// Number of variables (excluding the constant column).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the system has no constraints.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds `row`, interpreted as `a·x + c >= 0` (`row.len() == num_vars + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong length.
    pub fn add_ineq(&mut self, row: Vec<i64>) {
        assert_eq!(row.len(), self.num_vars + 1, "row length mismatch");
        self.rows.push((RowKind::Ineq, row));
    }

    /// Adds `row`, interpreted as `a·x + c == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong length.
    pub fn add_eq(&mut self, row: Vec<i64>) {
        assert_eq!(row.len(), self.num_vars + 1, "row length mismatch");
        self.rows.push((RowKind::Eq, row));
    }

    /// Adds every row of `other` (same variable space).
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn extend(&mut self, other: &ConstraintSystem) {
        assert_eq!(self.num_vars, other.num_vars, "variable count mismatch");
        self.rows.extend(other.rows.iter().cloned());
    }

    /// Iterates over `(kind, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowKind, &[i64])> {
        self.rows.iter().map(|(k, r)| (*k, r.as_slice()))
    }

    /// The rows as `(kind, coefficients-with-constant)` tuples.
    pub fn rows(&self) -> &[(RowKind, Vec<i64>)] {
        &self.rows
    }

    /// Evaluates row `r` at an integer point (without the constant column
    /// in `point`).
    fn eval_row(row: &[i64], point: &[i64]) -> i128 {
        let n = row.len() - 1;
        let mut acc = i128::from(row[n]);
        for i in 0..n {
            acc += i128::from(row[i]) * i128::from(point[i]);
        }
        acc
    }

    /// Whether the integer point satisfies every constraint.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != num_vars`.
    pub fn contains_point(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), self.num_vars, "point dimension mismatch");
        self.rows.iter().all(|(kind, row)| {
            let v = Self::eval_row(row, point);
            match kind {
                RowKind::Eq => v == 0,
                RowKind::Ineq => v >= 0,
            }
        })
    }

    /// Inserts `count` fresh unconstrained variables at position `at`
    /// (existing rows get zero coefficients there).
    ///
    /// # Panics
    ///
    /// Panics if `at > num_vars`.
    pub fn insert_vars(&mut self, at: usize, count: usize) {
        assert!(at <= self.num_vars);
        for (_, row) in &mut self.rows {
            for _ in 0..count {
                row.insert(at, 0);
            }
        }
        self.num_vars += count;
    }

    /// Appends `count` fresh unconstrained variables (before the constant).
    pub fn append_vars(&mut self, count: usize) {
        self.insert_vars(self.num_vars, count);
    }

    /// Normalizes every row assuming **integer** variables: divides by the
    /// gcd of the coefficients (tightening inequality constants), removes
    /// duplicates and trivially-true rows, and detects equalities with no
    /// integer solution.
    ///
    /// Returns `false` if a trivially *infeasible* row was found (e.g.
    /// `0 >= 1`), in which case the system is left holding that witness.
    pub fn normalize(&mut self) -> bool {
        self.normalize_impl(true)
    }

    /// Normalizes every row assuming **rational** variables: divides by
    /// the gcd of all entries (including the constant), never tightens.
    /// Use this wherever variables may take fractional values, e.g.
    /// Farkas multipliers.
    ///
    /// Returns `false` on a trivially infeasible constant row.
    pub fn normalize_rational(&mut self) -> bool {
        self.normalize_impl(false)
    }

    fn normalize_impl(&mut self, tighten: bool) -> bool {
        let mut seen: HashSet<(RowKind, Vec<i64>)> = HashSet::new();
        let mut out: Vec<(RowKind, Vec<i64>)> = Vec::with_capacity(self.rows.len());
        let n = self.num_vars;
        for (kind, mut row) in std::mem::take(&mut self.rows) {
            let g = gcd_slice(&row[..n]);
            if g == 0 {
                // Constant row.
                match kind {
                    RowKind::Eq if row[n] != 0 => {
                        self.rows = vec![(kind, row)];
                        return false;
                    }
                    RowKind::Ineq if row[n] < 0 => {
                        self.rows = vec![(kind, row)];
                        return false;
                    }
                    _ => continue, // trivially true
                }
            }
            if g > 1 {
                match (kind, tighten) {
                    (RowKind::Eq, true) => {
                        if row[n] % g != 0 {
                            // gcd of coefficients does not divide the
                            // constant: no integer solutions.
                            self.rows = vec![(kind, row)];
                            return false;
                        }
                        for v in &mut row {
                            *v /= g;
                        }
                    }
                    (RowKind::Ineq, true) => {
                        for v in row[..n].iter_mut() {
                            *v /= g;
                        }
                        // a·x >= -c  =>  (a/g)·x >= ceil(-c/g), i.e. the
                        // constant becomes floor(c/g).
                        row[n] = floor_div(row[n], g);
                    }
                    (_, false) => {
                        // Rational semantics: only divide when exact.
                        if row[n] % g == 0 {
                            for v in &mut row {
                                *v /= g;
                            }
                        }
                    }
                }
            }
            if seen.insert((kind, row.clone())) {
                out.push((kind, row));
            }
        }
        // Subsumption: for identical inequality coefficients keep the
        // tightest constant (the smallest one).
        let mut best: Vec<(RowKind, Vec<i64>)> = Vec::with_capacity(out.len());
        'next: for (kind, row) in out {
            if kind == RowKind::Ineq {
                for (bk, brow) in &mut best {
                    if *bk == RowKind::Ineq && brow[..n] == row[..n] {
                        if row[n] < brow[n] {
                            brow[n] = row[n];
                        }
                        continue 'next;
                    }
                }
            }
            best.push((kind, row));
        }
        self.rows = best;
        true
    }

    /// Eliminates variable `var` by exact Fourier–Motzkin (using an
    /// equality pivot when available), producing a system over one fewer
    /// variable. The result is normalized with **integer** tightening —
    /// use [`ConstraintSystem::eliminate_var_rational`] when any remaining
    /// variable may be fractional.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Overflow`](crate::MathError::Overflow) when combined rows overflow.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn eliminate_var(&self, var: usize) -> Result<ConstraintSystem> {
        self.eliminate_impl(var, true)
    }

    /// Fourier–Motzkin elimination with rational semantics (no integer
    /// tightening). Sound when the variables are rational, e.g. Farkas
    /// multipliers.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Overflow`](crate::MathError::Overflow) when combined rows overflow.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn eliminate_var_rational(&self, var: usize) -> Result<ConstraintSystem> {
        self.eliminate_impl(var, false)
    }

    fn eliminate_impl(&self, var: usize, tighten: bool) -> Result<ConstraintSystem> {
        assert!(var < self.num_vars);
        let n = self.num_vars;
        let mut out = ConstraintSystem::new(n - 1);

        let drop_col = |row: &[i64]| -> Vec<i64> {
            let mut r: Vec<i64> = Vec::with_capacity(row.len() - 1);
            r.extend_from_slice(&row[..var]);
            r.extend_from_slice(&row[var + 1..]);
            r
        };

        // Prefer an equality pivot: exact substitution, no blowup.
        if let Some(pivot_idx) = self
            .rows
            .iter()
            .position(|(k, r)| *k == RowKind::Eq && r[var] != 0)
        {
            let (_, pivot) = &self.rows[pivot_idx];
            let a = pivot[var];
            for (i, (kind, row)) in self.rows.iter().enumerate() {
                if i == pivot_idx {
                    continue;
                }
                let b = row[var];
                if b == 0 {
                    out.rows.push((*kind, drop_col(row)));
                    continue;
                }
                // new_row = a * row - b * pivot, scaled so the inequality
                // direction is preserved (multiply by sign(a)).
                let s: i128 = if a > 0 { 1 } else { -1 };
                let mut nr: Vec<i64> = Vec::with_capacity(n);
                for c in 0..=n {
                    if c == var {
                        continue;
                    }
                    let v = s
                        * (i128::from(a) * i128::from(row[c])
                            - i128::from(b) * i128::from(pivot[c]));
                    nr.push(narrow(v)?);
                }
                out.rows.push((*kind, nr));
            }
            out.normalize_impl(tighten);
            return Ok(out);
        }

        // Plain Fourier–Motzkin on inequalities. Equalities not involving
        // `var` pass through; equalities involving `var` were handled above.
        let mut pos: Vec<&Vec<i64>> = Vec::new();
        let mut neg: Vec<&Vec<i64>> = Vec::new();
        for (kind, row) in &self.rows {
            match (kind, row[var].signum()) {
                (_, 0) => out.rows.push((*kind, drop_col(row))),
                (RowKind::Ineq, 1) => pos.push(row),
                (RowKind::Ineq, -1) => neg.push(row),
                (RowKind::Eq, _) => unreachable!("equality pivot handled above"),
                _ => unreachable!(),
            }
        }
        for p in &pos {
            for q in &neg {
                // p: a x_var + ... >= 0 (a > 0), q: -b x_var + ... >= 0 (b > 0)
                // combine: b * p + a * q
                let a = i128::from(p[var]);
                let b = i128::from(-q[var]);
                let mut nr: Vec<i64> = Vec::with_capacity(n);
                for c in 0..=n {
                    if c == var {
                        continue;
                    }
                    let v = b * i128::from(p[c]) + a * i128::from(q[c]);
                    nr.push(narrow(v)?);
                }
                out.rows.push((RowKind::Ineq, nr));
            }
        }
        out.normalize_impl(tighten);
        Ok(out)
    }

    /// Eliminates the trailing `count` variables (one at a time, last
    /// first) with integer tightening.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Overflow`](crate::MathError::Overflow) when combined rows overflow.
    pub fn eliminate_last_vars(&self, count: usize) -> Result<ConstraintSystem> {
        let mut cur = self.clone();
        for _ in 0..count {
            cur = cur.eliminate_var(cur.num_vars - 1)?;
        }
        Ok(cur)
    }

    /// Eliminates the trailing `count` variables with rational semantics.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Overflow`](crate::MathError::Overflow) when combined rows overflow.
    pub fn eliminate_last_vars_rational(&self, count: usize) -> Result<ConstraintSystem> {
        let mut cur = self.clone();
        for _ in 0..count {
            cur = cur.eliminate_var_rational(cur.num_vars - 1)?;
        }
        Ok(cur)
    }

    /// Whether normalization exposes a trivially infeasible row.
    pub fn is_trivially_infeasible(&self) -> bool {
        let mut c = self.clone();
        !c.normalize()
    }
}

impl fmt::Debug for ConstraintSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ConstraintSystem({} vars) {{", self.num_vars)?;
        for (kind, row) in &self.rows {
            let op = match kind {
                RowKind::Eq => "==",
                RowKind::Ineq => ">=",
            };
            let mut terms: Vec<String> = Vec::new();
            for (i, &c) in row[..self.num_vars].iter().enumerate() {
                if c != 0 {
                    terms.push(format!("{c}*x{i}"));
                }
            }
            let cst = row[self.num_vars];
            if cst != 0 || terms.is_empty() {
                terms.push(cst.to_string());
            }
            writeln!(f, "  {} {} 0", terms.join(" + "), op)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box2d() -> ConstraintSystem {
        // 0 <= x <= 4, 0 <= y <= 3
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 4]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![0, -1, 3]);
        cs
    }

    #[test]
    fn contains_point_checks_all_rows() {
        let cs = box2d();
        assert!(cs.contains_point(&[0, 0]));
        assert!(cs.contains_point(&[4, 3]));
        assert!(!cs.contains_point(&[5, 0]));
        assert!(!cs.contains_point(&[0, -1]));
    }

    #[test]
    fn normalize_divides_by_gcd_and_tightens() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![2, 3]); // 2x + 3 >= 0  =>  x >= -3/2  =>  x + 1 >= 0
        assert!(cs.normalize());
        assert_eq!(cs.rows()[0].1, vec![1, 1]);
    }

    #[test]
    fn normalize_detects_infeasible_constant() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![0, -1]); // -1 >= 0
        assert!(!cs.normalize());
    }

    #[test]
    fn normalize_detects_non_integral_equality() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_eq(vec![2, 1]); // 2x + 1 == 0 has no integer solution
        assert!(!cs.normalize());
    }

    #[test]
    fn normalize_dedups_and_subsumes() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, 5]);
        cs.add_ineq(vec![1, 3]); // tighter
        cs.add_ineq(vec![1, 3]); // duplicate
        assert!(cs.normalize());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.rows()[0].1, vec![1, 3]);
    }

    #[test]
    fn eliminate_projects_box() {
        let cs = box2d();
        let proj = cs.eliminate_var(1).unwrap(); // drop y
        assert_eq!(proj.num_vars(), 1);
        assert!(proj.contains_point(&[0]));
        assert!(proj.contains_point(&[4]));
        assert!(!proj.contains_point(&[5]));
        assert!(!proj.contains_point(&[-1]));
    }

    #[test]
    fn eliminate_uses_equality_pivot() {
        // x == y, 0 <= x <= 4; eliminating y keeps 0 <= x <= 4.
        let mut cs = ConstraintSystem::new(2);
        cs.add_eq(vec![1, -1, 0]);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 4]);
        let proj = cs.eliminate_var(1).unwrap();
        assert!(proj.contains_point(&[0]));
        assert!(proj.contains_point(&[4]));
        assert!(!proj.contains_point(&[5]));
    }

    #[test]
    fn eliminate_couples_pos_neg() {
        // x <= y <= x + 2, 1 <= y <= 3; eliminating y: x >= -1 and x <= 2... wait
        // y >= x  ->  -x + y >= 0 ; y <= x+2 -> x - y + 2 >= 0; y>=1; y<=3
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![-1, 1, 0]);
        cs.add_ineq(vec![1, -1, 2]);
        cs.add_ineq(vec![0, 1, -1]);
        cs.add_ineq(vec![0, -1, 3]);
        let proj = cs.eliminate_var(1).unwrap();
        // Feasible x: y in [max(x,1), min(x+2,3)] nonempty => x <= 3 and x >= -1.
        assert!(proj.contains_point(&[-1]));
        assert!(proj.contains_point(&[3]));
        assert!(!proj.contains_point(&[4]));
        assert!(!proj.contains_point(&[-2]));
    }

    #[test]
    fn insert_vars_shifts_columns() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -2]); // x >= 2
        cs.insert_vars(0, 1);
        assert_eq!(cs.num_vars(), 2);
        assert!(cs.contains_point(&[99, 2]));
        assert!(!cs.contains_point(&[0, 1]));
    }
}
