//! Branch-and-bound integer linear programming on top of the exact
//! rational simplex, including the lexicographic minimization the
//! iterative scheduler relies on (Pluto/PIP-style `lexmin`).

use crate::consys::ConstraintSystem;
use crate::rat::Rat;
use crate::simplex::{lp_minimize, LpOutcome};

/// Result of an integer linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlpOutcome {
    /// No integer point satisfies the constraints.
    Infeasible,
    /// The relaxation is unbounded in the objective direction.
    Unbounded,
    /// Proven integer optimum.
    Optimal {
        /// Minimal objective value.
        value: i64,
        /// An integer point attaining it.
        point: Vec<i64>,
    },
    /// The node budget was exhausted before optimality was proven; the
    /// best incumbent found (if any) is reported.
    NodeLimit {
        /// Best integer solution discovered before truncation.
        best: Option<(i64, Vec<i64>)>,
    },
}

/// Default branch-and-bound node budget.
const MAX_NODES: usize = 50_000;

/// Minimizes an integer objective `obj · x` over the integer points of
/// `cs` by depth-first branch and bound.
///
/// # Examples
///
/// ```
/// use polytops_math::{ilp_minimize, ConstraintSystem, IlpOutcome};
///
/// // minimize x subject to 2x >= 3 (integer): x = 2.
/// let mut cs = ConstraintSystem::new(1);
/// cs.add_ineq(vec![2, -3]);
/// match ilp_minimize(&cs, &[1]) {
///     IlpOutcome::Optimal { value, point } => {
///         assert_eq!(value, 2);
///         assert_eq!(point, vec![2]);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub fn ilp_minimize(cs: &ConstraintSystem, obj: &[i64]) -> IlpOutcome {
    assert_eq!(obj.len(), cs.num_vars(), "objective length mismatch");
    let mut root = cs.clone();
    if !root.normalize() {
        return IlpOutcome::Infeasible;
    }
    let mut nodes = 0usize;
    let mut incumbent: Option<(i64, Vec<i64>)> = None;
    let zero_obj = obj.iter().all(|&c| c == 0);
    let mut stack: Vec<ConstraintSystem> = vec![root];
    while let Some(node) = stack.pop() {
        nodes += 1;
        if nodes > MAX_NODES {
            return IlpOutcome::NodeLimit { best: incumbent };
        }
        match lp_minimize(&node, obj) {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // The relaxation is unbounded. If we have not yet committed
                // to an incumbent this propagates out; bounded scheduler
                // problems never hit this.
                return IlpOutcome::Unbounded;
            }
            LpOutcome::Optimal { value, point } => {
                // Bound pruning: integer objective values are integers.
                if let Some((inc, _)) = &incumbent {
                    if value.ceil() >= i128::from(*inc) {
                        continue;
                    }
                }
                match first_fractional(&point) {
                    None => {
                        let ipoint: Vec<i64> = point.iter().map(|v| v.numer() as i64).collect();
                        let ival = value
                            .to_integer()
                            .expect("integral point yields integral objective")
                            as i64;
                        let better = incumbent.as_ref().is_none_or(|(inc, _)| ival < *inc);
                        if better {
                            incumbent = Some((ival, ipoint));
                            if zero_obj {
                                break; // any integer point is optimal
                            }
                        }
                    }
                    Some((j, v)) => {
                        // Branch x_j <= floor(v) and x_j >= ceil(v);
                        // explore the floor branch first (DFS pops last).
                        let mut up = node.clone();
                        let mut row = vec![0i64; up.num_vars() + 1];
                        row[j] = 1;
                        row[up.num_vars()] = -(v.ceil() as i64);
                        up.add_ineq(row);
                        let mut down = node;
                        let mut row = vec![0i64; down.num_vars() + 1];
                        row[j] = -1;
                        row[down.num_vars()] = v.floor() as i64;
                        down.add_ineq(row);
                        stack.push(up);
                        stack.push(down);
                    }
                }
            }
        }
    }
    match incumbent {
        Some((value, point)) => IlpOutcome::Optimal { value, point },
        None => IlpOutcome::Infeasible,
    }
}

fn first_fractional(point: &[Rat]) -> Option<(usize, Rat)> {
    point
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_integer())
        .map(|(j, v)| (j, *v))
}

/// Finds any integer point of `cs`, or `None` when the system has no
/// integer solutions (or the node budget runs out — treated as empty,
/// which is the conservative answer for dependence tests).
pub fn ilp_feasible_point(cs: &ConstraintSystem) -> Option<Vec<i64>> {
    let zeros = vec![0i64; cs.num_vars()];
    match ilp_minimize(cs, &zeros) {
        IlpOutcome::Optimal { point, .. } => Some(point),
        IlpOutcome::NodeLimit { best } => best.map(|(_, p)| p),
        _ => None,
    }
}

/// Whether `cs` contains at least one integer point.
pub fn ilp_feasible(cs: &ConstraintSystem) -> bool {
    ilp_feasible_point(cs).is_some()
}

/// Lexicographic minimization: minimizes each objective in turn, fixing
/// its optimal value as an equality before moving to the next, and
/// returns the final integer point.
///
/// This mirrors how Pluto (via PIP) selects schedule coefficients: the
/// objective sequence is typically `(u, w, Σ coeffs, coeff₀, coeff₁, …)`.
///
/// Returns `None` when the system is infeasible or some objective is
/// unbounded below (callers bound their variables, so unboundedness
/// signals a modeling error upstream).
///
/// # Examples
///
/// ```
/// use polytops_math::{ilp_lexmin, ConstraintSystem};
///
/// // 0 <= x, y <= 3, x + y >= 3: lexmin (x, then y) = (0, 3).
/// let mut cs = ConstraintSystem::new(2);
/// cs.add_ineq(vec![1, 0, 0]);
/// cs.add_ineq(vec![-1, 0, 3]);
/// cs.add_ineq(vec![0, 1, 0]);
/// cs.add_ineq(vec![0, -1, 3]);
/// cs.add_ineq(vec![1, 1, -3]);
/// let point = ilp_lexmin(&cs, &[vec![1, 0], vec![0, 1]]).unwrap();
/// assert_eq!(point, vec![0, 3]);
/// ```
pub fn ilp_lexmin(cs: &ConstraintSystem, objectives: &[Vec<i64>]) -> Option<Vec<i64>> {
    let n = cs.num_vars();
    let mut cur = cs.clone();
    let mut last_point: Option<Vec<i64>> = None;
    for obj in objectives {
        assert_eq!(obj.len(), n, "objective length mismatch");
        match ilp_minimize(&cur, obj) {
            IlpOutcome::Optimal { value, point } => {
                // Pin the objective at its optimum and continue.
                let mut row = obj.clone();
                row.push(-value);
                cur.add_eq(row);
                last_point = Some(point);
            }
            IlpOutcome::NodeLimit {
                best: Some((value, point)),
            } => {
                // Best-effort: accept the incumbent (still a legal point).
                let mut row = obj.clone();
                row.push(-value);
                cur.add_eq(row);
                last_point = Some(point);
            }
            _ => return None,
        }
    }
    match last_point {
        Some(p) => Some(p),
        None => ilp_feasible_point(&cur),
    }
}

/// Conservatively decides whether `row` (an inequality `a·x + c >= 0`) is
/// implied by `cs` over the rationals. Used for pruning redundant guards
/// during code generation; a `false` answer merely keeps a guard.
pub fn ineq_implied(cs: &ConstraintSystem, row: &[i64]) -> bool {
    assert_eq!(row.len(), cs.num_vars() + 1, "row length mismatch");
    let n = cs.num_vars();
    match lp_minimize(cs, &row[..n]) {
        LpOutcome::Optimal { value, .. } => value + Rat::from(row[n]) >= Rat::ZERO,
        LpOutcome::Infeasible => true, // empty set implies everything
        LpOutcome::Unbounded => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_rounding_up() {
        // 3x >= 7 -> x >= 3 (integer).
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![3, -7]);
        match ilp_minimize(&cs, &[1]) {
            IlpOutcome::Optimal { value, .. } => assert_eq!(value, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_gap() {
        // 2 < 2x < 4 has the single integer... x in (1,2): empty.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![2, -3]); // 2x >= 3
        cs.add_ineq(vec![-2, 3]); // 2x <= 3
        assert_eq!(ilp_minimize(&cs, &[1]), IlpOutcome::Infeasible);
        assert!(!ilp_feasible(&cs));
    }

    #[test]
    fn feasible_point_on_diagonal() {
        // x == y, 5 <= x <= 6.
        let mut cs = ConstraintSystem::new(2);
        cs.add_eq(vec![1, -1, 0]);
        cs.add_ineq(vec![1, 0, -5]);
        cs.add_ineq(vec![-1, 0, 6]);
        let p = ilp_feasible_point(&cs).unwrap();
        assert_eq!(p[0], p[1]);
        assert!((5..=6).contains(&p[0]));
    }

    #[test]
    fn branching_two_dims() {
        // minimize x + y with 2x + 3y >= 7, x, y >= 0 (integers).
        // LP optimum fractional; integer optimum value 3 (e.g. x=2,y=1).
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![2, 3, -7]);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![0, 1, 0]);
        match ilp_minimize(&cs, &[1, 1]) {
            IlpOutcome::Optimal { value, point } => {
                assert_eq!(value, 3);
                assert!(2 * point[0] + 3 * point[1] >= 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lexmin_prefers_earlier_objectives() {
        // Box [0,2]^2 with x + y >= 2; lexmin (x, y) = (0, 2), not (1, 1).
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 2]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![0, -1, 2]);
        cs.add_ineq(vec![1, 1, -2]);
        let p = ilp_lexmin(&cs, &[vec![1, 0], vec![0, 1]]).unwrap();
        assert_eq!(p, vec![0, 2]);
    }

    #[test]
    fn lexmin_composite_objective() {
        // Minimize x + y first, then x: picks (0, 1) among {(0,1),(1,0)}.
        let mut cs = ConstraintSystem::new(2);
        for r in [vec![1, 0, 0], vec![-1, 0, 5], vec![0, 1, 0], vec![0, -1, 5]] {
            cs.add_ineq(r);
        }
        cs.add_ineq(vec![1, 1, -1]); // x + y >= 1
        let p = ilp_lexmin(&cs, &[vec![1, 1], vec![1, 0]]).unwrap();
        assert_eq!(p, vec![0, 1]);
    }

    #[test]
    fn lexmin_infeasible_is_none() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -5]);
        cs.add_ineq(vec![-1, 2]);
        assert_eq!(ilp_lexmin(&cs, &[vec![1]]), None);
    }

    #[test]
    fn implied_inequality() {
        // x >= 3 implies x >= 1 but not x >= 4.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -3]);
        cs.add_ineq(vec![-1, 10]);
        assert!(ineq_implied(&cs, &[1, -1]));
        assert!(!ineq_implied(&cs, &[1, -4]));
    }

    #[test]
    fn equality_only_integer_check() {
        // 2x == 3 has a rational but no integer solution.
        let mut cs = ConstraintSystem::new(1);
        cs.add_eq(vec![2, -3]);
        assert!(!ilp_feasible(&cs));
    }
}
