//! Branch-and-bound integer linear programming on top of the exact
//! rational simplex, including the lexicographic minimization the
//! iterative scheduler relies on (Pluto/PIP-style `lexmin`).

use crate::consys::ConstraintSystem;
use crate::rat::Rat;
use crate::simplex::{lp_minimize, IncrementalLp, LpOutcome};

/// Result of an integer linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IlpOutcome {
    /// No integer point satisfies the constraints.
    Infeasible,
    /// The relaxation is unbounded in the objective direction.
    Unbounded,
    /// Proven integer optimum.
    Optimal {
        /// Minimal objective value.
        value: i64,
        /// An integer point attaining it.
        point: Vec<i64>,
    },
    /// The node budget was exhausted before optimality was proven; the
    /// best incumbent found (if any) is reported.
    NodeLimit {
        /// Best integer solution discovered before truncation.
        best: Option<(i64, Vec<i64>)>,
    },
}

/// Default branch-and-bound node budget.
const MAX_NODES: usize = 50_000;

/// Cumulative solver-effort counters, used to measure how much work the
/// warm-started entry points ([`ilp_minimize_seeded`], [`ilp_lexmin_warm`])
/// save over their cold counterparts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IlpStats {
    /// Branch-and-bound nodes explored (each node solves a fresh LP from
    /// a rebuilt tableau).
    pub nodes: usize,
    /// Lexmin stages resolved purely by incremental LP re-optimization
    /// (warm path: shared basis, no branch and bound at all).
    pub lp_stages: usize,
    /// Branch-and-bound entries whose *root* relaxation vertex was
    /// fractional (or overflowed `i64`), i.e. stages where pure LP
    /// re-optimization could not finish and real branching began. This
    /// is the per-stage fractional-vertex count motivating dual-simplex
    /// re-optimization after pinning (see ROADMAP `jacobi_1d/pluto`):
    /// every unit here pays for both a simplex solve and a tree search.
    pub fractional_stages: usize,
    /// Seed points offered that were feasible and became the initial
    /// incumbent of a branch-and-bound run.
    pub seeds_accepted: usize,
    /// Solves short-circuited entirely by a seed (a feasible seed under a
    /// zero objective is optimal without any search).
    pub seed_shortcuts: usize,
    /// Dual-simplex pivots spent pinning stage optima on the shared
    /// incremental tableau (the re-optimization that replaced the
    /// artificial-based mini phase-1).
    pub dual_pivots: usize,
    /// Artificial-based phase-1 fallback passes during pinning (the dual
    /// pivot loop hit its safety cap; zero on every known workload).
    pub phase1_passes: usize,
}

impl IlpStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &IlpStats) {
        self.nodes += other.nodes;
        self.lp_stages += other.lp_stages;
        self.fractional_stages += other.fractional_stages;
        self.seeds_accepted += other.seeds_accepted;
        self.seed_shortcuts += other.seed_shortcuts;
        self.dual_pivots += other.dual_pivots;
        self.phase1_passes += other.phase1_passes;
    }
}

/// Minimizes an integer objective `obj · x` over the integer points of
/// `cs` by depth-first branch and bound.
///
/// # Examples
///
/// ```
/// use polytops_math::{ilp_minimize, ConstraintSystem, IlpOutcome};
///
/// // minimize x subject to 2x >= 3 (integer): x = 2.
/// let mut cs = ConstraintSystem::new(1);
/// cs.add_ineq(vec![2, -3]);
/// match ilp_minimize(&cs, &[1]) {
///     IlpOutcome::Optimal { value, point } => {
///         assert_eq!(value, 2);
///         assert_eq!(point, vec![2]);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub fn ilp_minimize(cs: &ConstraintSystem, obj: &[i64]) -> IlpOutcome {
    ilp_minimize_seeded(cs, obj, None, &mut IlpStats::default())
}

/// [`ilp_minimize`] with a warm start: when `seed` is a feasible integer
/// point of `cs`, it becomes the initial incumbent, so branch and bound
/// starts with an upper bound and prunes from the first node (a MIP
/// start). An infeasible or ill-sized seed is silently ignored.
///
/// Solver effort is accumulated into `stats`.
pub fn ilp_minimize_seeded(
    cs: &ConstraintSystem,
    obj: &[i64],
    seed: Option<&[i64]>,
    stats: &mut IlpStats,
) -> IlpOutcome {
    ilp_minimize_impl(cs, obj, seed, None, None, stats)
}

/// Full branch and bound. `lower_bound` is an optional proven objective
/// lower bound (e.g. the ceiling of the LP relaxation's optimum): the
/// search stops as soon as an incumbent attains it. `root_lp` optionally supplies an
/// already-computed LP optimum of the root relaxation (value and
/// vertex), skipping the root solve. A fractional externally-supplied
/// vertex is sound to branch on even though the root system is
/// integer-tightened afterwards: the floor/ceil branches cover every
/// integer point regardless of the vertex used, and the LP value's
/// ceiling remains a valid lower bound.
fn ilp_minimize_impl(
    cs: &ConstraintSystem,
    obj: &[i64],
    seed: Option<&[i64]>,
    lower_bound: Option<i64>,
    root_lp: Option<(Rat, Vec<Rat>)>,
    stats: &mut IlpStats,
) -> IlpOutcome {
    assert_eq!(obj.len(), cs.num_vars(), "objective length mismatch");
    let mut root = cs.clone();
    if !root.normalize() {
        return IlpOutcome::Infeasible;
    }
    let zero_obj = obj.iter().all(|&c| c == 0);
    let mut incumbent: Option<(i64, Vec<i64>)> = None;
    if let Some(p) = seed {
        if p.len() == cs.num_vars() && cs.contains_point(p) {
            let value: i128 = obj
                .iter()
                .zip(p)
                .map(|(&c, &v)| i128::from(c) * i128::from(v))
                .sum();
            if let Ok(value) = i64::try_from(value) {
                stats.seeds_accepted += 1;
                if zero_obj || lower_bound == Some(value) {
                    // Any feasible point is optimal under a zero
                    // objective; a seed attaining a proven lower bound
                    // is optimal outright.
                    stats.seed_shortcuts += 1;
                    return IlpOutcome::Optimal {
                        value,
                        point: p.to_vec(),
                    };
                }
                incumbent = Some((value, p.to_vec()));
            }
        }
    }
    let mut nodes = 0usize;
    let mut root_lp = root_lp;
    let mut stack: Vec<ConstraintSystem> = vec![root];
    while let Some(node) = stack.pop() {
        nodes += 1;
        stats.nodes += 1;
        if nodes > MAX_NODES {
            return IlpOutcome::NodeLimit { best: incumbent };
        }
        let outcome = match root_lp.take() {
            Some((value, point)) => LpOutcome::Optimal { value, point },
            None => lp_minimize(&node, obj),
        };
        match outcome {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // The relaxation is unbounded. If we have not yet committed
                // to an incumbent this propagates out; bounded scheduler
                // problems never hit this.
                return IlpOutcome::Unbounded;
            }
            LpOutcome::Optimal { value, point } => {
                // Bound pruning: integer objective values are integers.
                if let Some((inc, _)) = &incumbent {
                    if value.ceil() >= i128::from(*inc) {
                        continue;
                    }
                }
                match first_fractional(&point) {
                    None => {
                        let ipoint: Option<Vec<i64>> = point
                            .iter()
                            .map(|v| i64::try_from(v.numer()).ok())
                            .collect();
                        let ival = value.to_integer().and_then(|v| i64::try_from(v).ok());
                        let (Some(ipoint), Some(ival)) = (ipoint, ival) else {
                            // A coordinate or value outside i64: treat
                            // the node as unusable rather than wrapping
                            // (box-bounded scheduler problems never get
                            // here). At the root this still counts as a
                            // stage pure LP could not finish.
                            if nodes == 1 {
                                stats.fractional_stages += 1;
                            }
                            continue;
                        };
                        let better = incumbent.as_ref().is_none_or(|(inc, _)| ival < *inc);
                        if better {
                            incumbent = Some((ival, ipoint));
                            if zero_obj || lower_bound == Some(ival) {
                                // Optimal: zero objective, or the proven
                                // lower bound was attained.
                                break;
                            }
                        }
                    }
                    Some((j, v)) => {
                        if nodes == 1 {
                            // The root relaxation itself went fractional:
                            // this solve genuinely needs branch and bound.
                            stats.fractional_stages += 1;
                        }
                        // Branch x_j <= floor(v) and x_j >= ceil(v);
                        // explore the floor branch first (DFS pops last).
                        let mut up = node.clone();
                        let mut row = vec![0i64; up.num_vars() + 1];
                        row[j] = 1;
                        row[up.num_vars()] = -(v.ceil() as i64);
                        up.add_ineq(row);
                        let mut down = node;
                        let mut row = vec![0i64; down.num_vars() + 1];
                        row[j] = -1;
                        row[down.num_vars()] = v.floor() as i64;
                        down.add_ineq(row);
                        stack.push(up);
                        stack.push(down);
                    }
                }
            }
        }
    }
    match incumbent {
        Some((value, point)) => IlpOutcome::Optimal { value, point },
        None => IlpOutcome::Infeasible,
    }
}

fn first_fractional(point: &[Rat]) -> Option<(usize, Rat)> {
    point
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_integer())
        .map(|(j, v)| (j, *v))
}

/// Finds any integer point of `cs`, or `None` when the system has no
/// integer solutions (or the node budget runs out — treated as empty,
/// which is the conservative answer for dependence tests).
pub fn ilp_feasible_point(cs: &ConstraintSystem) -> Option<Vec<i64>> {
    let zeros = vec![0i64; cs.num_vars()];
    match ilp_minimize(cs, &zeros) {
        IlpOutcome::Optimal { point, .. } => Some(point),
        IlpOutcome::NodeLimit { best } => best.map(|(_, p)| p),
        _ => None,
    }
}

/// Whether `cs` contains at least one integer point.
pub fn ilp_feasible(cs: &ConstraintSystem) -> bool {
    ilp_feasible_point(cs).is_some()
}

/// Lexicographic minimization: minimizes each objective in turn, fixing
/// its optimal value as an equality before moving to the next, and
/// returns the final integer point.
///
/// This mirrors how Pluto (via PIP) selects schedule coefficients: the
/// objective sequence is typically `(u, w, Σ coeffs, coeff₀, coeff₁, …)`.
///
/// Returns `None` when the system is infeasible or some objective is
/// unbounded below (callers bound their variables, so unboundedness
/// signals a modeling error upstream).
///
/// # Examples
///
/// ```
/// use polytops_math::{ilp_lexmin, ConstraintSystem};
///
/// // 0 <= x, y <= 3, x + y >= 3: lexmin (x, then y) = (0, 3).
/// let mut cs = ConstraintSystem::new(2);
/// cs.add_ineq(vec![1, 0, 0]);
/// cs.add_ineq(vec![-1, 0, 3]);
/// cs.add_ineq(vec![0, 1, 0]);
/// cs.add_ineq(vec![0, -1, 3]);
/// cs.add_ineq(vec![1, 1, -3]);
/// let point = ilp_lexmin(&cs, &[vec![1, 0], vec![0, 1]]).unwrap();
/// assert_eq!(point, vec![0, 3]);
/// ```
pub fn ilp_lexmin(cs: &ConstraintSystem, objectives: &[Vec<i64>]) -> Option<Vec<i64>> {
    ilp_lexmin_stats(cs, objectives, &mut IlpStats::default())
}

/// [`ilp_lexmin`] with effort counters but **no** warm starting — the
/// cold baseline that [`ilp_lexmin_warm`] is benchmarked against.
pub fn ilp_lexmin_stats(
    cs: &ConstraintSystem,
    objectives: &[Vec<i64>],
    stats: &mut IlpStats,
) -> Option<Vec<i64>> {
    lexmin_cold(cs, objectives, stats)
}

/// Warm-started lexicographic minimization.
///
/// Three mechanisms cut the solver effort relative to [`ilp_lexmin`]:
///
/// * **incremental simplex** — one [`IncrementalLp`] tableau is built
///   (and made feasible) once; each objective stage re-optimizes from
///   the previous optimal basis, and pinning an optimum appends a single
///   equality row and re-pivots only on it. When a stage's LP vertex is
///   integral it *is* the stage's integer optimum and no branch and
///   bound runs at all ([`IlpStats::lp_stages`] counts these);
/// * **stage seeding** — when a stage does need branch and bound (a
///   fractional vertex), the previous stage's optimum seeds it as the
///   initial incumbent;
/// * **cross-call seeding** — a caller solving a sequence of related
///   systems (the iterative scheduler, one dimension after another) can
///   pass the previous solve's point as `warm`; it seeds the first
///   branch-and-bound fallback whenever it is still feasible.
///
/// Solver effort is accumulated into `stats`, which lets callers report
/// warm-vs-cold work.
pub fn ilp_lexmin_warm(
    cs: &ConstraintSystem,
    objectives: &[Vec<i64>],
    warm: Option<&[i64]>,
    stats: &mut IlpStats,
) -> Option<Vec<i64>> {
    lexmin_warm_impl(cs, objectives, warm, stats, false)
}

/// [`ilp_lexmin_warm`] with a **canonical-optimum tie-break**: after the
/// objective cascade, the coordinates themselves are lexicographically
/// minimized (in variable order), so among all points optimal for the
/// cascade the *lexicographically smallest coefficient vector* is
/// returned.
///
/// This makes the answer a pure function of `(cs, objectives)` —
/// independent of the warm seed, of the shared tableau's pivot history,
/// and of any branch-and-bound exploration order. That basis
/// independence is what lets callers share warm seeds across
/// concurrently solved siblings without giving up bit-determinism (see
/// `polytops_core::scenario`): a seed can only *accelerate* the solve,
/// never steer its result. A stage truncated by the node budget is
/// deterministically re-run unseeded so even pathological systems cannot
/// leak the seed into the answer.
pub fn ilp_lexmin_canonical(
    cs: &ConstraintSystem,
    objectives: &[Vec<i64>],
    warm: Option<&[i64]>,
    stats: &mut IlpStats,
) -> Option<Vec<i64>> {
    lexmin_warm_impl(cs, objectives, warm, stats, true)
}

fn lexmin_warm_impl(
    cs: &ConstraintSystem,
    objectives: &[Vec<i64>],
    warm: Option<&[i64]>,
    stats: &mut IlpStats,
    canonical: bool,
) -> Option<Vec<i64>> {
    let n = cs.num_vars();
    // Normalize once (gcd tightening, dedup, subsumption) — the same
    // reduction every branch-and-bound root performs — so the shared
    // tableau is built from the small system, not the raw one.
    let mut cur = cs.clone();
    if !cur.normalize() {
        return None;
    }
    let mut lp = IncrementalLp::new(&cur);
    if !lp.is_feasible() {
        return None; // LP-infeasible ⇒ ILP-infeasible
    }
    let mut lp_alive = true;
    let mut hint: Option<Vec<i64>> = warm
        .filter(|p| p.len() == n && cs.contains_point(p))
        .map(<[i64]>::to_vec);
    let mut last_point: Option<Vec<i64>> = None;
    // The canonical tie-break is itself a lexmin cascade: unit
    // objectives over every variable in order, appended after the
    // caller's objectives.
    let canon_objs: Vec<Vec<i64>> = if canonical {
        (0..n)
            .map(|j| {
                let mut e = vec![0i64; n];
                e[j] = 1;
                e
            })
            .collect()
    } else {
        Vec::new()
    };
    for obj in objectives.iter().chain(&canon_objs) {
        assert_eq!(obj.len(), n, "objective length mismatch");
        // Stage attempt 1: pure LP re-optimization. An integral optimal
        // vertex of the relaxation is the integer optimum of the stage;
        // a fractional one still proves a lower bound for attempt 2.
        let mut stage_point: Option<(i64, Vec<i64>)> = None;
        let mut stage_lb: Option<i64> = None;
        let mut stage_root: Option<(Rat, Vec<Rat>)> = None;
        if lp_alive {
            match lp.minimize(obj) {
                LpOutcome::Optimal { value, point } => {
                    // Checked narrowing throughout: a vertex with an
                    // i64-overflowing coordinate falls back to branch
                    // and bound instead of silently truncating.
                    let ivalue = value.to_integer().and_then(|v| i64::try_from(v).ok());
                    let ipoint: Option<Vec<i64>> = point
                        .iter()
                        .map(|v| v.to_integer().and_then(|c| i64::try_from(c).ok()))
                        .collect();
                    match (ipoint, ivalue) {
                        (Some(ipoint), Some(value)) => {
                            stats.lp_stages += 1;
                            stage_point = Some((value, ipoint));
                        }
                        _ => {
                            // Fractional (or overflowing) vertex: branch
                            // and bound must run, but the relaxation is
                            // already solved — reuse it as the root and
                            // as a lower bound.
                            stage_lb = i64::try_from(value.ceil()).ok();
                            stage_root = Some((value, point));
                        }
                    }
                }
                LpOutcome::Unbounded => return None,
                // Infeasibility cannot appear after a successful pin;
                // fall through to branch and bound defensively.
                LpOutcome::Infeasible => {}
            }
        }
        // Stage attempt 2: branch and bound on the mirrored system,
        // seeded with the previous stage's optimum, rooted at the
        // already-solved relaxation, and stopped early at the LP-proven
        // lower bound.
        let (value, point) = match stage_point {
            Some(vp) => vp,
            None => {
                match ilp_minimize_impl(
                    &cur,
                    obj,
                    hint.as_deref(),
                    stage_lb,
                    stage_root.clone(),
                    stats,
                ) {
                    IlpOutcome::Optimal { value, point } => (value, point),
                    IlpOutcome::NodeLimit {
                        best: Some((value, point)),
                    } => {
                        if canonical && hint.is_some() {
                            // A truncated stage reports its best
                            // incumbent, which the seed may have steered.
                            // Canonical mode re-runs the stage unseeded:
                            // the deterministic exploration order makes
                            // the (still best-effort) answer a function
                            // of the system alone.
                            match ilp_minimize_impl(&cur, obj, None, stage_lb, stage_root, stats) {
                                IlpOutcome::Optimal { value, point }
                                | IlpOutcome::NodeLimit {
                                    best: Some((value, point)),
                                } => (value, point),
                                _ => return None,
                            }
                        } else {
                            (value, point)
                        }
                    }
                    _ => return None,
                }
            }
        };
        // Pin the stage optimum. A pin is cheap now — dual-simplex
        // pivots on the existing basis, no artificial, no phase-1 pass —
        // so the tableau stays alive across fractional stages too: the
        // next stage still gets an LP lower bound and a solved root
        // relaxation even when this one had to branch.
        let mut row = obj.clone();
        row.push(-value);
        if lp_alive {
            lp_alive = lp.pin_eq(&row);
        }
        cur.add_eq(row);
        // In canonical mode, keep a warm point that also attains this
        // stage's optimum (it is still feasible after the pin): a
        // sibling's exact canonical answer then short-circuits every
        // remaining branch-and-bound stage at zero nodes. The answer is
        // seed-independent either way; retention only skips work. The
        // plain warm path keeps its historical fall-forward seeding so
        // its (deterministic, history-dependent) answers do not shift.
        let keep_hint = canonical && hint.as_ref().is_some_and(|h| cur.contains_point(h));
        if !keep_hint {
            hint = Some(point.clone());
        }
        last_point = Some(point);
    }
    stats.dual_pivots += lp.dual_pivots();
    stats.phase1_passes += lp.phase1_passes();
    match last_point {
        Some(p) => Some(p),
        None => hint.or_else(|| ilp_feasible_point(&cur)),
    }
}

/// The cold lexicographic loop shared by [`ilp_lexmin`] and
/// [`ilp_lexmin_stats`]: one full branch-and-bound run per objective, no
/// seeding, no shared basis.
fn lexmin_cold(
    cs: &ConstraintSystem,
    objectives: &[Vec<i64>],
    stats: &mut IlpStats,
) -> Option<Vec<i64>> {
    let n = cs.num_vars();
    let mut cur = cs.clone();
    let mut last_point: Option<Vec<i64>> = None;
    for obj in objectives {
        assert_eq!(obj.len(), n, "objective length mismatch");
        match ilp_minimize_seeded(&cur, obj, None, stats) {
            IlpOutcome::Optimal { value, point }
            | IlpOutcome::NodeLimit {
                best: Some((value, point)),
            } => {
                // Pin the objective at its optimum (best-effort for a
                // truncated run: the incumbent is still a legal point).
                let mut row = obj.clone();
                row.push(-value);
                cur.add_eq(row);
                last_point = Some(point);
            }
            _ => return None,
        }
    }
    match last_point {
        Some(p) => Some(p),
        None => ilp_feasible_point(&cur),
    }
}

/// Conservatively decides whether `row` (an inequality `a·x + c >= 0`) is
/// implied by `cs` over the rationals. Used for pruning redundant guards
/// during code generation; a `false` answer merely keeps a guard.
pub fn ineq_implied(cs: &ConstraintSystem, row: &[i64]) -> bool {
    assert_eq!(row.len(), cs.num_vars() + 1, "row length mismatch");
    let n = cs.num_vars();
    match lp_minimize(cs, &row[..n]) {
        LpOutcome::Optimal { value, .. } => value + Rat::from(row[n]) >= Rat::ZERO,
        LpOutcome::Infeasible => true, // empty set implies everything
        LpOutcome::Unbounded => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_rounding_up() {
        // 3x >= 7 -> x >= 3 (integer).
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![3, -7]);
        match ilp_minimize(&cs, &[1]) {
            IlpOutcome::Optimal { value, .. } => assert_eq!(value, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_gap() {
        // 2 < 2x < 4 has the single integer... x in (1,2): empty.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![2, -3]); // 2x >= 3
        cs.add_ineq(vec![-2, 3]); // 2x <= 3
        assert_eq!(ilp_minimize(&cs, &[1]), IlpOutcome::Infeasible);
        assert!(!ilp_feasible(&cs));
    }

    #[test]
    fn feasible_point_on_diagonal() {
        // x == y, 5 <= x <= 6.
        let mut cs = ConstraintSystem::new(2);
        cs.add_eq(vec![1, -1, 0]);
        cs.add_ineq(vec![1, 0, -5]);
        cs.add_ineq(vec![-1, 0, 6]);
        let p = ilp_feasible_point(&cs).unwrap();
        assert_eq!(p[0], p[1]);
        assert!((5..=6).contains(&p[0]));
    }

    #[test]
    fn branching_two_dims() {
        // minimize x + y with 2x + 3y >= 7, x, y >= 0 (integers).
        // LP optimum fractional; integer optimum value 3 (e.g. x=2,y=1).
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![2, 3, -7]);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![0, 1, 0]);
        match ilp_minimize(&cs, &[1, 1]) {
            IlpOutcome::Optimal { value, point } => {
                assert_eq!(value, 3);
                assert!(2 * point[0] + 3 * point[1] >= 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lexmin_prefers_earlier_objectives() {
        // Box [0,2]^2 with x + y >= 2; lexmin (x, y) = (0, 2), not (1, 1).
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 2]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![0, -1, 2]);
        cs.add_ineq(vec![1, 1, -2]);
        let p = ilp_lexmin(&cs, &[vec![1, 0], vec![0, 1]]).unwrap();
        assert_eq!(p, vec![0, 2]);
    }

    #[test]
    fn lexmin_composite_objective() {
        // Minimize x + y first, then x: picks (0, 1) among {(0,1),(1,0)}.
        let mut cs = ConstraintSystem::new(2);
        for r in [vec![1, 0, 0], vec![-1, 0, 5], vec![0, 1, 0], vec![0, -1, 5]] {
            cs.add_ineq(r);
        }
        cs.add_ineq(vec![1, 1, -1]); // x + y >= 1
        let p = ilp_lexmin(&cs, &[vec![1, 1], vec![1, 0]]).unwrap();
        assert_eq!(p, vec![0, 1]);
    }

    #[test]
    fn lexmin_infeasible_is_none() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -5]);
        cs.add_ineq(vec![-1, 2]);
        assert_eq!(ilp_lexmin(&cs, &[vec![1]]), None);
    }

    #[test]
    fn seeded_incumbent_prunes_and_matches_cold_result() {
        // minimize x + y with 2x + 3y >= 7, x, y >= 0: optimum 3.
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![2, 3, -7]);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![0, 1, 0]);
        let mut cold = IlpStats::default();
        let mut warm = IlpStats::default();
        let c = ilp_minimize_seeded(&cs, &[1, 1], None, &mut cold);
        // Seed with the known optimum (2, 1).
        let w = ilp_minimize_seeded(&cs, &[1, 1], Some(&[2, 1]), &mut warm);
        let value = |o: &IlpOutcome| match o {
            IlpOutcome::Optimal { value, .. } => *value,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(value(&c), value(&w));
        assert_eq!(warm.seeds_accepted, 1);
        assert!(
            warm.nodes <= cold.nodes,
            "warm {} vs cold {}",
            warm.nodes,
            cold.nodes
        );
    }

    #[test]
    fn infeasible_seed_is_ignored() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -3]); // x >= 3
        let mut stats = IlpStats::default();
        let out = ilp_minimize_seeded(&cs, &[1], Some(&[0]), &mut stats);
        assert_eq!(stats.seeds_accepted, 0);
        match out {
            IlpOutcome::Optimal { value, .. } => assert_eq!(value, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn feasible_seed_under_zero_objective_short_circuits() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -3]);
        let mut stats = IlpStats::default();
        let out = ilp_minimize_seeded(&cs, &[0], Some(&[5]), &mut stats);
        assert_eq!(stats.seed_shortcuts, 1);
        assert_eq!(stats.nodes, 0);
        assert_eq!(
            out,
            IlpOutcome::Optimal {
                value: 0,
                point: vec![5]
            }
        );
    }

    #[test]
    fn lexmin_warm_agrees_with_cold() {
        // Box [0,2]^2 with x + y >= 2; lexmin (x, y) = (0, 2).
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 2]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![0, -1, 2]);
        cs.add_ineq(vec![1, 1, -2]);
        let objectives = [vec![1, 0], vec![0, 1]];
        let mut cold = IlpStats::default();
        let p_cold = ilp_lexmin_warm(&cs, &objectives, None, &mut cold).unwrap();
        let mut warm = IlpStats::default();
        let p_warm = ilp_lexmin_warm(&cs, &objectives, Some(&[1, 1]), &mut warm).unwrap();
        assert_eq!(p_cold, vec![0, 2]);
        assert_eq!(p_warm, p_cold);
        assert!(warm.nodes <= cold.nodes);
    }

    #[test]
    fn fractional_root_vertices_are_counted_per_stage() {
        // maximize x + y s.t. 4x + y <= 4, x + 4y <= 4, x, y >= 0: the
        // LP optimum (4/5, 4/5) is fractional (and gcd tightening cannot
        // fix coprime rows), so the single stage must branch and count.
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![-4, -1, 4]);
        cs.add_ineq(vec![-1, -4, 4]);
        let mut stats = IlpStats::default();
        let p = ilp_lexmin_warm(&cs, &[vec![-1, -1]], None, &mut stats).unwrap();
        assert_eq!(p[0] + p[1], 1, "integer optimum of x + y is 1: {p:?}");
        assert_eq!(stats.fractional_stages, 1, "{stats:?}");

        // An integral relaxation resolves on the LP path and counts none.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -3]);
        cs.add_ineq(vec![-1, 5]);
        let mut stats = IlpStats::default();
        let p = ilp_lexmin_warm(&cs, &[vec![1]], None, &mut stats).unwrap();
        assert_eq!(p, vec![3]);
        assert_eq!(stats.fractional_stages, 0, "{stats:?}");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = IlpStats {
            nodes: 1,
            lp_stages: 4,
            fractional_stages: 5,
            seeds_accepted: 2,
            seed_shortcuts: 3,
            dual_pivots: 6,
            phase1_passes: 7,
        };
        a.absorb(&IlpStats {
            nodes: 10,
            lp_stages: 40,
            fractional_stages: 50,
            seeds_accepted: 20,
            seed_shortcuts: 30,
            dual_pivots: 60,
            phase1_passes: 70,
        });
        assert_eq!(a.nodes, 11);
        assert_eq!(a.lp_stages, 44);
        assert_eq!(a.fractional_stages, 55);
        assert_eq!(a.seeds_accepted, 22);
        assert_eq!(a.seed_shortcuts, 33);
        assert_eq!(a.dual_pivots, 66);
        assert_eq!(a.phase1_passes, 77);
    }

    #[test]
    fn pins_never_fall_back_to_phase1() {
        // A cascade whose middle stage is fractional: the tableau stays
        // alive across it (dual-simplex pin of the integer optimum) and
        // the final stage resolves on the LP path again.
        let mut cs = ConstraintSystem::new(3);
        cs.add_ineq(vec![1, 0, 0, 0]);
        cs.add_ineq(vec![0, 1, 0, 0]);
        cs.add_ineq(vec![0, 0, 1, 0]);
        cs.add_ineq(vec![0, 0, -1, 3]);
        cs.add_ineq(vec![-4, -1, 0, 4]); // 4x + y <= 4
        cs.add_ineq(vec![-1, -4, 0, 4]); // x + 4y <= 4
        let objectives = [vec![-1, -1, 0], vec![0, 0, 1]];
        let mut stats = IlpStats::default();
        let p = ilp_lexmin_warm(&cs, &objectives, None, &mut stats).unwrap();
        assert_eq!(p[0] + p[1], 1, "integer max of x + y is 1: {p:?}");
        assert_eq!(p[2], 0);
        assert_eq!(stats.fractional_stages, 1, "{stats:?}");
        assert_eq!(stats.phase1_passes, 0, "{stats:?}");
        assert!(stats.dual_pivots >= 1, "{stats:?}");
        assert!(
            stats.lp_stages >= 1,
            "the post-fractional stage must resolve on the LP path: {stats:?}"
        );
    }

    #[test]
    fn canonical_lexmin_is_seed_independent() {
        // After minimizing x + y over the box-bounded half-plane
        // x + y >= 2, many optima remain; the canonical tie-break must
        // pick the lexicographically smallest one no matter the seed.
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 4]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![0, -1, 4]);
        cs.add_ineq(vec![1, 1, -2]);
        let objectives = [vec![1, 1]];
        let mut stats = IlpStats::default();
        let unseeded = ilp_lexmin_canonical(&cs, &objectives, None, &mut stats).unwrap();
        assert_eq!(unseeded, vec![0, 2], "lexicographically smallest optimum");
        for seed in [[2, 0], [1, 1], [0, 2], [4, 4]] {
            let mut stats = IlpStats::default();
            let seeded = ilp_lexmin_canonical(&cs, &objectives, Some(&seed), &mut stats).unwrap();
            assert_eq!(seeded, unseeded, "seed {seed:?} steered the result");
        }
    }

    #[test]
    fn canonical_agrees_with_warm_when_the_optimum_is_unique() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 2]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![0, -1, 2]);
        cs.add_ineq(vec![1, 1, -2]);
        let objectives = [vec![1, 0], vec![0, 1]];
        let mut s1 = IlpStats::default();
        let mut s2 = IlpStats::default();
        let warm = ilp_lexmin_warm(&cs, &objectives, None, &mut s1).unwrap();
        let canon = ilp_lexmin_canonical(&cs, &objectives, None, &mut s2).unwrap();
        assert_eq!(warm, canon);
        assert_eq!(warm, vec![0, 2]);
    }

    #[test]
    fn implied_inequality() {
        // x >= 3 implies x >= 1 but not x >= 4.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -3]);
        cs.add_ineq(vec![-1, 10]);
        assert!(ineq_implied(&cs, &[1, -1]));
        assert!(!ineq_implied(&cs, &[1, -4]));
    }

    #[test]
    fn equality_only_integer_check() {
        // 2x == 3 has a rational but no integer solution.
        let mut cs = ConstraintSystem::new(1);
        cs.add_eq(vec![2, -3]);
        assert!(!ilp_feasible(&cs));
    }
}
