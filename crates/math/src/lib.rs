//! Exact mathematical foundations for the PolyTOPS polyhedral scheduler.
//!
//! This crate provides everything the scheduler stack needs and nothing
//! more, implemented from scratch with **exact** arithmetic:
//!
//! * [`Rat`] — rational numbers over `i128`;
//! * [`IntMatrix`] / [`RatMatrix`] — dense matrices with rank, inversion,
//!   Hermite normal form and the Pluto-style
//!   [`orthogonal_complement`] used by the progression constraint;
//! * [`ConstraintSystem`] — affine equality/inequality systems with exact
//!   Fourier–Motzkin elimination (integer-tightening and rational
//!   variants);
//! * [`lp_minimize`] — exact two-phase rational simplex;
//! * [`ilp_minimize`] / [`ilp_lexmin`] / [`ilp_feasible`] — branch-and-
//!   bound ILP with the lexicographic minimization that drives schedule
//!   coefficient selection;
//! * [`farkas_nonneg`] — the affine form of Farkas' lemma, which turns
//!   "this affine form is non-negative on that dependence polyhedron"
//!   into linear constraints over schedule coefficients.
//!
//! # Example: a miniature scheduling legality check
//!
//! ```
//! use polytops_math::{farkas_nonneg, ilp_lexmin, ConstraintSystem};
//!
//! // Dependence polyhedron for S(i) -> R(i), 0 <= i <= 9 (same i).
//! let mut dep = ConstraintSystem::new(2); // (i_S, i_R)
//! dep.add_eq(vec![1, -1, 0]);
//! dep.add_ineq(vec![1, 0, 0]);
//! dep.add_ineq(vec![-1, 0, 9]);
//!
//! // Schedule coefficients y = (t_S, t_R): require t_R*i_R - t_S*i_S >= 0.
//! let template = vec![
//!     vec![-1, 0, 0], // coeff of i_S: -t_S
//!     vec![0, 1, 0],  // coeff of i_R:  t_R
//!     vec![0, 0, 0],  // constant: 0
//! ];
//! let mut legal = farkas_nonneg(&dep, &template, 2).unwrap();
//! // Bound the coefficients and ask for the lexicographically smallest
//! // non-trivial solution.
//! legal.add_ineq(vec![1, 0, 0]);  // t_S >= 0
//! legal.add_ineq(vec![0, 1, 0]);  // t_R >= 0
//! legal.add_ineq(vec![1, 1, -1]); // t_S + t_R >= 1
//! let sol = ilp_lexmin(&legal, &[vec![1, 1], vec![1, 0]]).unwrap();
//! assert_eq!(sol, vec![0, 1]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod consys;
mod error;
mod farkas;
mod ilp;
mod matrix;
mod num;
mod rat;
mod simplex;

pub use consys::{ConstraintSystem, RowKind};
pub use error::{MathError, Result};
pub use farkas::farkas_nonneg;
pub use ilp::{
    ilp_feasible, ilp_feasible_point, ilp_lexmin, ilp_lexmin_canonical, ilp_lexmin_stats,
    ilp_lexmin_warm, ilp_minimize, ilp_minimize_seeded, ineq_implied, IlpOutcome, IlpStats,
};
pub use matrix::{orthogonal_complement, primitive, IntMatrix, RatMatrix};
pub use num::{ceil_div, floor_div, gcd, gcd_slice, lcm, modulo, narrow};
pub use rat::Rat;
pub use simplex::{lp_feasible, lp_minimize, IncrementalLp, LpOutcome};
