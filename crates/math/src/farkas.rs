//! Affine form of Farkas' lemma.
//!
//! The central linearization step of polyhedral scheduling: an affine form
//! `e(z)` is non-negative everywhere on a (non-empty) polyhedron
//! `P = { z | c_k(z) ≥ 0, d_l(z) = 0 }` **iff** it can be written
//!
//! ```text
//! e(z) ≡ λ₀ + Σ_k λ_k · c_k(z) + Σ_l μ_l · d_l(z),   λ ≥ 0, μ free.
//! ```
//!
//! Matching coefficients of `z` turns the quantified condition
//! `∀z ∈ P: e(z) ≥ 0` into an *existential* linear system over the
//! multipliers, which [`farkas_nonneg`] then eliminates by (rational)
//! Fourier–Motzkin — leaving constraints purely over the unknowns of the
//! scheduling ILP (the coefficients of `e`).

use crate::consys::{ConstraintSystem, RowKind};
#[cfg(doc)]
use crate::error::MathError;
use crate::error::Result;

/// Linearizes `∀z ∈ poly: e(z) ≥ 0` into constraints over ILP variables.
///
/// * `poly` — the polyhedron `P` over `nz` variables (e.g. a dependence
///   polyhedron over `(it_S, it_R, N)`), assumed non-empty.
/// * `template` — `nz + 1` rows, one per `z`-variable plus one for the
///   constant term of `e`. Row `i` has `nilp + 1` entries: the coefficient
///   of `z_i` in `e` expressed as an affine combination of the `nilp` ILP
///   variables (last entry: constant).
///
/// Returns a [`ConstraintSystem`] over the `nilp` ILP variables that is
/// satisfied exactly by those ILP points for which `e(z) ≥ 0` holds on all
/// of `poly`.
///
/// # Errors
///
/// Returns [`MathError::Overflow`](crate::MathError::Overflow) when
/// Fourier–Motzkin combinations overflow `i64`.
///
/// # Panics
///
/// Panics if `template` does not have `poly.num_vars() + 1` rows of equal
/// length.
///
/// # Examples
///
/// ```
/// use polytops_math::{farkas_nonneg, ConstraintSystem};
///
/// // P = { z | 0 <= z <= 10 }, e(z) = y0*z + y1.
/// let mut p = ConstraintSystem::new(1);
/// p.add_ineq(vec![1, 0]);
/// p.add_ineq(vec![-1, 10]);
/// // template rows: coefficient of z is y0, constant of e is y1.
/// let template = vec![
///     vec![1, 0, 0], // coeff(z) = 1*y0 + 0*y1 + 0
///     vec![0, 1, 0], // const(e) = 0*y0 + 1*y1 + 0
/// ];
/// let sys = farkas_nonneg(&p, &template, 2).unwrap();
/// // e >= 0 on [0,10] iff y1 >= 0 and 10*y0 + y1 >= 0.
/// assert!(sys.contains_point(&[1, 0]));   // e = z
/// assert!(sys.contains_point(&[-1, 10])); // e = 10 - z
/// assert!(!sys.contains_point(&[-1, 5])); // e = 5 - z < 0 at z = 10
/// ```
pub fn farkas_nonneg(
    poly: &ConstraintSystem,
    template: &[Vec<i64>],
    nilp: usize,
) -> Result<ConstraintSystem> {
    let nz = poly.num_vars();
    assert_eq!(template.len(), nz + 1, "template must have nz + 1 rows");
    for row in template {
        assert_eq!(row.len(), nilp + 1, "template row length mismatch");
    }
    let m = poly.len();
    // Variable space: [ y (nilp) | λ0 | λ_1..λ_m ], plus constant column.
    let nv = nilp + 1 + m;
    let mut sys = ConstraintSystem::new(nv);

    // Coefficient-matching equalities, one per z variable:
    //   e_coeff_i(y) - Σ_k λ_k A[k][i] = 0
    for zi in 0..nz {
        let mut row = vec![0i64; nv + 1];
        row[..nilp].copy_from_slice(&template[zi][..nilp]);
        row[nv] = template[zi][nilp];
        for (k, (_, prow)) in poly.rows().iter().enumerate() {
            row[nilp + 1 + k] = -prow[zi];
        }
        sys.add_eq(row);
    }
    // Constant matching: e_const(y) - λ0 - Σ_k λ_k b_k = 0.
    {
        let mut row = vec![0i64; nv + 1];
        row[..nilp].copy_from_slice(&template[nz][..nilp]);
        row[nv] = template[nz][nilp];
        row[nilp] = -1; // λ0
        for (k, (_, prow)) in poly.rows().iter().enumerate() {
            row[nilp + 1 + k] = -prow[nz];
        }
        sys.add_eq(row);
    }
    // λ0 >= 0 and λ_k >= 0 for inequality rows (free for equalities).
    {
        let mut row = vec![0i64; nv + 1];
        row[nilp] = 1;
        sys.add_ineq(row);
    }
    for (k, (kind, _)) in poly.rows().iter().enumerate() {
        if *kind == RowKind::Ineq {
            let mut row = vec![0i64; nv + 1];
            row[nilp + 1 + k] = 1;
            sys.add_ineq(row);
        }
    }
    // Eliminate the multipliers (rational semantics: λ, μ are rational).
    let mut out = sys.eliminate_last_vars_rational(m + 1)?;
    out.normalize_rational();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// e(z0, z1) = y0*z0 + y1*z1 + y2 over the triangle
    /// { z0 >= 0, z1 >= 0, z0 + z1 <= 4 }.
    fn triangle_system() -> ConstraintSystem {
        let mut p = ConstraintSystem::new(2);
        p.add_ineq(vec![1, 0, 0]);
        p.add_ineq(vec![0, 1, 0]);
        p.add_ineq(vec![-1, -1, 4]);
        let template = vec![
            vec![1, 0, 0, 0], // coeff z0 = y0
            vec![0, 1, 0, 0], // coeff z1 = y1
            vec![0, 0, 1, 0], // const   = y2
        ];
        farkas_nonneg(&p, &template, 3).unwrap()
    }

    /// Brute-force ground truth: e >= 0 at the triangle's vertices
    /// (equivalent to e >= 0 on the whole triangle, by convexity).
    fn nonneg_on_triangle(y: &[i64; 3]) -> bool {
        let vertices = [(0i64, 0i64), (4, 0), (0, 4)];
        vertices
            .iter()
            .all(|&(z0, z1)| y[0] * z0 + y[1] * z1 + y[2] >= 0)
    }

    #[test]
    fn matches_vertex_characterization() {
        let sys = triangle_system();
        for y0 in -2..=2 {
            for y1 in -2..=2 {
                for y2 in -2..=10 {
                    let y = [y0, y1, y2];
                    assert_eq!(
                        sys.contains_point(&y),
                        nonneg_on_triangle(&y),
                        "mismatch at {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn equality_rows_get_free_multipliers() {
        // P = { z | z == 3 }; e(z) = y0*z + y1 >= 0 iff 3*y0 + y1 >= 0.
        let mut p = ConstraintSystem::new(1);
        p.add_eq(vec![1, -3]);
        let template = vec![vec![1, 0, 0], vec![0, 1, 0]];
        let sys = farkas_nonneg(&p, &template, 2).unwrap();
        assert!(sys.contains_point(&[-1, 3])); // e = 3 - z = 0 on P
        assert!(sys.contains_point(&[1, -3])); // e = z - 3 = 0 on P
        assert!(sys.contains_point(&[2, -6]));
        assert!(!sys.contains_point(&[1, -4])); // e = -1 on P
    }

    #[test]
    fn constant_template_entries() {
        // e(z) = z - 1 with no ILP vars at all: nonneg on {z >= 2}? yes.
        let mut p = ConstraintSystem::new(1);
        p.add_ineq(vec![1, -2]);
        let template = vec![vec![1], vec![-1]]; // nilp = 0
        let sys = farkas_nonneg(&p, &template, 0).unwrap();
        assert!(sys.contains_point(&[]));
        // e(z) = -z nonneg on {z >= 2}? no.
        let template = vec![vec![-1], vec![0]];
        let sys = farkas_nonneg(&p, &template, 0).unwrap();
        assert!(!sys.contains_point(&[]));
    }
}
