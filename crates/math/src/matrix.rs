//! Dense integer and rational matrices with the exact linear algebra the
//! scheduler needs: multiplication, rank, inversion, Hermite normal form
//! and Pluto-style orthogonal complements.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::{MathError, Result};
use crate::num::{gcd, gcd_slice, narrow};
use crate::rat::Rat;

/// A dense matrix of `i64` entries.
///
/// # Examples
///
/// ```
/// use polytops_math::IntMatrix;
///
/// let m = IntMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
/// assert_eq!(m[(1, 0)], 3);
/// assert_eq!(m.transpose()[(0, 1)], 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> IntMatrix {
        IntMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> IntMatrix {
        let mut m = IntMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<i64>]) -> IntMatrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        IntMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [i64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty).
    pub fn push_row(&mut self, row: Vec<i64>) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(&row);
        self.rows += 1;
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[i64]> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> IntMatrix {
        let mut t = IntMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when inner dimensions
    /// disagree and [`MathError::Overflow`] when an entry overflows `i64`.
    pub fn mul(&self, rhs: &IntMatrix) -> Result<IntMatrix> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                expected: self.cols,
                found: rhs.rows,
            });
        }
        let mut out = IntMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc: i128 = 0;
                for k in 0..self.cols {
                    acc += i128::from(self[(r, k)]) * i128::from(rhs[(k, c)]);
                }
                out[(r, c)] = narrow(acc)?;
            }
        }
        Ok(out)
    }

    /// Applies the matrix to a vector: `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] or [`MathError::Overflow`].
    pub fn mul_vec(&self, v: &[i64]) -> Result<Vec<i64>> {
        if self.cols != v.len() {
            return Err(MathError::DimensionMismatch {
                expected: self.cols,
                found: v.len(),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut acc: i128 = 0;
            for k in 0..self.cols {
                acc += i128::from(self[(r, k)]) * i128::from(v[k]);
            }
            out.push(narrow(acc)?);
        }
        Ok(out)
    }

    /// Rank of the matrix (exact, over the rationals).
    pub fn rank(&self) -> usize {
        RatMatrix::from(self).rank()
    }

    /// Converts to a rational matrix.
    pub fn to_rat(&self) -> RatMatrix {
        RatMatrix::from(self)
    }

    /// Column-style Hermite normal form.
    ///
    /// Returns `(h, u)` with `self * u == h`, `u` unimodular and `h` lower
    /// triangular with non-negative entries below each positive pivot.
    /// Useful for lattice/stride analysis of schedule transformations.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Overflow`] if intermediate values overflow.
    pub fn hermite_normal_form(&self) -> Result<(IntMatrix, IntMatrix)> {
        let mut h = self.clone();
        let mut u = IntMatrix::identity(self.cols);
        let (rows, cols) = (self.rows, self.cols);
        let mut pivot_col = 0usize;
        for r in 0..rows {
            if pivot_col >= cols {
                break;
            }
            // Reduce columns pivot_col.. so that row r has a single nonzero
            // leading entry at pivot_col (Euclidean column reduction).
            loop {
                // Find column with smallest nonzero |entry| in row r.
                let mut best: Option<usize> = None;
                for c in pivot_col..cols {
                    if h[(r, c)] != 0 {
                        match best {
                            None => best = Some(c),
                            Some(b) if h[(r, c)].abs() < h[(r, b)].abs() => best = Some(c),
                            _ => {}
                        }
                    }
                }
                let Some(b) = best else { break };
                h.swap_cols(pivot_col, b);
                u.swap_cols(pivot_col, b);
                if h[(r, pivot_col)] < 0 {
                    h.negate_col(pivot_col);
                    u.negate_col(pivot_col);
                }
                let p = h[(r, pivot_col)];
                let mut done = true;
                for c in pivot_col + 1..cols {
                    let q = crate::num::floor_div(h[(r, c)], p);
                    if q != 0 {
                        h.add_col_multiple(c, pivot_col, -q)?;
                        u.add_col_multiple(c, pivot_col, -q)?;
                    }
                    if h[(r, c)] != 0 {
                        done = false;
                    }
                }
                if done {
                    break;
                }
            }
            if h[(r, pivot_col)] != 0 {
                // Reduce entries to the left of the pivot modulo the pivot.
                let p = h[(r, pivot_col)];
                for c in 0..pivot_col {
                    let q = crate::num::floor_div(h[(r, c)], p);
                    if q != 0 {
                        h.add_col_multiple(c, pivot_col, -q)?;
                        u.add_col_multiple(c, pivot_col, -q)?;
                    }
                }
                pivot_col += 1;
            }
        }
        Ok((h, u))
    }

    fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }

    fn negate_col(&mut self, c: usize) {
        for r in 0..self.rows {
            self[(r, c)] = -self[(r, c)];
        }
    }

    /// `col[dst] += k * col[src]`.
    fn add_col_multiple(&mut self, dst: usize, src: usize, k: i64) -> Result<()> {
        for r in 0..self.rows {
            let v = i128::from(self[(r, dst)]) + i128::from(k) * i128::from(self[(r, src)]);
            self[(r, dst)] = narrow(v)?;
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for IntMatrix {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for IntMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for IntMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IntMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

/// A dense matrix of exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl RatMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> RatMatrix {
        RatMatrix {
            rows,
            cols,
            data: vec![Rat::ZERO; rows * cols],
        }
    }

    /// Creates the identity.
    pub fn identity(n: usize) -> RatMatrix {
        let mut m = RatMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rat::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when shapes disagree.
    pub fn mul(&self, rhs: &RatMatrix) -> Result<RatMatrix> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                expected: self.cols,
                found: rhs.rows,
            });
        }
        let mut out = RatMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc = Rat::ZERO;
                for k in 0..self.cols {
                    acc += self[(r, k)] * rhs[(k, c)];
                }
                out[(r, c)] = acc;
            }
        }
        Ok(out)
    }

    /// Rank via Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            // Find pivot in rows rank..
            let Some(p) = (rank..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(p, rank);
            let pivot = m[(rank, col)];
            for r in 0..m.rows {
                if r != rank && !m[(r, col)].is_zero() {
                    let f = m[(r, col)] / pivot;
                    for c in col..m.cols {
                        let sub = f * m[(rank, c)];
                        m[(r, c)] -= sub;
                    }
                }
            }
            rank += 1;
            if rank == m.rows {
                break;
            }
        }
        rank
    }

    /// Exact inverse.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::SingularMatrix`] for singular or non-square
    /// input.
    pub fn inverse(&self) -> Result<RatMatrix> {
        if self.rows != self.cols {
            return Err(MathError::SingularMatrix);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = RatMatrix::identity(n);
        for col in 0..n {
            let Some(p) = (col..n).find(|&r| !a[(r, col)].is_zero()) else {
                return Err(MathError::SingularMatrix);
            };
            a.swap_rows(p, col);
            inv.swap_rows(p, col);
            let pivot = a[(col, col)];
            for c in 0..n {
                a[(col, c)] = a[(col, c)] / pivot;
                inv[(col, c)] = inv[(col, c)] / pivot;
            }
            for r in 0..n {
                if r != col && !a[(r, col)].is_zero() {
                    let f = a[(r, col)];
                    for c in 0..n {
                        let sa = f * a[(col, c)];
                        a[(r, c)] -= sa;
                        let si = f * inv[(col, c)];
                        inv[(r, c)] -= si;
                    }
                }
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Scales every row to a primitive integer vector (clearing
    /// denominators and dividing by the gcd), dropping all-zero rows.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Overflow`] when the cleared row overflows.
    pub fn to_primitive_int_rows(&self) -> Result<IntMatrix> {
        let mut out = IntMatrix::zeros(0, self.cols);
        for r in 0..self.rows {
            let mut denlcm: i128 = 1;
            for c in 0..self.cols {
                denlcm = crate::num::lcm(denlcm, self[(r, c)].denom());
            }
            let mut row: Vec<i128> = Vec::with_capacity(self.cols);
            for c in 0..self.cols {
                let v = self[(r, c)];
                row.push(v.numer() * (denlcm / v.denom()));
            }
            let mut g: i128 = 0;
            for &v in &row {
                g = gcd(g, v);
            }
            if g == 0 {
                continue; // all-zero row
            }
            let ints: Result<Vec<i64>> = row.iter().map(|&v| narrow(v / g)).collect();
            out.push_row(ints?);
        }
        Ok(out)
    }
}

impl From<&IntMatrix> for RatMatrix {
    fn from(m: &IntMatrix) -> RatMatrix {
        let mut out = RatMatrix::zeros(m.rows(), m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                out[(r, c)] = Rat::from(m[(r, c)]);
            }
        }
        out
    }
}

impl Index<(usize, usize)> for RatMatrix {
    type Output = Rat;
    fn index(&self, (r, c): (usize, usize)) -> &Rat {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for RatMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Rat {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            let row: Vec<String> = (0..self.cols).map(|c| self[(r, c)].to_string()).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        write!(f, "]")
    }
}

/// Pluto-style orthogonal complement of the row space of `h`.
///
/// Computes `I - Hᵀ (H Hᵀ)⁻¹ H` over the rationals and returns its nonzero
/// rows scaled to primitive integer vectors. Any integer vector `v` in the
/// row space of the result satisfies `H v = 0`; together with the rows of
/// `h` the result spans the full space. When `h` has no rows the identity
/// is returned.
///
/// This is exactly the matrix `H⊥` of the paper's progression constraint
/// (Eq. 3): the next schedule row must have a nonzero component in the
/// complement of the rows already found.
///
/// # Errors
///
/// Returns an error when `h` has linearly dependent rows making `H Hᵀ`
/// singular, or on overflow.
///
/// # Examples
///
/// ```
/// use polytops_math::{orthogonal_complement, IntMatrix};
///
/// let h = IntMatrix::from_rows(&[vec![1, 0, 0]]);
/// let perp = orthogonal_complement(&h).unwrap();
/// // Every row of `perp` is orthogonal to (1, 0, 0).
/// for r in perp.iter_rows() {
///     assert_eq!(r[0], 0);
/// }
/// ```
pub fn orthogonal_complement(h: &IntMatrix) -> Result<IntMatrix> {
    let n = h.cols();
    if h.rows() == 0 {
        return Ok(IntMatrix::identity(n));
    }
    let hr = h.to_rat();
    let ht = h.transpose().to_rat();
    let hht = hr.mul(&ht)?;
    let inv = hht.inverse()?;
    let proj = ht.mul(&inv)?.mul(&hr)?;
    let mut perp = RatMatrix::identity(n);
    for r in 0..n {
        for c in 0..n {
            let s = proj[(r, c)];
            perp[(r, c)] -= s;
        }
    }
    perp.to_primitive_int_rows()
}

/// Normalizes an integer vector to primitive form (divides by the gcd of
/// its entries). Zero vectors are returned unchanged.
pub fn primitive(mut v: Vec<i64>) -> Vec<i64> {
    let g = gcd_slice(&v);
    if g > 1 {
        for x in &mut v {
            *x /= g;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity() {
        let m = IntMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        let i = IntMatrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn mul_vec_works() {
        let m = IntMatrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(m.mul_vec(&[1, 1]).unwrap(), vec![3, 7]);
    }

    #[test]
    fn rank_detects_dependence() {
        let m = IntMatrix::from_rows(&[vec![1, 2], vec![2, 4]]);
        assert_eq!(m.rank(), 1);
        let m = IntMatrix::from_rows(&[vec![1, 0], vec![0, 1]]);
        assert_eq!(m.rank(), 2);
        assert_eq!(IntMatrix::zeros(3, 3).rank(), 0);
    }

    #[test]
    fn inverse_round_trip() {
        let m = IntMatrix::from_rows(&[vec![2, 1], vec![1, 1]]);
        let inv = m.to_rat().inverse().unwrap();
        let prod = m.to_rat().mul(&inv).unwrap();
        assert_eq!(prod, RatMatrix::identity(2));
    }

    #[test]
    fn inverse_singular_fails() {
        let m = IntMatrix::from_rows(&[vec![1, 2], vec![2, 4]]);
        assert_eq!(m.to_rat().inverse().unwrap_err(), MathError::SingularMatrix);
    }

    #[test]
    fn ortho_complement_of_e1() {
        let h = IntMatrix::from_rows(&[vec![1, 0, 0]]);
        let perp = orthogonal_complement(&h).unwrap();
        // Rows span the (e2, e3) plane.
        assert_eq!(perp.rank(), 2);
        for r in perp.iter_rows() {
            assert_eq!(r[0], 0);
        }
    }

    #[test]
    fn ortho_complement_of_diagonal() {
        // H = [1 1]; complement spanned by (1, -1).
        let h = IntMatrix::from_rows(&[vec![1, 1]]);
        let perp = orthogonal_complement(&h).unwrap();
        assert_eq!(perp.rank(), 1);
        for r in perp.iter_rows() {
            assert_eq!(r[0] + r[1], 0);
        }
    }

    #[test]
    fn ortho_complement_empty_is_identity() {
        let h = IntMatrix::zeros(0, 3);
        assert_eq!(orthogonal_complement(&h).unwrap(), IntMatrix::identity(3));
    }

    #[test]
    fn hnf_of_unimodular_is_identityish() {
        let m = IntMatrix::from_rows(&[vec![1, 1], vec![0, 1]]);
        let (h, u) = m.hermite_normal_form().unwrap();
        assert_eq!(m.mul(&u).unwrap(), h);
        // Lower triangular.
        assert_eq!(h[(0, 1)], 0);
    }

    #[test]
    fn hnf_detects_stride() {
        // Schedule t = 2i: lattice has stride 2.
        let m = IntMatrix::from_rows(&[vec![2]]);
        let (h, _) = m.hermite_normal_form().unwrap();
        assert_eq!(h[(0, 0)], 2);
    }

    #[test]
    fn primitive_normalizes() {
        assert_eq!(primitive(vec![2, 4, -6]), vec![1, 2, -3]);
        assert_eq!(primitive(vec![0, 0]), vec![0, 0]);
        assert_eq!(primitive(vec![3]), vec![1]);
    }
}
