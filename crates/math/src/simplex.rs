//! Exact two-phase primal simplex over the rationals.
//!
//! Variables are unrestricted in sign (the standard-form translation
//! `x = x⁺ − x⁻` happens internally); constraints come from a
//! [`ConstraintSystem`]. The solver is exact — no floating point — so
//! feasibility and optimality answers are decisions, not approximations.

use crate::consys::{ConstraintSystem, RowKind};
use crate::rat::Rat;

/// Result of a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// No rational point satisfies the constraints.
    Infeasible,
    /// The objective decreases without bound on the feasible region.
    Unbounded,
    /// An optimal vertex was found.
    Optimal {
        /// Minimal objective value.
        value: Rat,
        /// A point attaining it (one value per original variable).
        point: Vec<Rat>,
    },
}

/// Minimizes `objective · x` over the rational points of `cs`.
///
/// The objective has one coefficient per variable of `cs` (no constant
/// term — add constants outside). Uses Dantzig pricing with an automatic
/// switch to Bland's rule to guarantee termination.
///
/// # Examples
///
/// ```
/// use polytops_math::{lp_minimize, ConstraintSystem, LpOutcome, Rat};
///
/// // minimize x subject to x >= 3
/// let mut cs = ConstraintSystem::new(1);
/// cs.add_ineq(vec![1, -3]);
/// match lp_minimize(&cs, &[1]) {
///     LpOutcome::Optimal { value, .. } => assert_eq!(value, Rat::from(3)),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub fn lp_minimize(cs: &ConstraintSystem, objective: &[i64]) -> LpOutcome {
    assert_eq!(objective.len(), cs.num_vars(), "objective length mismatch");
    Tableau::build(cs).solve(objective)
}

/// Whether `cs` admits any rational solution.
pub fn lp_feasible(cs: &ConstraintSystem) -> bool {
    let zeros = vec![0i64; cs.num_vars()];
    !matches!(lp_minimize(cs, &zeros), LpOutcome::Infeasible)
}

/// Dense simplex tableau in standard form `A z = b, z >= 0`.
///
/// Column layout: `[x⁺ (n), x⁻ (n), slacks (m_ineq), artificials (m)]`.
struct Tableau {
    n: usize,            // original variables
    ncols: usize,        // structural + slack columns (no artificials)
    nart: usize,         // artificial columns
    rows: Vec<Vec<Rat>>, // m rows of length ncols + nart, plus rhs column appended
    rhs: Vec<Rat>,
    basis: Vec<usize>, // basic column per row
    /// Dual-simplex pivots spent restoring feasibility after
    /// [`add_eq_row`](Tableau::add_eq_row) appended a row.
    dual_pivots: usize,
    /// Times the guarded artificial-based fallback ran instead (the dual
    /// pivot loop hit its cap; never expected on scheduler systems).
    phase1_passes: usize,
}

/// Sentinel basis entry for a freshly appended row before its first
/// pivot assigns a real basic column. Never read as a column index: the
/// appending code pivots (or discards the row) before returning.
const NO_BASIS: usize = usize::MAX;

impl Tableau {
    fn build(cs: &ConstraintSystem) -> Tableau {
        let n = cs.num_vars();
        let m = cs.len();
        let num_ineq = cs.iter().filter(|(k, _)| *k == RowKind::Ineq).count();
        let ncols = 2 * n + num_ineq;
        let nart = m;
        let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(m);
        let mut rhs: Vec<Rat> = Vec::with_capacity(m);
        let mut basis: Vec<usize> = Vec::with_capacity(m);
        let mut slack_idx = 0usize;
        for (ri, (kind, row)) in cs.iter().enumerate() {
            // Row semantics: a·x + c (>=|==) 0  =>  a·x (>=|==) -c.
            let mut r = vec![Rat::ZERO; ncols + nart];
            let mut b = Rat::from(-row[n]);
            let mut sign = Rat::ONE;
            if b.is_negative() {
                sign = -Rat::ONE;
                b = -b;
            }
            for j in 0..n {
                let a = sign * Rat::from(row[j]);
                r[j] = a;
                r[n + j] = -a;
            }
            if kind == RowKind::Ineq {
                // a·x - s = -c with s >= 0 (after sign normalization the
                // slack coefficient is -sign).
                r[2 * n + slack_idx] = -sign;
                slack_idx += 1;
            }
            // Artificial variable for this row.
            r[ncols + ri] = Rat::ONE;
            basis.push(ncols + ri);
            rows.push(r);
            rhs.push(b);
        }
        Tableau {
            n,
            ncols,
            nart,
            rows,
            rhs,
            basis,
            dual_pivots: 0,
            phase1_passes: 0,
        }
    }

    fn solve(mut self, objective: &[i64]) -> LpOutcome {
        if !self.phase1() {
            return LpOutcome::Infeasible;
        }
        match self.phase2(objective) {
            None => LpOutcome::Unbounded,
            Some((value, point)) => LpOutcome::Optimal { value, point },
        }
    }

    /// Phase 1: minimize the sum of artificials; `true` iff feasible
    /// (remaining artificials are driven out of the basis).
    fn phase1(&mut self) -> bool {
        let mut cost1 = vec![Rat::ZERO; self.ncols + self.nart];
        for c in cost1.iter_mut().skip(self.ncols) {
            *c = Rat::ONE;
        }
        // Phase 1 is bounded below by 0, so `optimize` cannot return None.
        let Some((z1, _)) = self.optimize(&cost1, /*restrict_arts=*/ false) else {
            return false;
        };
        if z1.is_positive() {
            return false;
        }
        self.expel_artificials();
        true
    }

    /// Phase 2: the original objective on x⁺/x⁻ columns, starting from
    /// the current (feasible) basis. `None` means unbounded.
    fn phase2(&mut self, objective: &[i64]) -> Option<(Rat, Vec<Rat>)> {
        let mut cost2 = vec![Rat::ZERO; self.ncols + self.nart];
        for j in 0..self.n {
            cost2[j] = Rat::from(objective[j]);
            cost2[self.n + j] = -Rat::from(objective[j]);
        }
        self.optimize(&cost2, /*restrict_arts=*/ true)
    }

    /// Appends the equality `row · x + c == 0` to a solved tableau and
    /// restores feasibility with **dual-simplex** pivots on the existing
    /// basis: after reducing the new row by the basic columns, the
    /// tableau is primal-infeasible by exactly that row, and dual pivots
    /// repair it without any artificial variable or phase-1 pass.
    /// Returns `false` when the pinned system becomes infeasible.
    ///
    /// The pivot rule is Bland's dual rule under the zero cost vector:
    /// every reduced cost is identically zero, so the tableau is
    /// trivially dual-feasible throughout, every entering ratio ties at
    /// zero, and smallest-index tie-breaks make the walk finite (and
    /// deterministic). A guarded artificial-based fallback remains for
    /// the pivot-cap case and is counted in `phase1_passes`.
    fn add_eq_row(&mut self, row: &[i64]) -> bool {
        let n = self.n;
        let width = self.ncols + self.nart;
        // Raw row over [x⁺, x⁻, slacks, artificials], rhs = -c.
        let mut r = vec![Rat::ZERO; width];
        let mut b = Rat::from(-row[n]);
        for j in 0..n {
            let a = Rat::from(row[j]);
            r[j] = a;
            r[n + j] = -a;
        }
        // Reduce by the current basis so basic columns keep their
        // identity structure in the new row.
        for i in 0..self.rows.len() {
            let f = r[self.basis[i]];
            if f.is_zero() {
                continue;
            }
            let pivot_rhs = self.rhs[i];
            let pivot_row = self.rows[i].clone();
            for (v, pv) in r.iter_mut().zip(&pivot_row) {
                if !pv.is_zero() {
                    let s = f * *pv;
                    *v -= s;
                }
            }
            b -= f * pivot_rhs;
        }
        // Dual-simplex sign convention: the appended row enters with a
        // non-positive residual so it reads as the one infeasible row.
        if b.is_positive() {
            for v in &mut r {
                *v = -*v;
            }
            b = -b;
        }
        if r[..self.ncols].iter().all(|v| v.is_zero()) {
            // No structural support left after reduction: the equality
            // is implied (zero residual) or contradicts the system. The
            // residual may still touch artificial columns, but those are
            // zero on every feasible point, so they cannot carry it.
            return b.is_zero();
        }
        self.rows.push(r);
        self.rhs.push(b);
        self.basis.push(NO_BASIS);
        if b.is_zero() {
            // The current vertex already satisfies the equality: one
            // degenerate pivot gives the row a basic column without
            // moving the point (rhs 0 leaves every other row intact).
            let new_row = self.rows.len() - 1;
            let je = (0..self.ncols)
                .find(|&j| !self.rows[new_row][j].is_zero())
                .expect("structural support checked above");
            self.pivot(new_row, je);
            return true;
        }
        self.dual_reoptimize()
    }

    /// The dual-simplex loop: while some row is primal-infeasible
    /// (negative rhs), pivot it feasible. Returns `false` on proven
    /// primal infeasibility. Falls back to the artificial-based repair
    /// (counted in `phase1_passes`) if the pivot cap is hit.
    fn dual_reoptimize(&mut self) -> bool {
        let cap = 4 * (self.ncols + self.nart + self.rows.len());
        let mut steps = 0usize;
        loop {
            // Leaving row: Bland — smallest basic index among the
            // infeasible rows (a fresh `NO_BASIS` row sorts last but is
            // the only infeasible row when it is present).
            let Some(li) = (0..self.rows.len())
                .filter(|&i| self.rhs[i].is_negative())
                .min_by_key(|&i| self.basis[i])
            else {
                return true;
            };
            if steps >= cap {
                self.phase1_passes += 1;
                return self.restore_feasibility_phase1();
            }
            steps += 1;
            // Entering column: smallest-index eligible column with a
            // negative entry (all reduced-cost ratios tie at zero under
            // the zero cost vector — see `add_eq_row`).
            let Some(je) = (0..self.ncols)
                .find(|&j| self.rows[li][j].is_negative() && !self.basis.contains(&j))
            else {
                return false; // the row cannot be made feasible
            };
            self.dual_pivots += 1;
            self.pivot(li, je);
        }
    }

    /// Artificial-based feasibility repair: every infeasible row is
    /// sign-normalized and given a fresh basic artificial, then one
    /// restricted phase-1 pass drives the artificials back to zero. The
    /// guarded fallback of [`dual_reoptimize`](Tableau::dual_reoptimize).
    fn restore_feasibility_phase1(&mut self) -> bool {
        let _timing = polytops_obs::time("simplex.phase1_ns");
        let width = self.ncols + self.nart;
        let bad: Vec<usize> = (0..self.rows.len())
            .filter(|&i| self.rhs[i].is_negative())
            .collect();
        for (k, &i) in bad.iter().enumerate() {
            for v in &mut self.rows[i] {
                *v = -*v;
            }
            self.rhs[i] = -self.rhs[i];
            self.basis[i] = width + k;
        }
        for (i, rr) in self.rows.iter_mut().enumerate() {
            for &bi in &bad {
                rr.push(if i == bi { Rat::ONE } else { Rat::ZERO });
            }
        }
        self.nart += bad.len();
        let mut cost = vec![Rat::ZERO; self.ncols + self.nart];
        for k in 0..bad.len() {
            cost[width + k] = Rat::ONE;
        }
        let Some((z, _)) = self.optimize(&cost, /*restrict_arts=*/ true) else {
            return false;
        };
        if z.is_positive() {
            return false;
        }
        self.expel_artificials();
        true
    }

    /// Runs the simplex loop for the given cost vector. Returns
    /// `(objective value, original-variable point)` or `None` if unbounded.
    fn optimize(&mut self, cost: &[Rat], restrict_arts: bool) -> Option<(Rat, Vec<Rat>)> {
        let total_cols = self.ncols + self.nart;
        // Reduced costs are computed on demand: c_j - c_B · B⁻¹ A_j. Since we
        // keep the tableau fully updated (rows are B⁻¹ A), the reduced cost
        // is c_j - sum_i c_{basis[i]} * rows[i][j].
        let mut iters = 0usize;
        let max_dantzig = 4 * (total_cols + self.rows.len());
        loop {
            iters += 1;
            let bland = iters > max_dantzig;
            // Compute multipliers y_i = cost of basic var in row i.
            let cb: Vec<Rat> = self.basis.iter().map(|&j| cost[j]).collect();
            // Entering column: negative reduced cost.
            let mut enter: Option<(usize, Rat)> = None;
            for j in 0..total_cols {
                if restrict_arts && j >= self.ncols {
                    continue; // artificials stay out in phase 2
                }
                if self.basis.contains(&j) {
                    continue;
                }
                let mut red = cost[j];
                for (i, r) in self.rows.iter().enumerate() {
                    if !cb[i].is_zero() && !r[j].is_zero() {
                        red -= cb[i] * r[j];
                    }
                }
                if red.is_negative() {
                    if bland {
                        enter = Some((j, red));
                        break;
                    }
                    match &enter {
                        None => enter = Some((j, red)),
                        Some((_, best)) if red < *best => enter = Some((j, red)),
                        _ => {}
                    }
                }
            }
            let Some((je, _)) = enter else {
                // Optimal: compute value and point.
                let mut point = vec![Rat::ZERO; self.n];
                for (i, &bj) in self.basis.iter().enumerate() {
                    if bj < self.n {
                        point[bj] += self.rhs[i];
                    } else if bj < 2 * self.n {
                        point[bj - self.n] -= self.rhs[i];
                    }
                }
                let mut value = Rat::ZERO;
                for (i, &bj) in self.basis.iter().enumerate() {
                    if !cost[bj].is_zero() {
                        value += cost[bj] * self.rhs[i];
                    }
                }
                return Some((value, point));
            };
            // Ratio test (Bland tie-break on basis index).
            let mut leave: Option<(usize, Rat)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][je];
                if a.is_positive() {
                    let ratio = self.rhs[i] / a;
                    match &leave {
                        None => leave = Some((i, ratio)),
                        Some((li, best)) => {
                            if ratio < *best || (ratio == *best && self.basis[i] < self.basis[*li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((li, _)) = leave else {
                return None; // unbounded
            };
            self.pivot(li, je);
        }
    }

    fn pivot(&mut self, li: usize, je: usize) {
        let p = self.rows[li][je];
        let inv = p.recip();
        for v in &mut self.rows[li] {
            *v *= inv;
        }
        self.rhs[li] *= inv;
        let pivot_row = self.rows[li].clone();
        let pivot_rhs = self.rhs[li];
        for i in 0..self.rows.len() {
            if i == li {
                continue;
            }
            let f = self.rows[i][je];
            if f.is_zero() {
                continue;
            }
            for (v, pv) in self.rows[i].iter_mut().zip(&pivot_row) {
                if !pv.is_zero() {
                    let s = f * *pv;
                    *v -= s;
                }
            }
            let s = f * pivot_rhs;
            self.rhs[i] -= s;
        }
        self.basis[li] = je;
    }

    /// After phase 1, pivots remaining artificial basics to structural
    /// columns (or leaves degenerate zero rows harmlessly basic).
    fn expel_artificials(&mut self) {
        for i in 0..self.rows.len() {
            if self.basis[i] >= self.ncols {
                // Find a structural column with nonzero entry to pivot in.
                if let Some(j) = (0..self.ncols).find(|&j| !self.rows[i][j].is_zero()) {
                    self.pivot(i, j);
                }
                // Otherwise the row is all-zero over structurals (redundant
                // constraint); its rhs must be zero after a feasible phase 1.
            }
        }
    }
}

/// An incrementally re-optimizable LP: the tableau is built (and phase 1
/// run) **once**, then a sequence of objectives is minimized by phase-2
/// re-optimization from the previous optimal basis, with equality rows
/// pinned in between ([`IncrementalLp::pin_eq`]) by re-pivoting only on
/// the appended row.
///
/// This is the warm-start engine of
/// [`ilp_lexmin_warm`](crate::ilp_lexmin_warm): the lexicographic
/// objective cascade re-uses one basis instead of rebuilding and
/// re-solving the whole system per objective.
///
/// # Examples
///
/// ```
/// use polytops_math::{ConstraintSystem, IncrementalLp, LpOutcome, Rat};
///
/// // Box [0,2]², x + y >= 2: lexmin x then y at the LP level.
/// let mut cs = ConstraintSystem::new(2);
/// cs.add_ineq(vec![1, 0, 0]);
/// cs.add_ineq(vec![-1, 0, 2]);
/// cs.add_ineq(vec![0, 1, 0]);
/// cs.add_ineq(vec![0, -1, 2]);
/// cs.add_ineq(vec![1, 1, -2]);
/// let mut lp = IncrementalLp::new(&cs);
/// let LpOutcome::Optimal { value, .. } = lp.minimize(&[1, 0]) else { panic!() };
/// assert_eq!(value, Rat::from(0));
/// assert!(lp.pin_eq(&[1, 0, 0])); // pin x == 0, re-pivot on one row
/// let LpOutcome::Optimal { value, .. } = lp.minimize(&[0, 1]) else { panic!() };
/// assert_eq!(value, Rat::from(2));
/// ```
pub struct IncrementalLp {
    tab: Tableau,
    feasible: bool,
}

impl IncrementalLp {
    /// Builds the tableau and runs phase 1.
    pub fn new(cs: &ConstraintSystem) -> IncrementalLp {
        let mut tab = Tableau::build(cs);
        let feasible = tab.phase1();
        IncrementalLp { tab, feasible }
    }

    /// Whether the system (with every pinned row so far) is feasible.
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// Minimizes `objective · x` from the current basis.
    pub fn minimize(&mut self, objective: &[i64]) -> LpOutcome {
        assert_eq!(objective.len(), self.tab.n, "objective length mismatch");
        if !self.feasible {
            return LpOutcome::Infeasible;
        }
        match self.tab.phase2(objective) {
            None => LpOutcome::Unbounded,
            Some((value, point)) => LpOutcome::Optimal { value, point },
        }
    }

    /// Pins the equality `row · x + c == 0` (`row` has `n + 1` entries)
    /// and restores feasibility with dual-simplex pivots on the existing
    /// basis. Returns `false` (and stays infeasible) when the pinned
    /// system has no solution.
    pub fn pin_eq(&mut self, row: &[i64]) -> bool {
        assert_eq!(row.len(), self.tab.n + 1, "row length mismatch");
        if !self.feasible {
            return false;
        }
        let _timing = polytops_obs::time("simplex.pin_eq_ns");
        self.feasible = self.tab.add_eq_row(row);
        self.feasible
    }

    /// Dual-simplex pivots spent by [`pin_eq`](IncrementalLp::pin_eq)
    /// calls so far.
    pub fn dual_pivots(&self) -> usize {
        self.tab.dual_pivots
    }

    /// Artificial-based phase-1 fallback passes taken by
    /// [`pin_eq`](IncrementalLp::pin_eq) (the dual pivot loop hit its
    /// cap; zero on every known workload).
    pub fn phase1_passes(&self) -> usize {
        self.tab.phase1_passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(cs: &ConstraintSystem, obj: &[i64]) -> (Rat, Vec<Rat>) {
        match lp_minimize(cs, obj) {
            LpOutcome::Optimal { value, point } => (value, point),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn minimize_over_interval() {
        // 2 <= x <= 5, minimize x -> 2; minimize -x -> -5.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -2]);
        cs.add_ineq(vec![-1, 5]);
        assert_eq!(optimal(&cs, &[1]).0, Rat::from(2));
        assert_eq!(optimal(&cs, &[-1]).0, Rat::from(-5));
    }

    #[test]
    fn negative_region() {
        // -7 <= x <= -3, minimize x.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, 7]);
        cs.add_ineq(vec![-1, -3]);
        let (v, p) = optimal(&cs, &[1]);
        assert_eq!(v, Rat::from(-7));
        assert_eq!(p[0], Rat::from(-7));
    }

    #[test]
    fn two_dims_vertex() {
        // x + y >= 2, x >= 0, y >= 0, minimize 2x + y.
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 1, -2]);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![0, 1, 0]);
        let (v, p) = optimal(&cs, &[2, 1]);
        assert_eq!(v, Rat::from(2));
        assert_eq!(p, vec![Rat::from(0), Rat::from(2)]);
    }

    #[test]
    fn equality_constraints() {
        // x + y == 4, x - y == 0 -> x = y = 2.
        let mut cs = ConstraintSystem::new(2);
        cs.add_eq(vec![1, 1, -4]);
        cs.add_eq(vec![1, -1, 0]);
        let (_, p) = optimal(&cs, &[0, 0]);
        assert_eq!(p, vec![Rat::from(2), Rat::from(2)]);
    }

    #[test]
    fn detects_infeasible() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -5]); // x >= 5
        cs.add_ineq(vec![-1, 2]); // x <= 2
        assert_eq!(lp_minimize(&cs, &[1]), LpOutcome::Infeasible);
        assert!(!lp_feasible(&cs));
    }

    #[test]
    fn detects_unbounded() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, 0]); // x >= 0
        assert_eq!(lp_minimize(&cs, &[-1]), LpOutcome::Unbounded);
    }

    #[test]
    fn fractional_vertex() {
        // 2x >= 1, minimize x -> 1/2.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![2, -1]);
        assert_eq!(optimal(&cs, &[1]).0, Rat::new(1, 2));
    }

    #[test]
    fn pin_cutting_off_the_vertex_uses_dual_pivots() {
        // Box [0,3]², minimize x + y -> vertex (0,0). Pinning
        // x + y == 2 cuts that vertex off: feasibility comes back via
        // dual pivots (no artificial, no phase-1 pass).
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![-1, 0, 3]);
        cs.add_ineq(vec![0, 1, 0]);
        cs.add_ineq(vec![0, -1, 3]);
        let mut lp = IncrementalLp::new(&cs);
        let LpOutcome::Optimal { value, .. } = lp.minimize(&[1, 1]) else {
            panic!()
        };
        assert_eq!(value, Rat::from(0));
        assert!(lp.pin_eq(&[1, 1, -2]));
        assert!(lp.dual_pivots() >= 1, "the pin must re-pivot");
        assert_eq!(lp.phase1_passes(), 0, "no artificial fallback");
        let LpOutcome::Optimal { value, point } = lp.minimize(&[1, 0]) else {
            panic!()
        };
        assert_eq!(value, Rat::from(0));
        assert_eq!(point, vec![Rat::from(0), Rat::from(2)]);
    }

    #[test]
    fn pin_already_satisfied_is_a_degenerate_pivot() {
        // Minimize x on x ∈ [1, 4]: vertex x = 1 already satisfies the
        // pinned x == 1, so no dual pivot is needed at all.
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, -1]);
        cs.add_ineq(vec![-1, 4]);
        let mut lp = IncrementalLp::new(&cs);
        let LpOutcome::Optimal { value, .. } = lp.minimize(&[1]) else {
            panic!()
        };
        assert_eq!(value, Rat::from(1));
        assert!(lp.pin_eq(&[1, -1]));
        assert_eq!(lp.dual_pivots(), 0);
        assert_eq!(lp.phase1_passes(), 0);
        let LpOutcome::Optimal { value, .. } = lp.minimize(&[-1]) else {
            panic!()
        };
        assert_eq!(value, Rat::from(-1), "the pin holds x at 1");
    }

    #[test]
    fn contradictory_pin_is_infeasible() {
        let mut cs = ConstraintSystem::new(1);
        cs.add_ineq(vec![1, 0]); // x >= 0
        cs.add_ineq(vec![-1, 2]); // x <= 2
        let mut lp = IncrementalLp::new(&cs);
        assert!(!lp.pin_eq(&[1, -7])); // x == 7 is out of the box
        assert!(!lp.is_feasible());
        assert_eq!(lp.minimize(&[1]), LpOutcome::Infeasible);
    }

    #[test]
    fn chained_pins_stay_exact() {
        // Lexmin over the 3-simplex x + y + z == 6, all >= 0: pin the
        // first two coordinates one after the other.
        let mut cs = ConstraintSystem::new(3);
        cs.add_eq(vec![1, 1, 1, -6]);
        cs.add_ineq(vec![1, 0, 0, 0]);
        cs.add_ineq(vec![0, 1, 0, 0]);
        cs.add_ineq(vec![0, 0, 1, 0]);
        let mut lp = IncrementalLp::new(&cs);
        let LpOutcome::Optimal { value, .. } = lp.minimize(&[1, 0, 0]) else {
            panic!()
        };
        assert_eq!(value, Rat::from(0));
        assert!(lp.pin_eq(&[1, 0, 0, 0]));
        let LpOutcome::Optimal { value, .. } = lp.minimize(&[0, 1, 0]) else {
            panic!()
        };
        assert_eq!(value, Rat::from(0));
        assert!(lp.pin_eq(&[0, 1, 0, 0]));
        let LpOutcome::Optimal { value, point } = lp.minimize(&[0, 0, 1]) else {
            panic!()
        };
        assert_eq!(value, Rat::from(6));
        assert_eq!(point[2], Rat::from(6));
        assert_eq!(lp.phase1_passes(), 0);
    }

    #[test]
    fn degenerate_redundant_rows() {
        let mut cs = ConstraintSystem::new(2);
        cs.add_ineq(vec![1, 0, 0]);
        cs.add_ineq(vec![1, 0, 0]); // duplicate
        cs.add_eq(vec![1, -1, 0]);
        cs.add_eq(vec![2, -2, 0]); // redundant equality
        cs.add_ineq(vec![-1, 0, 3]);
        let (v, _) = optimal(&cs, &[1, 1]);
        assert_eq!(v, Rat::from(0));
    }
}
