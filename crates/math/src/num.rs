//! Integer helpers: gcd/lcm and checked narrowing used throughout the crate.

use crate::error::{MathError, Result};

/// Greatest common divisor of two `i128` values; always non-negative.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// assert_eq!(polytops_math::gcd(12, -18), 6);
/// assert_eq!(polytops_math::gcd(0, 5), 5);
/// ```
pub fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple of two `i128` values; always non-negative.
///
/// # Panics
///
/// Panics on overflow (the result would exceed `i128`).
///
/// # Examples
///
/// ```
/// assert_eq!(polytops_math::lcm(4, 6), 12);
/// ```
pub fn lcm(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).checked_mul(b).expect("lcm overflow").abs()
}

/// Gcd of a slice, ignoring zeros; `0` when the slice has no nonzero entry.
pub fn gcd_slice(values: &[i64]) -> i64 {
    let mut g: i128 = 0;
    for &v in values {
        g = gcd(g, v as i128);
        if g == 1 {
            break;
        }
    }
    g as i64
}

/// Narrow an `i128` to `i64`, reporting overflow as a [`MathError`].
pub fn narrow(v: i128) -> Result<i64> {
    i64::try_from(v).map_err(|_| MathError::Overflow)
}

/// Floor division on `i64` (rounds toward negative infinity).
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(polytops_math::floor_div(7, 2), 3);
/// assert_eq!(polytops_math::floor_div(-7, 2), -4);
/// ```
pub fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on `i64` (rounds toward positive infinity).
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(polytops_math::ceil_div(7, 2), 4);
/// assert_eq!(polytops_math::ceil_div(-7, 2), -3);
/// ```
pub fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Euclidean remainder: `modulo(a, b)` is in `0..|b|`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn modulo(a: i64, b: i64) -> i64 {
    let r = a % b;
    if r < 0 {
        r + b.abs()
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(21, 14), 7);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(-4, 6), 12);
    }

    #[test]
    fn gcd_slice_ignores_zeros() {
        assert_eq!(gcd_slice(&[0, 4, 6]), 2);
        assert_eq!(gcd_slice(&[0, 0]), 0);
        assert_eq!(gcd_slice(&[5]), 5);
        assert_eq!(gcd_slice(&[-3, 9, 0]), 3);
    }

    #[test]
    fn floor_ceil_div() {
        assert_eq!(floor_div(9, 3), 3);
        assert_eq!(floor_div(-9, 3), -3);
        assert_eq!(floor_div(-1, 2), -1);
        assert_eq!(ceil_div(-1, 2), 0);
        assert_eq!(ceil_div(1, 2), 1);
        assert_eq!(floor_div(5, -2), -3);
        assert_eq!(ceil_div(5, -2), -2);
    }

    #[test]
    fn modulo_is_euclidean() {
        assert_eq!(modulo(7, 3), 1);
        assert_eq!(modulo(-7, 3), 2);
        assert_eq!(modulo(-7, -3), 2);
    }

    #[test]
    fn narrow_detects_overflow() {
        assert_eq!(narrow(42), Ok(42));
        assert!(narrow(i128::from(i64::MAX) + 1).is_err());
    }
}
