//! Exact rational arithmetic over `i128`.
//!
//! [`Rat`] is the number type used by the simplex solver and by rational
//! linear algebra (matrix inversion, orthogonal complements). Values are
//! kept normalized: the denominator is always positive and
//! `gcd(num, den) == 1`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::num::gcd;

/// An exact rational number with `i128` numerator and denominator.
///
/// Arithmetic panics on overflow; polyhedral scheduling problems at the
/// scale of this repository stay far below `i128` limits, and a loud
/// failure is preferable to silent wrapping.
///
/// # Examples
///
/// ```
/// use polytops_math::Rat;
///
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(a > b);
/// assert_eq!((a / b), Rat::from(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128, // invariant: den > 0, gcd(num, den) == 1
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates a rational `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The numerator (sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether this value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether this value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether this value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether this value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        -((-self).floor())
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Returns `self` as an `i128` if it is an integer.
    pub fn to_integer(self) -> Option<i128> {
        self.is_integer().then_some(self.num)
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Cross-cancel first to limit growth.
        let g = gcd(self.den, rhs.den);
        let (da, db) = (self.den / g, rhs.den / g);
        let num = self
            .num
            .checked_mul(db)
            .and_then(|a| rhs.num.checked_mul(da).and_then(|b| a.checked_add(b)))
            .expect("rational overflow in add");
        let den = self.den.checked_mul(db).expect("rational overflow in add");
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-cancel to limit growth.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let (n1, d2) = if g1 != 0 {
            (self.num / g1, rhs.den / g1)
        } else {
            (self.num, rhs.den)
        };
        let (n2, d1) = if g2 != 0 {
            (rhs.num / g2, self.den / g2)
        } else {
            (rhs.num, self.den)
        };
        let num = n1.checked_mul(n2).expect("rational overflow in mul");
        let den = d1.checked_mul(d2).expect("rational overflow in mul");
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0)
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in cmp");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in cmp");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from(5).floor(), 5);
        assert_eq!(Rat::from(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::new(-1, 3));
        assert!(Rat::from(0) < Rat::new(1, 100));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 6).to_string(), "1/2");
        assert_eq!(Rat::from(-4).to_string(), "-4");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
