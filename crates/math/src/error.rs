//! Error types for the math crate.

use std::error::Error;
use std::fmt;

/// Errors produced by exact arithmetic and polyhedral operations.
///
/// All operations in this crate are exact; the only failure modes are
/// arithmetic overflow of the fixed-width integer representation and
/// structural misuse (dimension mismatches, singular matrices).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MathError {
    /// An intermediate value exceeded the `i64`/`i128` representation.
    Overflow,
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        found: usize,
    },
    /// A matrix inversion was requested for a singular matrix.
    SingularMatrix,
    /// Division by zero in rational arithmetic.
    DivisionByZero,
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::Overflow => write!(f, "integer overflow in exact arithmetic"),
            MathError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MathError::SingularMatrix => write!(f, "matrix is singular"),
            MathError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl Error for MathError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, MathError>;
