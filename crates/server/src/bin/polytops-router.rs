//! `polytops-router` — the consistent-hash front for a `polytopsd`
//! fleet.
//!
//! ```text
//! polytops-router --shards HOST:PORT[,HOST:PORT...]
//!                 [--addr A] [--vnodes V]
//! ```
//!
//! Clients speak the ordinary `polytopsd` protocol to the router;
//! schedule and autotune requests are routed by SCoP fingerprint over a
//! consistent-hash ring so each SCoP always lands on the same shard
//! (and its warm registry entry). Responses are forwarded byte-for-byte
//! — the fleet is bit-identical to a single daemon. A `shutdown` op
//! stops every shard, then the router. Topology: docs/SERVICE.md.

use polytops_server::{Router, RouterConfig};

const USAGE: &str = "polytops-router — consistent-hash front for a polytopsd fleet

USAGE:
  polytops-router --shards HOST:PORT[,HOST:PORT...]
                  [--addr A] [--vnodes V]
      Listen on A (default 127.0.0.1:7226) and route schedule/autotune
      requests across the shard daemons by SCoP fingerprint. Responses
      are forwarded byte-for-byte; a shutdown op stops the shards and
      then the router. Protocol and topology: docs/SERVICE.md.

  polytops-router help
      Print this text.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("help") | Some("--help") | Some("-h")
    ) {
        print!("{USAGE}");
        std::process::exit(0);
    }
    let parsed = (|| -> Result<RouterConfig, String> {
        check_flags(&args, &["--addr", "--shards", "--vnodes"])?;
        let shards: Vec<String> = flag_value(&args, "--shards")
            .ok_or("--shards is required")?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if shards.is_empty() {
            return Err("--shards needs at least one address".to_string());
        }
        let defaults = RouterConfig::default();
        Ok(RouterConfig {
            addr: flag_value(&args, "--addr")
                .unwrap_or("127.0.0.1:7226")
                .to_string(),
            shards,
            virtual_nodes: match flag_value(&args, "--vnodes") {
                None => defaults.virtual_nodes,
                Some(text) => text
                    .parse()
                    .map_err(|_| format!("bad value `{text}` for --vnodes"))?,
            },
            retry: defaults.retry,
        })
    })();
    let config = match parsed {
        Ok(config) => config,
        Err(e) => {
            eprintln!("polytops-router: {e}");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    let shards = config.shards.len();
    match Router::start(config) {
        Ok(handle) => {
            println!(
                "polytops-router listening on {} ({shards} shards)",
                handle.addr()
            );
            // The router runs until a client's shutdown op stops it.
            handle.join();
            println!("polytops-router stopped");
        }
        Err(e) => {
            eprintln!("polytops-router: {e}");
            std::process::exit(1);
        }
    }
}

/// Pulls `--flag value` from an option list, complaining about anything
/// unknown.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn check_flags(args: &[String], known: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        if !known.contains(&args[i].as_str()) {
            return Err(format!("unknown option `{}`", args[i]));
        }
        if i + 1 >= args.len() {
            return Err(format!("missing value for `{}`", args[i]));
        }
        i += 2;
    }
    Ok(())
}
