//! `polytopsd` — the PolyTOPS batching scheduler daemon.
//!
//! ```text
//! polytopsd serve  [--addr A] [--window-ms W] [--max-batch B]
//!                  [--threads T] [--registry-capacity C]
//!                  [--snapshot-dir D] [--rotate-every E]
//!                  [--max-connections M] [--no-trace]
//! polytopsd replay [--addr A] [--clients N] [--connect-timeout-ms T]
//!                  [--shutdown]
//! polytopsd trace-dump [--addr A] [--out F]
//! ```
//!
//! `serve` runs the daemon until a `shutdown` op arrives. `replay` is
//! the end-to-end smoke client used by CI: it replays the standard
//! sweep as N concurrent clients, diffs every response bit-for-bit
//! against the offline scenario-engine golden path, prints the registry
//! statistics, and exits non-zero on any mismatch. `trace-dump` fetches
//! the most recent request's span tree via the `trace` op and converts
//! it to Chrome trace-event JSON (load in `chrome://tracing` or Perfetto).

use std::time::Duration;

use polytops_core::json::Json;
use polytops_server::protocol::{self, Request};
use polytops_server::{Client, Server, ServerConfig};

const USAGE: &str = "polytopsd — the PolyTOPS batching scheduler daemon

USAGE:
  polytopsd serve  [--addr A] [--window-ms W] [--max-batch B]
                   [--threads T] [--registry-capacity C]
                   [--snapshot-dir D] [--rotate-every E]
                   [--max-connections M] [--no-trace]
      Run the daemon (default addr 127.0.0.1:7225) until it receives a
      {\"op\":\"shutdown\"} request. --snapshot-dir enables registry
      persistence: the daemon restores (and prewarms) its registry from
      D at startup and journals admissions into D while serving.
      --no-trace disables span recording (counters and histograms stay
      on); responses are bit-identical either way.
      Protocol: docs/SERVICE.md.

  polytopsd replay [--addr A] [--clients N] [--connect-timeout-ms T]
                   [--shutdown]
      Replay the standard sweep as N concurrent clients against a
      running daemon, diff every response against the offline scenario
      engine bit for bit, and exit non-zero on mismatch. --shutdown
      stops the daemon afterwards.

  polytopsd trace-dump [--addr A] [--out F]
      Fetch the daemon's most recent traced request (the `trace` op)
      and print it as Chrome trace-event JSON — load the output in
      chrome://tracing or https://ui.perfetto.dev. --out writes to a
      file instead of stdout.

  polytopsd help
      Print this text.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("trace-dump") => trace_dump(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            0
        }
        _ => {
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Pulls `--flag value` from an option list, complaining about anything
/// unknown.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn check_flags(args: &[String], known: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        if !known.contains(&args[i].as_str()) {
            return Err(format!("unknown option `{}`", args[i]));
        }
        // Every option takes a value except the boolean switches.
        if args[i] == "--shutdown" || args[i] == "--no-trace" {
            i += 1;
        } else {
            if i + 1 >= args.len() {
                return Err(format!("missing value for `{}`", args[i]));
            }
            i += 2;
        }
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(text) => text
            .parse::<T>()
            .map_err(|_| format!("bad value `{text}` for {flag}")),
    }
}

fn serve(args: &[String]) -> i32 {
    let parsed = (|| -> Result<ServerConfig, String> {
        check_flags(
            args,
            &[
                "--addr",
                "--window-ms",
                "--max-batch",
                "--threads",
                "--registry-capacity",
                "--snapshot-dir",
                "--rotate-every",
                "--max-connections",
                "--no-trace",
            ],
        )?;
        let defaults = ServerConfig::default();
        Ok(ServerConfig {
            addr: flag_value(args, "--addr")
                .unwrap_or("127.0.0.1:7225")
                .to_string(),
            window_ms: parse(args, "--window-ms", defaults.window_ms)?,
            max_batch: parse(args, "--max-batch", defaults.max_batch)?,
            threads: parse(args, "--threads", defaults.threads)?,
            registry_capacity: parse(args, "--registry-capacity", defaults.registry_capacity)?,
            snapshot_dir: flag_value(args, "--snapshot-dir").map(str::to_string),
            rotate_every: parse(args, "--rotate-every", defaults.rotate_every)?,
            max_connections: parse(args, "--max-connections", defaults.max_connections)?,
            trace: !args.iter().any(|a| a == "--no-trace"),
            ..defaults
        })
    })();
    let config = match parsed {
        Ok(config) => config,
        Err(e) => {
            eprintln!("polytopsd serve: {e}");
            return 2;
        }
    };
    let window = config.window_ms;
    let threads = config.threads;
    match Server::start(config) {
        Ok(handle) => {
            println!(
                "polytopsd listening on {} (window {window} ms, {threads} worker threads)",
                handle.addr()
            );
            handle.join();
            println!("polytopsd stopped");
            0
        }
        Err(e) => {
            eprintln!("polytopsd serve: bind failed: {e}");
            1
        }
    }
}

/// Fetches the daemon's most recent traced request and prints (or
/// writes) it as Chrome trace-event JSON.
fn trace_dump(args: &[String]) -> i32 {
    let parsed = (|| -> Result<(String, Option<String>), String> {
        check_flags(args, &["--addr", "--out"])?;
        Ok((
            flag_value(args, "--addr")
                .unwrap_or("127.0.0.1:7225")
                .to_string(),
            flag_value(args, "--out").map(str::to_string),
        ))
    })();
    let (addr, out) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("polytopsd trace-dump: {e}");
            return 2;
        }
    };
    let fetched = (|| -> Result<String, String> {
        let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        client
            .send_line(r#"{"op":"trace"}"#)
            .map_err(|e| e.to_string())?;
        let response = client.recv_line().map_err(|e| e.to_string())?;
        let parsed = polytops_core::json::parse(&response)?;
        let obj = parsed.as_object().ok_or("response is not an object")?;
        if obj.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("daemon error response: {response}"));
        }
        let trace = obj.get("trace").ok_or("response missing `trace`")?;
        if matches!(trace, Json::Null) {
            return Err(
                "daemon has no completed traced request yet (or runs with --no-trace)".to_string(),
            );
        }
        let events = protocol::chrome_events_from_trace(trace)?;
        Ok(polytops_obs::chrome_trace(&events))
    })();
    match fetched {
        Ok(chrome) => match out {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &chrome) {
                    eprintln!("polytopsd trace-dump: write {path}: {e}");
                    return 1;
                }
                println!("wrote Chrome trace to {path}");
                0
            }
            None => {
                println!("{chrome}");
                0
            }
        },
        Err(e) => {
            eprintln!("polytopsd trace-dump: {e}");
            1
        }
    }
}

fn replay(args: &[String]) -> i32 {
    let parsed = (|| -> Result<(String, usize, u64, bool), String> {
        check_flags(
            args,
            &["--addr", "--clients", "--connect-timeout-ms", "--shutdown"],
        )?;
        Ok((
            flag_value(args, "--addr")
                .unwrap_or("127.0.0.1:7225")
                .to_string(),
            parse(args, "--clients", 3usize)?,
            parse(args, "--connect-timeout-ms", 10_000u64)?,
            args.iter().any(|a| a == "--shutdown"),
        ))
    })();
    let (addr, clients, timeout_ms, shutdown) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("polytopsd replay: {e}");
            return 2;
        }
    };

    // Golden path: every distinct request line scheduled offline, keyed
    // by request id. All client streams are identical, so one stream's
    // worth of offline runs covers them all.
    let streams = polytops_workloads::requests::sweep_request_streams(clients);
    let mut expected: Vec<(String, String)> = Vec::new(); // (id suffix, results)
    for line in &streams[0] {
        let req = match protocol::parse_request(line) {
            Ok(Request::Schedule(req)) => req,
            other => {
                eprintln!("polytopsd replay: generated request did not parse: {other:?}");
                return 1;
            }
        };
        let id = match &req.id {
            Json::Str(s) => s.clone(),
            other => other.compact(),
        };
        // Ids are `c<client>/<kernel>`; the kernel suffix keys the diff.
        let suffix = id
            .split_once('/')
            .map_or(id.as_str(), |(_, k)| k)
            .to_string();
        expected.push((suffix, protocol::offline_results(&req).compact()));
    }

    let addr_ref: &str = &addr;
    let results: Vec<Result<Vec<(String, String)>, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                s.spawn(move || -> Result<Vec<(String, String)>, String> {
                    let mut client =
                        Client::connect_retry(addr_ref, Duration::from_millis(timeout_ms))
                            .map_err(|e| format!("connect {addr_ref}: {e}"))?;
                    for line in stream {
                        client.send_line(line).map_err(|e| e.to_string())?;
                    }
                    let mut responses = Vec::with_capacity(stream.len());
                    for _ in stream {
                        let response = client.recv_line().map_err(|e| e.to_string())?;
                        let parsed = polytops_core::json::parse(&response)?;
                        let obj = parsed.as_object().ok_or("response is not an object")?;
                        if obj.get("ok").and_then(Json::as_bool) != Some(true) {
                            return Err(format!("daemon error response: {response}"));
                        }
                        let id = match &obj["id"] {
                            Json::Str(s) => s.clone(),
                            other => other.compact(),
                        };
                        let results = obj
                            .get("results")
                            .ok_or("response missing `results`")?
                            .compact();
                        responses.push((id, results));
                    }
                    Ok(responses)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });

    let mut responses = 0usize;
    let mut mismatches = 0usize;
    for outcome in results {
        match outcome {
            Err(e) => {
                eprintln!("polytopsd replay: {e}");
                return 1;
            }
            Ok(pairs) => {
                for (id, got) in pairs {
                    responses += 1;
                    let suffix = id.split_once('/').map_or(id.as_str(), |(_, k)| k);
                    match expected.iter().find(|(k, _)| k == suffix) {
                        Some((_, want)) if *want == got => {}
                        Some(_) => {
                            eprintln!("MISMATCH {id}: daemon response differs from offline run");
                            mismatches += 1;
                        }
                        None => {
                            eprintln!("MISMATCH {id}: unexpected response id");
                            mismatches += 1;
                        }
                    }
                }
            }
        }
    }

    let stats = Client::connect(addr_ref).and_then(|mut c| {
        let stats = c.stats()?;
        if shutdown {
            c.shutdown()?;
        }
        Ok(stats)
    });
    match stats {
        Ok(stats) => println!("registry/service stats: {}", stats.compact()),
        Err(e) => eprintln!("polytopsd replay: stats/shutdown failed: {e}"),
    }
    println!(
        "replayed {responses} responses from {clients} clients: {}",
        if mismatches == 0 {
            "all bit-identical to the offline scenario engine".to_string()
        } else {
            format!("{mismatches} MISMATCHES")
        }
    );
    i32::from(mismatches != 0)
}
