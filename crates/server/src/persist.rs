//! Registry persistence: checksummed snapshots plus an append-only
//! journal, so a restarted daemon serves warm with zero re-eliminations.
//!
//! ## On-disk layout
//!
//! A snapshot directory holds up to four files:
//!
//! ```text
//! snapshot        current full registry image
//! snapshot.prev   previous rotation (torn-write fallback)
//! journal         events admitted since `snapshot` was written
//! journal.prev    events admitted since `snapshot.prev` was written
//! ```
//!
//! A snapshot file is one header line
//! `polytops-snapshot v1 <payload-len> <fnv1a-hex>` followed by a
//! compact-JSON payload:
//!
//! ```text
//! {"entries":[{"layouts":[{"neg":false,"shift":false,"vars":[]}],
//!              "name":"matmul","scop":"<polyscop> ..."}]}
//! ```
//!
//! Entries are in LRU order (coldest first), each carrying the SCoP's
//! *canonical text* — the registry's identity representation — plus the
//! [`CacheLayout`]s that had resident Farkas caches. Nothing derived is
//! stored: dependence analyses and cache contents rebuild
//! deterministically from the text on load (see
//! [`ScopRegistry::restore`]), which is what makes a snapshot immune to
//! solver/code drift across daemon versions.
//!
//! The journal is one compact-JSON event per line:
//!
//! ```text
//! {"event":"admit","name":"matmul","scop":"<polyscop> ..."}
//! {"event":"layout","fp":"9f…","neg":false,"shift":false,"vars":[]}
//! ```
//!
//! Events are idempotent, so replay after a crash mid-append is safe; a
//! torn final line (the only line a single-writer crash can tear) is
//! detected by its parse failure and dropped.
//!
//! ## Rotation
//!
//! [`Persister::rotate`] writes `snapshot.tmp` (fsynced), renames
//! `snapshot` → `snapshot.prev`, renames the tmp into place, shifts
//! `journal` → `journal.prev`, and starts a fresh journal. Every rename
//! is atomic on POSIX, and each crash window leaves a state
//! `load`'s fallback chain recovers from: a corrupt or
//! missing `snapshot` falls back to `snapshot.prev` + both journals
//! (replay idempotency makes the over-approximation harmless).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use polytops_core::json::{parse, Json};
use polytops_core::registry::{
    fingerprint, fnv1a, CacheLayout, LearnedConfig, RegistrySnapshot, ScopRegistry, SnapshotEntry,
};
use polytops_ir::{parse_scop, print_scop, Scop};

use crate::protocol::PersistTotals;

/// Magic prefix of the snapshot header line.
const MAGIC: &str = "polytops-snapshot v1";

/// What `load` found on disk and rebuilt.
#[derive(Debug, Default, Clone)]
pub struct LoadOutcome {
    /// Registry entries restored (snapshot plus journal replay).
    pub restored_entries: usize,
    /// Cache layouts prewarmed during restore.
    pub prewarmed_layouts: usize,
    /// Whether the current snapshot was unusable and the previous
    /// rotation was used instead.
    pub recovered_from_prev: bool,
    /// Journal events replayed on top of the snapshot.
    pub replayed_events: usize,
    /// Malformed journal lines skipped (a torn tail counts as one).
    pub torn_events: usize,
    /// Learned tuning winners restored (snapshot plus journal replay).
    pub relearned_configs: usize,
}

/// Journal/rotation state behind the persister's lock.
struct PersistState {
    /// Open handle on the current journal, append mode.
    journal: File,
    /// Events appended to the current journal since it was opened.
    events: usize,
    /// Events appended since startup (monotonic; survives rotation).
    events_total: usize,
    /// Rotations performed since startup.
    rotations: usize,
    /// Per-fingerprint layouts already journaled or snapshotted, so the
    /// post-batch diff appends each `layout` event exactly once.
    known: HashMap<u64, BTreeSet<CacheLayout>>,
    /// Per-fingerprint learned winners already journaled or
    /// snapshotted, keyed by tuning key — the same diff discipline as
    /// `known`, so each `learned` event is appended exactly once (and
    /// again if a re-exploration changes the winner).
    known_learned: HashMap<u64, BTreeMap<String, LearnedConfig>>,
}

/// The daemon's persistence engine: owns the snapshot directory, the
/// journal handle, and the layout diff state. One per daemon; all
/// methods are `&self` (internally locked) so the batcher and the
/// shutdown path can share it.
pub struct Persister {
    dir: PathBuf,
    /// Rotate once the current journal holds this many events.
    rotate_every: usize,
    state: Mutex<PersistState>,
    /// What `load` found, echoed in stats.
    loaded: LoadOutcome,
    /// Durability telemetry sink (journal-append/fsync/rotation
    /// histograms), attached by the daemon after it builds its
    /// recorder. Never affects persistence behavior.
    recorder: std::sync::OnceLock<std::sync::Arc<polytops_obs::Recorder>>,
}

impl Persister {
    /// Opens (creating if needed) the snapshot directory, restores the
    /// registry from whatever is on disk, and leaves the journal open
    /// for appends. Rotation is *not* performed here: the freshly
    /// replayed journal stays valid until the daemon's first natural
    /// rotation point, so a crash loop cannot destroy both rotations.
    ///
    /// # Errors
    ///
    /// Returns a description if the directory or journal cannot be
    /// created. Corrupt *contents* never error — the fallback chain
    /// degrades to a cold start instead, because refusing to serve is
    /// worse than serving cold.
    pub fn open(
        dir: &Path,
        rotate_every: usize,
        registry: &ScopRegistry,
    ) -> Result<Persister, String> {
        fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let loaded = load(dir, registry);
        // Journal replay re-admitted the journal's own events; seed the
        // diff state from the registry so they are not re-appended.
        let mut known: HashMap<u64, BTreeSet<CacheLayout>> = HashMap::new();
        let mut known_learned: HashMap<u64, BTreeMap<String, LearnedConfig>> = HashMap::new();
        for entry in &registry.snapshot().entries {
            let scop = parse_scop(&entry.scop_text)
                .expect("snapshot of a live registry always round-trips");
            let fp = fingerprint(&scop);
            known.insert(fp, entry.layouts.iter().cloned().collect());
            known_learned.insert(fp, entry.learned.iter().cloned().collect());
        }
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("journal"))
            .map_err(|e| format!("open journal: {e}"))?;
        Ok(Persister {
            dir: dir.to_path_buf(),
            rotate_every: rotate_every.max(1),
            state: Mutex::new(PersistState {
                journal,
                events: 0,
                events_total: 0,
                rotations: 0,
                known,
                known_learned,
            }),
            loaded,
            recorder: std::sync::OnceLock::new(),
        })
    }

    /// Attaches the daemon's recorder so journal appends, fsyncs and
    /// rotations report their durations. Only the first attach wins.
    pub fn attach_recorder(&self, recorder: std::sync::Arc<polytops_obs::Recorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// What startup restored (for stats and the fault suite).
    pub fn load_outcome(&self) -> &LoadOutcome {
        &self.loaded
    }

    /// Current counters for the `stats` op.
    pub fn totals(&self) -> PersistTotals {
        let state = self.state.lock().expect("persist lock");
        PersistTotals {
            restored_entries: self.loaded.restored_entries,
            prewarmed_layouts: self.loaded.prewarmed_layouts,
            recovered_from_prev: self.loaded.recovered_from_prev,
            replayed_events: self.loaded.replayed_events,
            relearned_configs: self.loaded.relearned_configs,
            journal_events: state.events_total,
            rotations: state.rotations,
            dir: self.dir.display().to_string(),
        }
    }

    /// Records the state a finished batch left behind: an `admit` event
    /// for each entry the diff state has not seen, and a `layout` event
    /// for each newly resident cache layout. Called with the entries
    /// the batch touched; rotates afterwards if the journal has grown
    /// past `rotate_every`. I/O errors are swallowed (persistence is
    /// best-effort; serving must not depend on the disk).
    pub fn record(&self, registry: &ScopRegistry, touched: &[(String, Scop)]) {
        let recorder = self.recorder.get().map(std::sync::Arc::as_ref);
        let mut state = self.state.lock().expect("persist lock");
        for (name, scop) in touched {
            let fp = fingerprint(scop);
            if !state.known.contains_key(&fp) {
                let event = Json::Object(std::collections::BTreeMap::from([
                    ("event".to_string(), Json::Str("admit".to_string())),
                    ("name".to_string(), Json::Str(name.clone())),
                    ("scop".to_string(), Json::Str(print_scop(scop))),
                ]));
                append(&mut state, &event, recorder);
                state.known.insert(fp, BTreeSet::new());
            }
            let Some(entry) = registry.find_by_fingerprint(fp) else {
                continue; // evicted between batch and record; nothing to pin
            };
            let resident: BTreeSet<CacheLayout> = entry.layout_keys().into_iter().collect();
            let seen = state.known.get(&fp).cloned().unwrap_or_default();
            for layout in resident.difference(&seen) {
                let &(neg, shift, ref vars) = layout;
                let event = Json::Object(std::collections::BTreeMap::from([
                    ("event".to_string(), Json::Str("layout".to_string())),
                    ("fp".to_string(), Json::Str(format!("{fp:016x}"))),
                    ("neg".to_string(), Json::Bool(neg)),
                    ("shift".to_string(), Json::Bool(shift)),
                    (
                        "vars".to_string(),
                        Json::Array(vars.iter().map(|v| Json::Str(v.clone())).collect()),
                    ),
                ]));
                append(&mut state, &event, recorder);
            }
            state.known.insert(fp, resident);
            let learned: BTreeMap<String, LearnedConfig> =
                entry.learned_snapshot().into_iter().collect();
            let seen = state.known_learned.get(&fp).cloned().unwrap_or_default();
            for (key, config) in &learned {
                if seen.get(key) == Some(config) {
                    continue;
                }
                let event = Json::Object(std::collections::BTreeMap::from([
                    ("event".to_string(), Json::Str("learned".to_string())),
                    ("fp".to_string(), Json::Str(format!("{fp:016x}"))),
                    ("key".to_string(), Json::Str(key.clone())),
                    ("winner".to_string(), Json::Str(config.winner.clone())),
                    ("score".to_string(), Json::Int(config.score)),
                ]));
                append(&mut state, &event, recorder);
            }
            state.known_learned.insert(fp, learned);
        }
        if state.events >= self.rotate_every {
            drop(state);
            self.rotate(registry);
        }
    }

    /// Writes a fresh checksummed snapshot of `registry` and rotates
    /// the journal. Crash-safe: every step is a whole-file write to a
    /// temp name or an atomic rename, and `load`'s fallback chain
    /// covers every intermediate state. Errors are swallowed — a failed
    /// rotation leaves the previous snapshot + journal, which still
    /// restore correctly.
    pub fn rotate(&self, registry: &ScopRegistry) {
        let _timing = self
            .recorder
            .get()
            .map(|rec| RotateTimer::new(rec.histogram("persist.rotate_ns")));
        let mut state = self.state.lock().expect("persist lock");
        let snap = registry.snapshot();
        let tmp = self.dir.join("snapshot.tmp");
        if write_snapshot_file(&tmp, &snap).is_err() {
            return;
        }
        let snapshot = self.dir.join("snapshot");
        let prev = self.dir.join("snapshot.prev");
        if snapshot.exists() {
            let _ = fs::rename(&snapshot, &prev);
        }
        if fs::rename(&tmp, &snapshot).is_err() {
            return;
        }
        // The old journal's events are inside the new snapshot; keep
        // them one generation as the fallback chain's companion.
        let journal = self.dir.join("journal");
        let _ = fs::rename(&journal, self.dir.join("journal.prev"));
        let Ok(fresh) = OpenOptions::new().create(true).append(true).open(&journal) else {
            return;
        };
        state.journal = fresh;
        state.events = 0;
        state.rotations += 1;
        // Everything resident is now in the snapshot; reset the diff
        // baseline to match.
        state.known.clear();
        state.known_learned.clear();
        for entry in &snap.entries {
            if let Ok(scop) = parse_scop(&entry.scop_text) {
                let fp = fingerprint(&scop);
                state
                    .known
                    .insert(fp, entry.layouts.iter().cloned().collect());
                state
                    .known_learned
                    .insert(fp, entry.learned.iter().cloned().collect());
            }
        }
    }
}

/// Records the wall time of one snapshot rotation on drop, so every
/// early-out path in `rotate` still reports its duration.
struct RotateTimer {
    histogram: std::sync::Arc<polytops_obs::Histogram>,
    started: std::time::Instant,
}

impl RotateTimer {
    fn new(histogram: std::sync::Arc<polytops_obs::Histogram>) -> Self {
        RotateTimer {
            histogram,
            started: std::time::Instant::now(),
        }
    }
}

impl Drop for RotateTimer {
    fn drop(&mut self) {
        self.histogram
            .record(u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Appends one journal event line, fsyncing so a subsequent daemon kill
/// cannot lose an acknowledged batch's admissions. Reports the total
/// append and fsync-only durations when a recorder is attached.
fn append(state: &mut PersistState, event: &Json, recorder: Option<&polytops_obs::Recorder>) {
    let started = std::time::Instant::now();
    let mut line = event.compact();
    line.push('\n');
    if state.journal.write_all(line.as_bytes()).is_ok() {
        let fsync_started = std::time::Instant::now();
        let _ = state.journal.sync_data();
        if let Some(rec) = recorder {
            rec.histogram("persist.fsync_ns")
                .record(u64::try_from(fsync_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        state.events += 1;
        state.events_total += 1;
    }
    if let Some(rec) = recorder {
        rec.histogram("persist.append_ns")
            .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Serializes a snapshot payload (compact JSON, entries in LRU order).
fn snapshot_payload(snap: &RegistrySnapshot) -> String {
    let entries: Vec<Json> = snap
        .entries
        .iter()
        .map(|entry| {
            Json::Object(std::collections::BTreeMap::from([
                ("name".to_string(), Json::Str(entry.name.clone())),
                ("scop".to_string(), Json::Str(entry.scop_text.clone())),
                (
                    "layouts".to_string(),
                    Json::Array(entry.layouts.iter().map(layout_to_json).collect()),
                ),
                (
                    "learned".to_string(),
                    Json::Array(
                        entry
                            .learned
                            .iter()
                            .map(|(key, config)| {
                                Json::Object(std::collections::BTreeMap::from([
                                    ("key".to_string(), Json::Str(key.clone())),
                                    ("winner".to_string(), Json::Str(config.winner.clone())),
                                    ("score".to_string(), Json::Int(config.score)),
                                ]))
                            })
                            .collect(),
                    ),
                ),
            ]))
        })
        .collect();
    Json::Object(std::collections::BTreeMap::from([(
        "entries".to_string(),
        Json::Array(entries),
    )]))
    .compact()
}

fn layout_to_json(layout: &CacheLayout) -> Json {
    let &(neg, shift, ref vars) = layout;
    Json::Object(std::collections::BTreeMap::from([
        ("neg".to_string(), Json::Bool(neg)),
        ("shift".to_string(), Json::Bool(shift)),
        (
            "vars".to_string(),
            Json::Array(vars.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
    ]))
}

fn learned_from_json(json: &Json) -> Option<(String, LearnedConfig)> {
    let obj = json.as_object()?;
    Some((
        obj.get("key")?.as_str()?.to_string(),
        LearnedConfig {
            winner: obj.get("winner")?.as_str()?.to_string(),
            score: obj.get("score")?.as_int()?,
        },
    ))
}

fn layout_from_json(json: &Json) -> Option<CacheLayout> {
    let obj = json.as_object()?;
    let neg = obj.get("neg")?.as_bool()?;
    let shift = obj.get("shift")?.as_bool()?;
    let vars = obj
        .get("vars")?
        .as_array()?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<Vec<String>>>()?;
    Some((neg, shift, vars))
}

/// Writes one snapshot file: checksummed header line + payload, fsynced
/// before return so the caller's rename publishes durable bytes.
fn write_snapshot_file(path: &Path, snap: &RegistrySnapshot) -> std::io::Result<()> {
    let payload = snapshot_payload(snap);
    let header = format!(
        "{MAGIC} {} {:016x}\n",
        payload.len(),
        fnv1a(payload.as_bytes())
    );
    let mut file = File::create(path)?;
    file.write_all(header.as_bytes())?;
    file.write_all(payload.as_bytes())?;
    file.sync_data()
}

/// Parses and checksum-verifies a snapshot file. `None` for any defect:
/// missing, truncated (torn write), checksum mismatch, malformed JSON.
fn read_snapshot_file(path: &Path) -> Option<RegistrySnapshot> {
    let mut text = String::new();
    File::open(path).ok()?.read_to_string(&mut text).ok()?;
    let (header, payload) = text.split_once('\n')?;
    let rest = header.strip_prefix(MAGIC)?.trim();
    let (len_text, sum_text) = rest.split_once(' ')?;
    let len: usize = len_text.parse().ok()?;
    let sum = u64::from_str_radix(sum_text, 16).ok()?;
    if payload.len() != len || fnv1a(payload.as_bytes()) != sum {
        return None;
    }
    let root = parse(payload).ok()?;
    let mut entries = Vec::new();
    for item in root.as_object()?.get("entries")?.as_array()? {
        let obj = item.as_object()?;
        // Snapshots from before the learned store lack the key; treat
        // them as having learned nothing rather than as corrupt.
        let learned = match obj.get("learned") {
            Some(list) => list
                .as_array()?
                .iter()
                .map(learned_from_json)
                .collect::<Option<Vec<(String, LearnedConfig)>>>()?,
            None => Vec::new(),
        };
        entries.push(SnapshotEntry {
            name: obj.get("name")?.as_str()?.to_string(),
            scop_text: obj.get("scop")?.as_str()?.to_string(),
            layouts: obj
                .get("layouts")?
                .as_array()?
                .iter()
                .map(layout_from_json)
                .collect::<Option<Vec<CacheLayout>>>()?,
            learned,
        });
    }
    Some(RegistrySnapshot { entries })
}

/// What replaying one journal file applied:
/// `(events_applied, torn_lines, layouts_prewarmed, configs_relearned)`.
type ReplayCounts = (usize, usize, usize, usize);

/// Replays one journal file into the registry. Malformed lines
/// (the torn tail of a killed daemon, at most one per file) are
/// skipped, and events that fail to apply (unparseable SCoP from a
/// corrupted disk) are counted as torn rather than fatal.
fn replay_journal(path: &Path, registry: &ScopRegistry) -> ReplayCounts {
    let Ok(text) = fs::read_to_string(path) else {
        return (0, 0, 0, 0);
    };
    let (mut applied, mut torn, mut layouts, mut relearned) = (0, 0, 0, 0);
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line).ok().and_then(|e| apply_event(&e, registry)) {
            Some((prewarmed, learned)) => {
                applied += 1;
                layouts += usize::from(prewarmed);
                relearned += usize::from(learned);
            }
            None => torn += 1,
        }
    }
    (applied, torn, layouts, relearned)
}

/// Applies one journal event, returning
/// `(prewarmed_a_layout, relearned_a_config)`. Idempotent: `admit`
/// rides the registry's dedupe, `layout` rides prewarm's
/// replay-from-cache no-op, `learned` rides the learned map's
/// last-write-wins insert (replaying the same event twice is the same
/// write).
fn apply_event(event: &Json, registry: &ScopRegistry) -> Option<(bool, bool)> {
    let obj = event.as_object()?;
    match obj.get("event")?.as_str()? {
        "admit" => {
            let name = obj.get("name")?.as_str()?;
            let scop = parse_scop(obj.get("scop")?.as_str()?).ok()?;
            registry.resolve(name, &scop);
            Some((false, false))
        }
        "layout" => {
            let fp = u64::from_str_radix(obj.get("fp")?.as_str()?, 16).ok()?;
            let layout = layout_from_json(event)?;
            // The entry may have been evicted by later journal events'
            // admissions; a missing target is not corruption.
            if let Some(entry) = registry.find_by_fingerprint(fp) {
                entry.prewarm_layout(&layout).ok()?;
                return Some((true, false));
            }
            Some((false, false))
        }
        "learned" => {
            let fp = u64::from_str_radix(obj.get("fp")?.as_str()?, 16).ok()?;
            let key = obj.get("key")?.as_str()?;
            let config = LearnedConfig {
                winner: obj.get("winner")?.as_str()?.to_string(),
                score: obj.get("score")?.as_int()?,
            };
            if let Some(entry) = registry.find_by_fingerprint(fp) {
                entry.learn(key, config);
                return Some((false, true));
            }
            Some((false, false))
        }
        _ => None,
    }
}

/// The startup fallback chain: newest usable snapshot, then every
/// journal generation that could hold events missing from it.
fn load(dir: &Path, registry: &ScopRegistry) -> LoadOutcome {
    let mut outcome = LoadOutcome::default();
    let current = read_snapshot_file(&dir.join("snapshot"));
    let (snapshot, journals): (Option<RegistrySnapshot>, Vec<PathBuf>) = match current {
        Some(snap) => (Some(snap), vec![dir.join("journal")]),
        None => {
            let prev = read_snapshot_file(&dir.join("snapshot.prev"));
            if prev.is_some() && dir.join("snapshot").exists() {
                // There *was* a current snapshot and it failed its
                // checksum — the torn-rotation case the fault suite
                // exercises.
                outcome.recovered_from_prev = true;
            }
            // Without the current snapshot, the previous journal's
            // events may not be covered; replay both (idempotent).
            (prev, vec![dir.join("journal.prev"), dir.join("journal")])
        }
    };
    if let Some(snap) = snapshot {
        match registry.restore(&snap) {
            Ok(report) => {
                outcome.restored_entries = report.entries;
                outcome.prewarmed_layouts = report.layouts;
                outcome.relearned_configs = report.learned;
            }
            Err(_) => outcome.torn_events += 1,
        }
    }
    let before = registry.stats().misses;
    for journal in journals {
        let (applied, torn, layouts, relearned) = replay_journal(&journal, registry);
        outcome.replayed_events += applied;
        outcome.torn_events += torn;
        outcome.prewarmed_layouts += layouts;
        outcome.relearned_configs += relearned;
    }
    // Journal admissions of SCoPs the snapshot missed count as restored
    // entries too (they show up as fresh registry misses).
    outcome.restored_entries += registry.stats().misses.saturating_sub(before);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_file_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("polytops-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot");
        let snap = RegistrySnapshot {
            entries: vec![SnapshotEntry {
                name: "k".to_string(),
                scop_text: "<polyscop>\n".to_string(),
                layouts: vec![(false, false, vec![]), (true, true, vec!["x".to_string()])],
                learned: vec![(
                    "line64:max16:est256".to_string(),
                    LearnedConfig {
                        winner: "pluto/tile32+wave".to_string(),
                        score: -123_456,
                    },
                )],
            }],
        };
        write_snapshot_file(&path, &snap).unwrap();
        assert_eq!(read_snapshot_file(&path), Some(snap.clone()));

        // Truncation (torn write) must be detected.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(read_snapshot_file(&path), None);

        // Bit corruption inside the payload must be detected.
        let mut flipped = full.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x20;
        fs::write(&path, &flipped).unwrap();
        assert_eq!(read_snapshot_file(&path), None);

        let _ = fs::remove_dir_all(&dir);
    }
}
