//! The daemon: a readiness event loop over nonblocking sockets, the
//! admission-window batcher, a dedicated tuner worker, optional
//! registry persistence, and graceful shutdown.
//!
//! Thread shape (see `docs/ARCHITECTURE.md` for the request lifecycle):
//!
//! ```text
//! event-loop thread: nonblocking listener + every connection
//!      │  accept / read / parse line → Request
//!      │  ping/stats/shutdown: answered inline into the write buffer
//!      │  schedule ──► bounded admission channel ──► batcher thread
//!      │  autotune ──► unbounded tune channel ─────► tuner thread
//!      ▼
//! batcher thread: first request opens a window, window_ms/max_batch
//! close it → one ScenarioSet (SCoPs resolved through the
//! ScopRegistry) → run_sharded(threads) → per-request response lines,
//! journaled to the persister, queued back to the event loop
//! ```
//!
//! Exactly one thread (the event loop) touches sockets, so thousands
//! of idle connections cost one `Conn` struct each instead of a parked
//! thread, and responses to one connection can never interleave bytes.
//! The batcher and tuner communicate with it only through channels.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use polytops_core::registry::{ScopEntry, ScopRegistry};
use polytops_core::scenario::ScenarioSet;
use polytops_ir::Scop;

use crate::persist::Persister;
use crate::poll::{event_loop, Outbound};
use crate::protocol::{self, AutotuneRequest, ScheduleRequest};

/// Deterministic fault injection for the restart test harness. All
/// fields default to "no fault"; production configs never set them.
/// Faults are *scripted*, not random — the suite's assertions depend on
/// knowing exactly which batch dies.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash the daemon (drop every connection unflushed, stop all
    /// threads) immediately after the Nth admission window finishes
    /// computing — after its journal events are durable, before any of
    /// its responses are queued. Models `kill -9` at the worst moment.
    pub kill_after_batches: Option<usize>,
    /// Truncate the Nth queued response (daemon-wide, 1-based) to half
    /// its bytes and then drop that connection: a client observes a
    /// torn line followed by EOF mid-response.
    pub drop_response: Option<usize>,
    /// On crash, additionally truncate the current snapshot file to
    /// this many bytes — a snapshot rotation torn by the kill.
    pub torn_snapshot_bytes: Option<u64>,
}

impl FaultPlan {
    /// True when no fault is armed (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.kill_after_batches.is_none()
            && self.drop_response.is_none()
            && self.torn_snapshot_bytes.is_none()
    }
}

/// Daemon configuration. Every knob is also a `polytopsd serve` flag
/// (see `docs/CONFIG.md`).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (tests/benches).
    pub addr: String,
    /// Admission window in milliseconds: how long the batcher keeps
    /// collecting after the first request of a batch arrives. `0`
    /// dispatches every request as its own batch (lowest latency, no
    /// cross-request batching).
    pub window_ms: u64,
    /// Maximum requests per batch (the window closes early when full).
    pub max_batch: usize,
    /// Worker threads for the scenario engine's work-stealing pool.
    pub threads: usize,
    /// LRU bound of the SCoP registry (resident SCoPs).
    pub registry_capacity: usize,
    /// Snapshot directory for registry persistence; `None` disables
    /// persistence (the registry dies with the process).
    pub snapshot_dir: Option<String>,
    /// Rotate the snapshot once the journal holds this many events.
    pub rotate_every: usize,
    /// Maximum simultaneously open connections; excess accepts are
    /// closed immediately (clients retry with backoff).
    pub max_connections: usize,
    /// Maximum bytes of one request line before the connection is
    /// dropped as malformed (protects the event loop's read buffers).
    pub max_line_bytes: usize,
    /// Record request-lifecycle and pipeline spans (the `trace` op and
    /// Chrome export). Counters and histograms accumulate either way;
    /// with tracing off every span site is inert. Tracing never changes
    /// response bytes — schedules are bit-identical on or off.
    pub trace: bool,
    /// Scripted faults (tests only).
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            window_ms: 2,
            max_batch: 64,
            threads: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8)),
            registry_capacity: 128,
            snapshot_dir: None,
            rotate_every: 64,
            max_connections: 1024,
            max_line_bytes: 16 << 20,
            trace: true,
            faults: FaultPlan::default(),
        }
    }
}

/// The daemon's telemetry: one [`polytops_obs::Recorder`] shared by
/// every thread, with the hot service counters cached as `Arc`s so the
/// request path never takes the registry lock. All former hand-rolled
/// counter structs (`SolverCounters`, tuner atomics) now accumulate
/// through this registry; the `stats` wire shapes are rebuilt from it.
/// Relaxed counters: diagnostic sums, never part of the bit-identity
/// contract.
pub(crate) struct ServerObs {
    /// Span ring, counter and histogram registry for the whole daemon.
    pub(crate) recorder: Arc<polytops_obs::Recorder>,
    /// Schedule + autotune requests admitted (`service.requests`).
    pub(crate) requests: Arc<polytops_obs::Counter>,
    /// Admission windows executed (`service.batches`).
    pub(crate) batches: Arc<polytops_obs::Counter>,
    /// Queued schedule/autotune responses, daemon-wide
    /// (`service.responses`) — the counter the `drop_response` fault
    /// indexes (`Counter::inc` returns the new value, preserving the
    /// 1-based ordinal the fault plan scripts against).
    pub(crate) responses: Arc<polytops_obs::Counter>,
    /// Autotune requests served by the tuner worker (`tuner.requests`).
    pub(crate) tune_requests: Arc<polytops_obs::Counter>,
    /// Autotune requests answered from a remembered winner
    /// (`tuner.learned_hits`).
    pub(crate) tune_learned_hits: Arc<polytops_obs::Counter>,
    /// Trace id of the most recent fully-written schedule response —
    /// what the `trace` op returns.
    pub(crate) last_trace: AtomicU64,
}

impl ServerObs {
    fn new(trace: bool) -> ServerObs {
        let recorder = polytops_obs::Recorder::new(trace);
        ServerObs {
            requests: recorder.counter("service.requests"),
            batches: recorder.counter("service.batches"),
            responses: recorder.counter("service.responses"),
            tune_requests: recorder.counter("tuner.requests"),
            tune_learned_hits: recorder.counter("tuner.learned_hits"),
            last_trace: AtomicU64::new(0),
            recorder,
        }
    }

    /// The `stats` op's `solver` object, rebuilt from the unified
    /// counter registry (the pipeline folds into `solver.*` via
    /// [`polytops_core::PipelineStats::accumulate_into`]).
    pub(crate) fn solver_totals(&self) -> protocol::SolverTotals {
        let get = |name: &str| self.recorder.counter(name).get() as usize;
        protocol::SolverTotals {
            dual_pivots: get("solver.dual_pivots"),
            phase1_passes: get("solver.phase1_passes"),
            shared_seed_hits: get("solver.shared_seed_hits"),
            fast_path_dims: get("solver.fast_path_dims"),
            fast_path_fallbacks: get("solver.fast_path_fallbacks"),
        }
    }
}

/// State shared by every daemon thread.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) registry: ScopRegistry,
    /// Registry persistence, when `snapshot_dir` is configured.
    pub(crate) persist: Option<Persister>,
    /// Graceful shutdown: stop accepting work, drain, flush, exit.
    pub(crate) shutting_down: AtomicBool,
    /// Crash (fault injection): drop everything on the floor, exit.
    pub(crate) crashed: AtomicBool,
    /// Worker liveness, so the event loop knows when the drain is over.
    pub(crate) batcher_done: AtomicBool,
    pub(crate) tuner_done: AtomicBool,
    /// Telemetry: spans, counters, histograms.
    pub(crate) obs: ServerObs,
}

impl Shared {
    pub(crate) fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    pub(crate) fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The `stats` response for the current counters.
    pub(crate) fn stats_line(&self) -> String {
        protocol::stats_response(
            self.registry.stats(),
            self.obs.batches.get() as usize,
            self.obs.requests.get() as usize,
            self.obs.solver_totals(),
            protocol::TunerTotals {
                requests: self.obs.tune_requests.get() as usize,
                learned_hits: self.obs.tune_learned_hits.get() as usize,
            },
            self.persist.as_ref().map(Persister::totals).as_ref(),
            protocol::obs_to_json(&self.obs.recorder),
        )
    }

    /// The `trace` response: the span tree of the most recent
    /// fully-written schedule response, or `null` when none exists yet
    /// (or tracing is disabled).
    pub(crate) fn trace_line(&self) -> String {
        let trace = self.obs.last_trace.load(Ordering::Relaxed);
        if trace == 0 {
            return protocol::trace_response(None);
        }
        let spans = self.obs.recorder.spans_for(trace);
        if spans.is_empty() {
            return protocol::trace_response(None);
        }
        protocol::trace_response(Some((trace, spans)))
    }
}

/// The open telemetry spans of one in-flight schedule request. The
/// lifecycle children ("read", "admission", "solve", "serialize",
/// "write") hang off `root`; whoever owns a handle finishes it at the
/// matching lifecycle edge.
pub(crate) struct RequestTrace {
    /// The whole-lifecycle "request" span; finished when the response's
    /// last byte reaches the socket.
    pub(crate) root: polytops_obs::SpanHandle,
    /// The open "admission" child; finished when the batch window
    /// closes around this request.
    pub(crate) admission: Option<polytops_obs::SpanHandle>,
}

/// One admitted schedule request awaiting its batch.
pub(crate) struct Admitted {
    pub(crate) req: ScheduleRequest,
    pub(crate) conn: u64,
    /// Lifecycle spans, when tracing is enabled.
    pub(crate) trace: Option<RequestTrace>,
}

/// One autotune request on its way to the tuner worker.
pub(crate) struct TuneJob {
    pub(crate) req: AutotuneRequest,
    pub(crate) conn: u64,
}

/// The daemon entry point.
pub struct Server;

/// A running daemon: its bound address plus the event-loop, batcher and
/// tuner threads to join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    event: JoinHandle<()>,
    batcher: JoinHandle<()>,
    tuner: JoinHandle<()>,
}

impl Server {
    /// Binds the listen address and spawns the daemon threads.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound, or an
    /// invalid-input error if the snapshot directory cannot be opened.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        Server::start_on(listener, config)
    }

    /// Spawns the daemon on an already-bound listener (`config.addr` is
    /// ignored). This is the socket-activation-style handoff the
    /// restart tests and benches use: std's `TcpListener::bind` does
    /// not set `SO_REUSEADDR`, so a crashed daemon's lingering
    /// `TIME_WAIT` sockets would block rebinding its port for a minute
    /// — instead the supervisor binds once and hands each daemon
    /// generation a [`try_clone`](TcpListener::try_clone) of the same
    /// listener.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the listener cannot be inspected or
    /// made nonblocking, or an invalid-input error if the snapshot
    /// directory cannot be opened.
    pub fn start_on(listener: TcpListener, config: ServerConfig) -> std::io::Result<ServerHandle> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let registry = ScopRegistry::new(config.registry_capacity);
        let obs = ServerObs::new(config.trace);
        let persist = match &config.snapshot_dir {
            Some(dir) => Some(
                Persister::open(std::path::Path::new(dir), config.rotate_every, &registry)
                    .map_err(std::io::Error::other)?,
            ),
            None => None,
        };
        if let Some(persist) = &persist {
            persist.attach_recorder(Arc::clone(&obs.recorder));
        }
        let shared = Arc::new(Shared {
            registry,
            persist,
            config,
            addr,
            shutting_down: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            batcher_done: AtomicBool::new(false),
            tuner_done: AtomicBool::new(false),
            obs,
        });
        // Admission is bounded so a flood applies backpressure at the
        // event loop; responses and tune jobs are unbounded (their
        // volume is bounded by admitted work).
        let (admit_tx, admit_rx) = mpsc::sync_channel::<Admitted>(1024);
        let (tune_tx, tune_rx) = mpsc::channel::<TuneJob>();
        let (out_tx, out_rx) = mpsc::channel::<Outbound>();
        let batcher = {
            let shared = Arc::clone(&shared);
            let out = out_tx.clone();
            std::thread::spawn(move || batch_loop(&shared, &admit_rx, &out))
        };
        let tuner = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || tune_loop(&shared, &tune_rx, &out_tx))
        };
        let event = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || event_loop(listener, &shared, &admit_tx, &tune_tx, &out_rx))
        };
        Ok(ServerHandle {
            shared,
            event,
            batcher,
            tuner,
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolved, so ephemeral ports are
    /// concrete).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Registry statistics (for tests and benches; clients use the
    /// `stats` op).
    pub fn registry_stats(&self) -> polytops_core::RegistryStats {
        self.shared.registry.stats()
    }

    /// Persistence counters, when persistence is enabled.
    pub fn persist_totals(&self) -> Option<protocol::PersistTotals> {
        self.shared.persist.as_ref().map(Persister::totals)
    }

    /// Whether a scripted fault crashed this daemon.
    pub fn crashed(&self) -> bool {
        self.shared.is_crashed()
    }

    /// Requests a graceful shutdown (equivalent to the `shutdown` op)
    /// and waits for in-flight batches to finish.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Waits for the daemon to stop (after a `shutdown` op, a
    /// [`shutdown`](ServerHandle::shutdown) call, or a scripted crash).
    pub fn join(self) {
        let _ = self.event.join();
        let _ = self.batcher.join();
        let _ = self.tuner.join();
    }
}

/// Crashes the daemon: every thread observes the flag and exits without
/// flushing. Applies the [`FaultPlan::torn_snapshot_bytes`] truncation
/// first, so the "snapshot rotation torn by the kill" scenario is
/// already on disk when the next generation boots.
fn crash(shared: &Shared) {
    if let (Some(bytes), Some(dir)) = (
        shared.config.faults.torn_snapshot_bytes,
        shared.config.snapshot_dir.as_ref(),
    ) {
        let path = std::path::Path::new(dir).join("snapshot");
        if let Ok(file) = std::fs::OpenOptions::new().write(true).open(path) {
            let _ = file.set_len(bytes);
        }
    }
    shared.crashed.store(true, Ordering::SeqCst);
}

/// The tuner worker: autotune explorations run here, one at a time, so
/// the daemon's parallelism stays bounded by one batch pool plus one
/// tuner pool no matter how many clients tune concurrently.
fn tune_loop(shared: &Arc<Shared>, rx: &Receiver<TuneJob>, out: &Sender<Outbound>) {
    loop {
        let job = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if shared.is_shutting_down() || shared.is_crashed() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if shared.is_crashed() {
            break;
        }
        let req = job.req;
        shared.obs.requests.inc();
        shared.obs.batches.inc();
        let budget = polytops_core::tune::TuneBudget {
            max_candidates: req.max_candidates,
            threads: shared.config.threads,
            param_estimate: req.param_estimate,
        };
        // Repeated tuning of a known SCoP rides the same registry
        // residency as the schedule op: the entry's dependence analysis
        // and Farkas caches persist across autotune requests/clients.
        let (entry, _) = shared.registry.resolve(&req.scop.name, &req.scop);
        shared.obs.tune_requests.inc();
        let line = match polytops_core::tune::explore_entry(&entry, &req.machine, &budget) {
            Ok(outcome) if outcome.certified => {
                if outcome.learned {
                    shared.obs.tune_learned_hits.inc();
                }
                protocol::autotune_response(&req.id, &outcome)
            }
            Ok(_) => protocol::error_response(
                &req.id,
                "internal error: tuned schedule failed oracle certification",
            ),
            Err(e) => protocol::error_response(&req.id, &e.to_string()),
        };
        if let Some(persist) = &shared.persist {
            persist.record(
                &shared.registry,
                &[(req.scop.name.clone(), req.scop.clone())],
            );
        }
        let _ = out.send(Outbound {
            conn: job.conn,
            line,
            trace: None,
        });
    }
    shared.tuner_done.store(true, Ordering::SeqCst);
}

fn batch_loop(shared: &Arc<Shared>, rx: &Receiver<Admitted>, out: &Sender<Outbound>) {
    loop {
        // Wait for the request that opens the next window, polling the
        // shutdown flags so a quiet daemon can stop.
        let first = loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(admitted) => break Some(admitted),
                Err(RecvTimeoutError::Timeout) => {
                    if shared.is_shutting_down() || shared.is_crashed() {
                        break None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break None,
            }
        };
        let Some(first) = first else { break };
        if shared.is_crashed() {
            break;
        }
        let mut batch = vec![first];
        let deadline = Instant::now() + Duration::from_millis(shared.config.window_ms);
        while batch.len() < shared.config.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left) {
                Ok(admitted) => batch.push(admitted),
                Err(_) => break,
            }
        }
        // The window just closed: every member's admission wait ends
        // here, where the batch is committed to execution.
        for admitted in &mut batch {
            if let Some(trace) = &mut admitted.trace {
                if let Some(admission) = trace.admission.take() {
                    admission.finish();
                }
            }
        }
        let windows = shared.obs.batches.inc() as usize;
        shared.obs.requests.add(batch.len() as u64);
        // `split_components` changes scenario semantics per request, so
        // a mixed batch runs as two sets (responses still correlate by
        // id; cross-request state lives in the registry either way).
        let (plain, split): (Vec<_>, Vec<_>) =
            batch.into_iter().partition(|a| !a.req.split_components);
        let mut responses = Vec::new();
        let mut touched = Vec::new();
        for (group, split_flag) in [(plain, false), (split, true)] {
            if !group.is_empty() {
                process_group(shared, group, split_flag, &mut responses, &mut touched);
            }
        }
        // Durability before delivery: the journal records this window's
        // admissions (fsynced) before any client can observe a
        // response, so an acknowledged answer is always replayable.
        if let Some(persist) = &shared.persist {
            persist.record(&shared.registry, &touched);
        }
        // The kill fault fires between durability and delivery — the
        // worst crash point: clients must retry, and the retry must
        // find the registry warm.
        if shared.config.faults.kill_after_batches == Some(windows) {
            crash(shared);
            break;
        }
        for (conn, line, trace) in responses {
            let _ = out.send(Outbound { conn, line, trace });
        }
    }
    // A graceful exit snapshots the final registry state so the next
    // generation boots warm without journal replay.
    if !shared.is_crashed() {
        if let Some(persist) = &shared.persist {
            persist.rotate(&shared.registry);
        }
    }
    shared.batcher_done.store(true, Ordering::SeqCst);
}

/// Executes one admission group as a single `ScenarioSet`, pushing one
/// response line per request (with its still-open "request" span, when
/// traced) and recording which SCoPs were touched (for the persistence
/// journal).
fn process_group(
    shared: &Arc<Shared>,
    group: Vec<Admitted>,
    split: bool,
    responses: &mut Vec<(u64, String, Option<polytops_obs::SpanHandle>)>,
    touched: &mut Vec<(String, Scop)>,
) {
    struct Slot {
        admitted: Admitted,
        entry: Arc<ScopEntry>,
        hit: bool,
        /// Scenario indices of this request inside the shared set.
        scenarios: Vec<usize>,
        /// The open "solve" span covering this request's share of the
        /// batch execution; finished right after `run_sharded` returns.
        solve: Option<polytops_obs::SpanHandle>,
    }

    let mut set = ScenarioSet::new();
    set.split_components(split);
    // SCoP slots already admitted this batch, by registry entry
    // identity — two clients submitting the same kernel share one slot
    // (and therefore one analysis and cache group) within the batch.
    let mut slot_of_entry: Vec<(*const ScopEntry, usize)> = Vec::new();
    let mut slots: Vec<Slot> = Vec::with_capacity(group.len());
    for admitted in group {
        let (entry, hit) = shared
            .registry
            .resolve(&admitted.req.name, &admitted.req.scop);
        let key = Arc::as_ptr(&entry);
        let scop_idx = match slot_of_entry.iter().find(|(k, _)| *k == key) {
            Some(&(_, idx)) => idx,
            None => {
                touched.push((admitted.req.name.clone(), admitted.req.scop.clone()));
                let idx = set.add_resident_scop(Arc::clone(&entry));
                slot_of_entry.push((key, idx));
                idx
            }
        };
        // Each scenario's engine run links back under this request's
        // "solve" span, so the trace tree shows per-job queue wait and
        // per-dimension pipeline work no matter which pool thread
        // executes it.
        let solve = admitted
            .trace
            .as_ref()
            .map(|trace| trace.root.child("solve"));
        let link = solve.as_ref().and_then(polytops_obs::SpanHandle::link);
        let scenarios = admitted
            .req
            .scenarios
            .iter()
            .map(|spec| {
                let options = polytops_core::EngineOptions {
                    trace: link.clone(),
                    ..Default::default()
                };
                set.add_scenario_with_options(
                    scop_idx,
                    spec.name.clone(),
                    spec.config.clone(),
                    options,
                )
            })
            .collect();
        slots.push(Slot {
            admitted,
            entry,
            hit,
            scenarios,
            solve,
        });
    }

    let results = set.run_sharded(shared.config.threads);
    for slot in &mut slots {
        if let Some(solve) = slot.solve.take() {
            solve.finish();
        }
    }
    for result in results.iter().flatten() {
        result.stats.accumulate_into(&shared.obs.recorder);
    }

    for mut slot in slots {
        let serialize = slot
            .admitted
            .trace
            .as_ref()
            .map(|trace| trace.root.child("serialize"));
        let deps = slot.entry.deps();
        let reports: Vec<_> = slot
            .admitted
            .req
            .scenarios
            .iter()
            .zip(&slot.scenarios)
            .map(|(spec, &idx)| {
                let result = results[idx].clone();
                let certified = match &result {
                    Ok(report) => protocol::certify(&deps, report),
                    Err(_) => false,
                };
                (spec.name.clone(), result, certified)
            })
            .collect();
        let line = if reports.iter().any(|(_, r, c)| r.is_ok() && !c) {
            // The oracle is the last line of defense; a violation must
            // never leave the daemon as a schedule.
            protocol::error_response(
                &slot.admitted.req.id,
                "internal error: schedule failed oracle certification",
            )
        } else {
            let stats = polytops_core::json::Json::Array(
                reports
                    .iter()
                    .map(|(name, result, _)| {
                        polytops_core::json::Json::Object(std::collections::BTreeMap::from([
                            (
                                "name".to_string(),
                                polytops_core::json::Json::Str(name.clone()),
                            ),
                            (
                                "pipeline".to_string(),
                                result
                                    .as_ref()
                                    .map_or(polytops_core::json::Json::Null, |r| {
                                        protocol::stats_to_json(&r.stats)
                                    }),
                            ),
                        ]))
                    })
                    .collect(),
            );
            protocol::schedule_response(
                &slot.admitted.req.id,
                protocol::results_to_json(&reports),
                stats,
                slot.hit,
                slot.entry.fingerprint(),
            )
        };
        if let Some(serialize) = serialize {
            serialize.finish();
        }
        let root = slot.admitted.trace.take().map(|trace| trace.root);
        responses.push((slot.admitted.conn, line, root));
    }
}
