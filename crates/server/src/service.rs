//! The daemon: listener, per-connection readers, the admission-window
//! batcher, and graceful shutdown.
//!
//! Thread shape (see `docs/ARCHITECTURE.md` for the request lifecycle):
//!
//! ```text
//! accept thread ──► one reader thread per connection
//!                        │  parse line → Request
//!                        │  ping/stats/shutdown: answered immediately
//!                        ▼  schedule: admitted into the batch channel
//!                   batcher thread: first request opens a window,
//!                   window_ms/max_batch close it → one ScenarioSet
//!                   (SCoPs resolved through the ScopRegistry) →
//!                   run_sharded(threads) → per-request responses
//! ```
//!
//! Responses to one connection are serialized under a per-connection
//! write lock, one line each, so batches never interleave bytes.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use polytops_core::registry::{ScopEntry, ScopRegistry};
use polytops_core::scenario::ScenarioSet;

use crate::protocol::{self, Request, ScheduleRequest};

/// Daemon configuration. Every knob is also a `polytopsd serve` flag
/// (see `docs/CONFIG.md`).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (tests/benches).
    pub addr: String,
    /// Admission window in milliseconds: how long the batcher keeps
    /// collecting after the first request of a batch arrives. `0`
    /// dispatches every request as its own batch (lowest latency, no
    /// cross-request batching).
    pub window_ms: u64,
    /// Maximum requests per batch (the window closes early when full).
    pub max_batch: usize,
    /// Worker threads for the scenario engine's work-stealing pool.
    pub threads: usize,
    /// LRU bound of the SCoP registry (resident SCoPs).
    pub registry_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            window_ms: 2,
            max_batch: 64,
            threads: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8)),
            registry_capacity: 128,
        }
    }
}

/// Cumulative solver counters across every batch (the `stats` op's
/// `solver` object). Relaxed atomics: these are diagnostic sums, never
/// part of the bit-identity contract.
#[derive(Default)]
struct SolverCounters {
    dual_pivots: AtomicUsize,
    phase1_passes: AtomicUsize,
    shared_seed_hits: AtomicUsize,
    fast_path_dims: AtomicUsize,
    fast_path_fallbacks: AtomicUsize,
}

impl SolverCounters {
    /// Folds one scenario's pipeline statistics into the totals.
    fn accumulate(&self, stats: &polytops_core::PipelineStats) {
        self.dual_pivots
            .fetch_add(stats.dual_pivots(), Ordering::Relaxed);
        self.phase1_passes
            .fetch_add(stats.phase1_passes(), Ordering::Relaxed);
        self.shared_seed_hits
            .fetch_add(stats.shared_seed_hits, Ordering::Relaxed);
        self.fast_path_dims
            .fetch_add(stats.fast_path_dims, Ordering::Relaxed);
        self.fast_path_fallbacks
            .fetch_add(stats.fast_path_fallbacks, Ordering::Relaxed);
    }

    fn totals(&self) -> protocol::SolverTotals {
        protocol::SolverTotals {
            dual_pivots: self.dual_pivots.load(Ordering::Relaxed),
            phase1_passes: self.phase1_passes.load(Ordering::Relaxed),
            shared_seed_hits: self.shared_seed_hits.load(Ordering::Relaxed),
            fast_path_dims: self.fast_path_dims.load(Ordering::Relaxed),
            fast_path_fallbacks: self.fast_path_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every daemon thread.
struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    registry: ScopRegistry,
    shutting_down: AtomicBool,
    requests: AtomicUsize,
    batches: AtomicUsize,
    solver: SolverCounters,
    /// Serializes autotune explorations: each one spawns its own
    /// `--threads`-wide engine pool, so without this N concurrent
    /// autotune clients would run N pools and the thread knob would no
    /// longer bound the daemon's parallelism (worst case stays one
    /// batch pool + one tuner pool).
    autotune: Mutex<()>,
}

impl Shared {
    /// Flips the shutdown flag and wakes the accept loop (which may be
    /// blocked in `accept`) with a throwaway connection.
    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// The write half of a connection, shared by reader and batcher.
type Reply = Arc<Mutex<TcpStream>>;

/// One admitted schedule request awaiting its batch.
struct Admitted {
    req: ScheduleRequest,
    reply: Reply,
}

/// The daemon entry point.
pub struct Server;

/// A running daemon: its bound address plus the accept/batcher threads
/// to join. Reader threads are detached (they exit when their client
/// disconnects or the process ends).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    batcher: JoinHandle<()>,
}

impl Server {
    /// Binds the listen address and spawns the daemon threads.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: ScopRegistry::new(config.registry_capacity),
            config,
            addr,
            shutting_down: AtomicBool::new(false),
            requests: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            solver: SolverCounters::default(),
            autotune: Mutex::new(()),
        });
        // A bounded queue so a flood of requests applies backpressure to
        // readers instead of growing without bound.
        let (tx, rx) = mpsc::sync_channel::<Admitted>(1024);
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batch_loop(&shared, &rx))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared, &tx))
        };
        Ok(ServerHandle {
            shared,
            accept,
            batcher,
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolved, so ephemeral ports are
    /// concrete).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Registry statistics (for tests and benches; clients use the
    /// `stats` op).
    pub fn registry_stats(&self) -> polytops_core::RegistryStats {
        self.shared.registry.stats()
    }

    /// Requests a graceful shutdown (equivalent to the `shutdown` op)
    /// and waits for in-flight batches to finish.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Waits for the daemon to stop (after a `shutdown` op or
    /// [`shutdown`](ServerHandle::shutdown) call).
    pub fn join(self) {
        let _ = self.accept.join();
        let _ = self.batcher.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, tx: &SyncSender<Admitted>) {
    for stream in listener.incoming() {
        if shared.is_shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        std::thread::spawn(move || serve_connection(stream, &shared, &tx));
    }
    // Dropping the last admission sender lets the batcher drain and
    // exit; readers hold clones that die with their connections.
}

/// Writes one response line under the connection's write lock. One
/// `write_all` per line (payload + `\n` together): a trailing 1-byte
/// write would trip Nagle against the client's delayed ACK and stall
/// fast responses by tens of milliseconds.
fn send_line(reply: &Reply, line: &str) {
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    let mut stream = reply.lock().expect("reply lock");
    // A vanished client is not a daemon error; drop the response.
    let _ = stream.write_all(&framed).and_then(|()| stream.flush());
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>, tx: &SyncSender<Admitted>) {
    // Responses are complete lines; never hold them back for coalescing.
    let _ = stream.set_nodelay(true);
    // Responses are written from the single batcher thread: a client
    // that stops reading (full TCP send buffer) must not wedge every
    // other client's batches behind a blocked write_all. On timeout the
    // response is dropped — the client was not consuming it anyway.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let reply: Reply = Arc::new(Mutex::new(write_half));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => send_line(
                &reply,
                &protocol::error_response(&polytops_core::json::Json::Null, &e),
            ),
            Ok(Request::Ping) => send_line(&reply, r#"{"ok":true,"pong":true}"#),
            Ok(Request::Stats) => send_line(
                &reply,
                &protocol::stats_response(
                    shared.registry.stats(),
                    shared.batches.load(Ordering::Relaxed),
                    shared.requests.load(Ordering::Relaxed),
                    shared.solver.totals(),
                ),
            ),
            Ok(Request::Shutdown) => {
                send_line(&reply, r#"{"ok":true,"shutting_down":true}"#);
                shared.begin_shutdown();
            }
            Ok(Request::Autotune(req)) => {
                if shared.is_shutting_down() {
                    send_line(&reply, &protocol::error_response(&req.id, "shutting down"));
                } else {
                    // The tuner is its own batch: it synthesizes a whole
                    // candidate lattice and runs it on the engine pool,
                    // so it bypasses the admission window and answers
                    // from the reader thread — one exploration at a
                    // time (see `Shared::autotune`).
                    shared.requests.fetch_add(1, Ordering::Relaxed);
                    shared.batches.fetch_add(1, Ordering::Relaxed);
                    let budget = polytops_core::tune::TuneBudget {
                        max_candidates: req.max_candidates,
                        threads: shared.config.threads,
                        param_estimate: req.param_estimate,
                    };
                    // Repeated tuning of a known SCoP rides the same
                    // registry residency as the schedule op: the entry's
                    // dependence analysis and Farkas caches persist
                    // across autotune requests and clients.
                    let (entry, _) = shared.registry.resolve(&req.scop.name, &req.scop);
                    // The guard protects no data, so a panic inside a
                    // previous exploration must not poison the op for
                    // the daemon's remaining lifetime.
                    let _one_at_a_time = shared
                        .autotune
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let line =
                        match polytops_core::tune::explore_entry(&entry, &req.machine, &budget) {
                            Ok(outcome) if outcome.certified => {
                                protocol::autotune_response(&req.id, &outcome)
                            }
                            Ok(_) => protocol::error_response(
                                &req.id,
                                "internal error: tuned schedule failed oracle certification",
                            ),
                            Err(e) => protocol::error_response(&req.id, &e.to_string()),
                        };
                    send_line(&reply, &line);
                }
            }
            Ok(Request::Schedule(req)) => {
                if shared.is_shutting_down() {
                    send_line(&reply, &protocol::error_response(&req.id, "shutting down"));
                } else if let Err(e) = tx.send(Admitted {
                    req: *req,
                    reply: Arc::clone(&reply),
                }) {
                    let Admitted { req, reply } = e.0;
                    send_line(&reply, &protocol::error_response(&req.id, "shutting down"));
                }
            }
        }
    }
}

fn batch_loop(shared: &Arc<Shared>, rx: &Receiver<Admitted>) {
    loop {
        // Wait for the request that opens the next window, polling the
        // shutdown flag so a quiet daemon can stop.
        let first = loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(admitted) => break Some(admitted),
                Err(RecvTimeoutError::Timeout) => {
                    if shared.is_shutting_down() {
                        break None;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break None,
            }
        };
        let Some(first) = first else { break };
        let mut batch = vec![first];
        let deadline = Instant::now() + Duration::from_millis(shared.config.window_ms);
        while batch.len() < shared.config.max_batch {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left) {
                Ok(admitted) => batch.push(admitted),
                Err(_) => break,
            }
        }
        shared.batches.fetch_add(1, Ordering::Relaxed);
        shared.requests.fetch_add(batch.len(), Ordering::Relaxed);
        // `split_components` changes scenario semantics per request, so
        // a mixed batch runs as two sets (responses still correlate by
        // id; cross-request state lives in the registry either way).
        let (plain, split): (Vec<_>, Vec<_>) =
            batch.into_iter().partition(|a| !a.req.split_components);
        for (group, split_flag) in [(plain, false), (split, true)] {
            if !group.is_empty() {
                process_group(shared, group, split_flag);
            }
        }
    }
}

/// Executes one admission group as a single `ScenarioSet` and answers
/// every request in it.
fn process_group(shared: &Arc<Shared>, group: Vec<Admitted>, split: bool) {
    struct Slot {
        admitted: Admitted,
        entry: Arc<ScopEntry>,
        hit: bool,
        /// Scenario indices of this request inside the shared set.
        scenarios: Vec<usize>,
    }

    let mut set = ScenarioSet::new();
    set.split_components(split);
    // SCoP slots already admitted this batch, by registry entry
    // identity — two clients submitting the same kernel share one slot
    // (and therefore one analysis and cache group) within the batch.
    let mut slot_of_entry: Vec<(*const ScopEntry, usize)> = Vec::new();
    let mut slots: Vec<Slot> = Vec::with_capacity(group.len());
    for admitted in group {
        let (entry, hit) = shared
            .registry
            .resolve(&admitted.req.name, &admitted.req.scop);
        let key = Arc::as_ptr(&entry);
        let scop_idx = match slot_of_entry.iter().find(|(k, _)| *k == key) {
            Some(&(_, idx)) => idx,
            None => {
                let idx = set.add_resident_scop(Arc::clone(&entry));
                slot_of_entry.push((key, idx));
                idx
            }
        };
        let scenarios = admitted
            .req
            .scenarios
            .iter()
            .map(|spec| set.add_scenario(scop_idx, spec.name.clone(), spec.config.clone()))
            .collect();
        slots.push(Slot {
            admitted,
            entry,
            hit,
            scenarios,
        });
    }

    let results = set.run_sharded(shared.config.threads);
    for result in results.iter().flatten() {
        shared.solver.accumulate(&result.stats);
    }

    for slot in slots {
        let deps = slot.entry.deps();
        let reports: Vec<_> = slot
            .admitted
            .req
            .scenarios
            .iter()
            .zip(&slot.scenarios)
            .map(|(spec, &idx)| {
                let result = results[idx].clone();
                let certified = match &result {
                    Ok(report) => protocol::certify(&deps, report),
                    Err(_) => false,
                };
                (spec.name.clone(), result, certified)
            })
            .collect();
        let line = if reports.iter().any(|(_, r, c)| r.is_ok() && !c) {
            // The oracle is the last line of defense; a violation must
            // never leave the daemon as a schedule.
            protocol::error_response(
                &slot.admitted.req.id,
                "internal error: schedule failed oracle certification",
            )
        } else {
            let stats = polytops_core::json::Json::Array(
                reports
                    .iter()
                    .map(|(name, result, _)| {
                        polytops_core::json::Json::Object(std::collections::BTreeMap::from([
                            (
                                "name".to_string(),
                                polytops_core::json::Json::Str(name.clone()),
                            ),
                            (
                                "pipeline".to_string(),
                                result
                                    .as_ref()
                                    .map_or(polytops_core::json::Json::Null, |r| {
                                        protocol::stats_to_json(&r.stats)
                                    }),
                            ),
                        ]))
                    })
                    .collect(),
            );
            protocol::schedule_response(
                &slot.admitted.req.id,
                protocol::results_to_json(&reports),
                stats,
                slot.hit,
                slot.entry.fingerprint(),
            )
        };
        send_line(&slot.admitted.reply, &line);
    }
}
