//! A small blocking client for the `polytopsd` line protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use polytops_core::json::{self, Json};

/// A connected client: line-oriented send/receive plus op helpers.
///
/// Responses to one connection arrive in request order for requests
/// sharing a `split_components` value (see `docs/SERVICE.md`), so the
/// simple pattern "send N lines, read N lines" is valid for the common
/// case of uniform requests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are complete lines; coalescing them behind Nagle
        // only adds delayed-ACK latency.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`connect`](Client::connect) with retries until `timeout` — for
    /// scripts (and CI) racing a freshly spawned daemon.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the timeout elapses.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request line (the newline is appended here).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        // One write per line — a separate 1-byte `\n` write would trip
        // Nagle against the daemon's delayed ACK.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()
    }

    /// Receives one response line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates read errors; a closed connection reports
    /// `UnexpectedEof`.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request and waits for one response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from either direction.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// Sends a request and parses the response as JSON.
    ///
    /// # Errors
    ///
    /// I/O errors, plus `InvalidData` when the response is not valid
    /// JSON (which would be a daemon bug).
    pub fn roundtrip_json(&mut self, line: &str) -> std::io::Result<Json> {
        let response = self.roundtrip(line)?;
        json::parse(&response).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// The `stats` op.
    ///
    /// # Errors
    ///
    /// Same contract as [`roundtrip_json`](Client::roundtrip_json).
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.roundtrip_json(r#"{"op":"stats"}"#)
    }

    /// The `shutdown` op: asks the daemon to finish in-flight batches
    /// and stop, returning its acknowledgement.
    ///
    /// # Errors
    ///
    /// Same contract as [`roundtrip_json`](Client::roundtrip_json).
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.roundtrip_json(r#"{"op":"shutdown"}"#)
    }
}
