//! A small blocking client for the `polytopsd` line protocol, plus
//! [`RetryClient`] — the restart-riding wrapper that resubmits through
//! daemon kills and connection drops.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use polytops_core::json::{self, Json};

/// A connected client: line-oriented send/receive plus op helpers.
///
/// Responses to one connection arrive in request order for requests
/// sharing a `split_components` value (see `docs/SERVICE.md`), so the
/// simple pattern "send N lines, read N lines" is valid for the common
/// case of uniform requests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are complete lines; coalescing them behind Nagle
        // only adds delayed-ACK latency.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`connect`](Client::connect) with retries until `timeout` — for
    /// scripts (and CI) racing a freshly spawned daemon.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the timeout elapses.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Sends one request line (the newline is appended here).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        // One write per line — a separate 1-byte `\n` write would trip
        // Nagle against the daemon's delayed ACK.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()
    }

    /// Receives one response line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates read errors; a closed connection reports
    /// `UnexpectedEof`.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request and waits for one response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from either direction.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// Sends a request and parses the response as JSON.
    ///
    /// # Errors
    ///
    /// I/O errors, plus `InvalidData` when the response is not valid
    /// JSON (which would be a daemon bug).
    pub fn roundtrip_json(&mut self, line: &str) -> std::io::Result<Json> {
        let response = self.roundtrip(line)?;
        json::parse(&response).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// The `stats` op.
    ///
    /// # Errors
    ///
    /// Same contract as [`roundtrip_json`](Client::roundtrip_json).
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.roundtrip_json(r#"{"op":"stats"}"#)
    }

    /// The `shutdown` op: asks the daemon to finish in-flight batches
    /// and stop, returning its acknowledgement.
    ///
    /// # Errors
    ///
    /// Same contract as [`roundtrip_json`](Client::roundtrip_json).
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.roundtrip_json(r#"{"op":"shutdown"}"#)
    }
}

/// Bounded exponential backoff for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per request (connect + send + receive counts as
    /// one attempt).
    pub attempts: u32,
    /// Delay after the first failed attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 10,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based).
    fn delay(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(10);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// Whether an error is worth a reconnect-and-resend. Connection-level
/// failures (the daemon died, is restarting, or dropped us mid-stream)
/// qualify; protocol-level errors (a well-formed error response) do
/// not — those arrive as successful roundtrips.
///
/// `InvalidData` is retryable because the daemon never *writes* invalid
/// JSON: a response that fails to parse is the truncated tail of a
/// dying connection.
fn retryable(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    matches!(
        kind,
        ErrorKind::ConnectionRefused
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::TimedOut
            | ErrorKind::NotConnected
            | ErrorKind::Interrupted
            | ErrorKind::InvalidData
    )
}

/// A client that survives daemon restarts: on any connection-level
/// failure it reconnects (with [`RetryPolicy`] backoff) and resends the
/// request. Safe because the daemon's responses are deterministic and
/// requests are idempotent — a resend can only produce the same bytes,
/// so a request submitted during a kill/restart window still gets its
/// bit-identical answer.
#[derive(Debug)]
pub struct RetryClient {
    addr: String,
    policy: RetryPolicy,
    inner: Option<Client>,
}

impl RetryClient {
    /// Creates a lazy retrying client for `addr` (no connection is
    /// attempted until the first request).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryClient {
        RetryClient {
            addr: addr.into(),
            policy,
            inner: None,
        }
    }

    /// The configured daemon address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One attempt: reuse (or establish) the connection, send, receive,
    /// and validate that the response parses as JSON (a torn line from
    /// a dying daemon must count as a failed attempt, not a response).
    fn attempt(&mut self, line: &str) -> std::io::Result<String> {
        if self.inner.is_none() {
            self.inner = Some(Client::connect(&self.addr)?);
        }
        let client = self.inner.as_mut().expect("connected above");
        let response = client.roundtrip(line)?;
        json::parse(&response)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(response)
    }

    /// Sends a request, retrying through connection failures, and
    /// returns the response line.
    ///
    /// # Errors
    ///
    /// Returns the last error once the attempt budget is exhausted, or
    /// immediately for non-retryable I/O errors.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        let mut retry = 0;
        loop {
            match self.attempt(line) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    // The connection is suspect after any failure;
                    // rebuild it on the next attempt.
                    self.inner = None;
                    if !retryable(e.kind()) || retry + 1 >= self.policy.attempts {
                        return Err(e);
                    }
                    std::thread::sleep(self.policy.delay(retry));
                    retry += 1;
                }
            }
        }
    }

    /// [`roundtrip`](RetryClient::roundtrip), parsed as JSON.
    ///
    /// # Errors
    ///
    /// Same contract as [`roundtrip`](RetryClient::roundtrip); the
    /// response is already parse-validated.
    pub fn roundtrip_json(&mut self, line: &str) -> std::io::Result<Json> {
        let response = self.roundtrip(line)?;
        json::parse(&response).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}
