//! `polytops-router`: a front process that makes N daemon shards look
//! like one daemon.
//!
//! ```text
//!                      ┌────────────► polytopsd shard 0
//! clients ──► router ──┼────────────► polytopsd shard 1
//!                      └────────────► polytopsd shard 2
//! ```
//!
//! Schedule and autotune requests are routed by the SCoP's canonical
//! *fingerprint* over a consistent-hash ring ([`HashRing`]), so every
//! submission of one SCoP — from any client — lands on the same shard
//! and rides that shard's registry residency and Farkas caches. The
//! router never interprets results: it forwards the daemon's response
//! line byte-for-byte, so the bit-identity contract holds through it
//! unchanged.
//!
//! Upstream connections are per-client-connection [`RetryClient`]s:
//! a shard restart mid-stream is absorbed by reconnect-and-resend with
//! backoff, invisible to the client beyond latency.
//!
//! The router itself is a thin line-shuffler — a thread per client
//! connection is deliberate here. The scale point of the fleet is the
//! shards (each holding a solver pool and a registry), not the front;
//! the daemon behind each shard runs the nonblocking event loop.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use polytops_core::json::Json;
use polytops_core::registry::{fingerprint, fnv1a};

use crate::client::{RetryClient, RetryPolicy};
use crate::protocol::{self, Request};

/// A consistent-hash ring over shard labels.
///
/// Each shard contributes `virtual_nodes` points (`fnv1a("label#i")`)
/// on a `u64` ring; a key is owned by the first point clockwise from
/// its hash. The properties the fleet depends on:
///
/// - **Stability under add**: adding a shard moves only the keys the
///   new shard now owns (~K/N of them); every other key keeps its
///   shard, preserving its registry residency.
/// - **Stability under remove**: removing a shard moves only the keys
///   it owned; survivors keep theirs.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard index)`, sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring for `labels` with `virtual_nodes` points each.
    /// Labels should be the shard addresses (stable identities):
    /// relabeling a shard moves its keys.
    pub fn new(labels: &[String], virtual_nodes: usize) -> HashRing {
        let mut points = Vec::with_capacity(labels.len() * virtual_nodes);
        for (idx, label) in labels.iter().enumerate() {
            for v in 0..virtual_nodes {
                points.push((fnv1a(format!("{label}#{v}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            shards: labels.len(),
        }
    }

    /// Number of shards behind the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key` (a SCoP fingerprint): the first ring
    /// point at or clockwise-after the key, wrapping at the top.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty (a router requires ≥ 1 shard).
    pub fn shard_of(&self, key: u64) -> usize {
        assert!(!self.points.is_empty(), "hash ring has no shards");
        let at = self.points.partition_point(|&(point, _)| point < key);
        self.points[at % self.points.len()].1
    }
}

/// Router configuration. Every knob is also a `polytops-router` flag
/// (see `docs/CONFIG.md`).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard daemon addresses (the ring's labels — keep them stable).
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub virtual_nodes: usize,
    /// Upstream reconnect policy (per shard, per client connection).
    pub retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            virtual_nodes: 64,
            retry: RetryPolicy::default(),
        }
    }
}

struct RouterShared {
    config: RouterConfig,
    ring: HashRing,
    addr: SocketAddr,
    stopping: AtomicBool,
    /// Router telemetry: fleet-wide and per-shard forward counters and
    /// latency histograms, plus the trace-id allocator for stamping
    /// forwarded envelopes. Spans stay disabled — the router is a
    /// line-shuffler; its story is counters, the shards' is spans.
    obs: Arc<polytops_obs::Recorder>,
}

impl RouterShared {
    fn begin_stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Wake the accept loop if it is parked in accept().
        let _ = TcpStream::connect(self.addr);
    }
}

/// The router entry point.
pub struct Router;

/// A running router: its bound address plus the accept thread to join.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    accept: JoinHandle<()>,
}

impl Router {
    /// Binds the listen address and spawns the router.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the address cannot be bound, or an
    /// invalid-input error when no shards are configured.
    pub fn start(config: RouterConfig) -> std::io::Result<RouterHandle> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router requires at least one shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let ring = HashRing::new(&config.shards, config.virtual_nodes);
        let shared = Arc::new(RouterShared {
            config,
            ring,
            addr,
            stopping: AtomicBool::new(false),
            obs: polytops_obs::Recorder::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(RouterHandle { shared, accept })
    }
}

impl RouterHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops the router (shards keep running) and waits for the accept
    /// thread. Client connection threads die with their clients.
    pub fn shutdown(self) {
        self.shared.begin_stop();
        let _ = self.accept.join();
    }

    /// Waits for the router to stop (a client's `shutdown` op).
    pub fn join(self) {
        let _ = self.accept.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || serve_client(stream, &shared));
    }
}

/// Writes one line (newline appended) to the client; a vanished client
/// is not a router error.
fn send_line(stream: &mut TcpStream, line: &str) {
    let mut framed = Vec::with_capacity(line.len() + 1);
    framed.extend_from_slice(line.as_bytes());
    framed.push(b'\n');
    let _ = stream.write_all(&framed).and_then(|()| stream.flush());
}

fn serve_client(stream: TcpStream, shared: &Arc<RouterShared>) {
    let _ = stream.set_nodelay(true);
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    // Per-client upstream connections, established on first use: each
    // client's requests to one shard flow over one ordered stream, so
    // per-connection response ordering survives the indirection.
    let mut upstreams: Vec<Option<RetryClient>> =
        (0..shared.config.shards.len()).map(|_| None).collect();
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(&line) {
            Err(e) => send_line(&mut write_half, &protocol::error_response(&Json::Null, &e)),
            Ok(Request::Ping) => send_line(&mut write_half, r#"{"ok":true,"pong":true}"#),
            Ok(Request::Stats) => {
                let merged = merged_stats(shared, &mut upstreams);
                send_line(&mut write_half, &merged);
            }
            Ok(Request::Shutdown) => {
                // Fleet shutdown: every shard first, then the router.
                for shard in 0..upstreams.len() {
                    let _ =
                        upstream(shared, &mut upstreams, shard).roundtrip(r#"{"op":"shutdown"}"#);
                }
                send_line(&mut write_half, r#"{"ok":true,"shutting_down":true}"#);
                shared.begin_stop();
                return;
            }
            Ok(Request::Trace) => {
                // Span rings are shard-local and `trace` carries no
                // SCoP to route by; query the owning shard directly.
                send_line(
                    &mut write_half,
                    &protocol::error_response(
                        &Json::Null,
                        "trace is shard-local: send it to a shard daemon directly",
                    ),
                );
            }
            Ok(Request::Schedule(req)) => {
                let shard = shared.ring.shard_of(fingerprint(&req.scop));
                // Stamp a request-scoped trace id into the envelope
                // (when the client did not send one), so the shard's
                // span tree is correlatable with this hop. Responses
                // are still relayed byte-for-byte.
                let line = if req.trace.is_none() {
                    stamp_trace(&line, shared.obs.begin_trace())
                } else {
                    line.clone()
                };
                forward(
                    shared,
                    &mut upstreams,
                    shard,
                    &line,
                    &req.id,
                    &mut write_half,
                );
            }
            Ok(Request::Autotune(req)) => {
                let shard = shared.ring.shard_of(fingerprint(&req.scop));
                forward(
                    shared,
                    &mut upstreams,
                    shard,
                    &line,
                    &req.id,
                    &mut write_half,
                );
            }
        }
    }
}

/// The lazily connected [`RetryClient`] for `shard`.
fn upstream<'a>(
    shared: &Arc<RouterShared>,
    upstreams: &'a mut [Option<RetryClient>],
    shard: usize,
) -> &'a mut RetryClient {
    upstreams[shard].get_or_insert_with(|| {
        RetryClient::new(
            shared.config.shards[shard].clone(),
            shared.config.retry.clone(),
        )
    })
}

/// Inserts `"trace":id` as the first member of a request envelope (the
/// line is known-parsed JSON whose top level is an object). Pure string
/// surgery so every other byte of the request survives verbatim.
fn stamp_trace(line: &str, trace: u64) -> String {
    match line.find('{') {
        Some(at) => {
            let mut stamped = String::with_capacity(line.len() + 24);
            stamped.push_str(&line[..=at]);
            stamped.push_str(&format!("\"trace\":{trace},"));
            stamped.push_str(&line[at + 1..]);
            stamped
        }
        None => line.to_string(),
    }
}

/// Forwards one request line to `shard` and relays the response bytes
/// unchanged (the bit-identity pass-through), recording fleet-wide and
/// per-shard forward counts and latency.
fn forward(
    shared: &Arc<RouterShared>,
    upstreams: &mut [Option<RetryClient>],
    shard: usize,
    line: &str,
    id: &Json,
    write_half: &mut TcpStream,
) {
    shared
        .obs
        .counter(&format!("router.shard{shard}.requests"))
        .inc();
    let started = std::time::Instant::now();
    let outcome = upstream(shared, upstreams, shard).roundtrip(line);
    let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.obs.histogram("router.forward_ns").record(elapsed);
    shared
        .obs
        .histogram(&format!("router.shard{shard}.forward_ns"))
        .record(elapsed);
    match outcome {
        Ok(response) => send_line(write_half, &response),
        Err(e) => send_line(
            write_half,
            &protocol::error_response(id, &format!("shard {shard} unreachable: {e}")),
        ),
    }
}

/// The router's `stats` op: every shard's stats response, in shard
/// order, under one envelope, plus the router's own telemetry (fleet
/// and per-shard forward counts and latency histograms).
fn merged_stats(shared: &Arc<RouterShared>, upstreams: &mut [Option<RetryClient>]) -> String {
    let mut shards = Vec::with_capacity(upstreams.len());
    for shard in 0..upstreams.len() {
        let entry = match upstream(shared, upstreams, shard).roundtrip_json(r#"{"op":"stats"}"#) {
            Ok(json) => json,
            Err(e) => Json::Object(std::collections::BTreeMap::from([
                ("ok".to_string(), Json::Bool(false)),
                ("error".to_string(), Json::Str(e.to_string())),
            ])),
        };
        shards.push(entry);
    }
    Json::Object(std::collections::BTreeMap::from([
        ("ok".to_string(), Json::Bool(true)),
        ("router".to_string(), Json::Bool(true)),
        ("obs".to_string(), protocol::obs_to_json(&shared.obs)),
        ("shards".to_string(), Json::Array(shards)),
    ]))
    .compact()
}
