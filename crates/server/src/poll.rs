//! The readiness event loop: one thread, nonblocking sockets, every
//! connection.
//!
//! The crate forbids `unsafe` and takes no libc dependency, so there is
//! no raw `poll(2)`/`epoll(7)` here; instead the loop is the safe-Rust
//! equivalent of a readiness loop — every socket is nonblocking, and
//! one thread sweeps them all, treating `WouldBlock` as "not ready".
//! When a sweep makes no progress the loop parks on the outbound
//! response channel with a sub-millisecond timeout, so an idle daemon
//! costs ~2k wakeups/s instead of a spinning core, and a computed
//! response wakes it immediately. The trade against a real poller is a
//! bounded idle latency (≤ [`IDLE_PARK`]) per quiet sweep — well under
//! the admission window it feeds.
//!
//! Per connection the loop keeps a read buffer (bytes up to the next
//! `\n`) and a write buffer (queued response lines); only this thread
//! touches either, which is what makes response bytes on one
//! connection impossible to interleave.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::protocol::{self, Request};
use crate::service::{Admitted, RequestTrace, Shared, TuneJob};

/// How long a no-progress sweep parks on the response channel.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// How long a graceful shutdown keeps flushing write buffers before
/// abandoning unread responses (the client stopped reading).
const FLUSH_GRACE: Duration = Duration::from_secs(2);

/// A response line on its way from a worker thread to a connection.
pub(crate) struct Outbound {
    /// Target connection id (from [`Conn::id`]); a since-closed id is
    /// silently dropped, like a vanished client's response always was.
    pub(crate) conn: u64,
    /// The response line, without the trailing newline.
    pub(crate) line: String,
    /// The request's still-open "request" span, when traced; the event
    /// loop finishes it (under a "write" child) once the line's last
    /// byte reaches the socket.
    pub(crate) trace: Option<polytops_obs::SpanHandle>,
}

/// One live connection's state.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet terminated by `\n`.
    rbuf: Vec<u8>,
    /// Response bytes accepted but not yet written to the socket.
    wbuf: Vec<u8>,
    /// Close (after flushing `wbuf`) instead of reading further — set
    /// by protocol errors that poison the stream framing, and by the
    /// `drop_response` fault.
    close_after_flush: bool,
    /// Remove this connection at the end of the sweep.
    dead: bool,
    /// When the first bytes of the request currently being assembled
    /// arrived — the start of its "read"/"request" spans. Cleared after
    /// each complete line so pipelined requests get fresh stamps.
    read_started: Option<Instant>,
    /// Cumulative bytes ever queued to / written from `wbuf`, so a
    /// traced response's completion point survives partial writes.
    queued_bytes: u64,
    written_bytes: u64,
    /// Traced responses in `wbuf` order: (cumulative offset of the
    /// response's final byte, open "write" span, open "request" root).
    /// Both spans finish when `written_bytes` passes the offset.
    pending_traces: Vec<(u64, polytops_obs::SpanHandle, polytops_obs::SpanHandle)>,
}

impl Conn {
    /// Queues one line (newline appended) for writing.
    fn push_line(&mut self, line: &str) {
        self.wbuf.reserve(line.len() + 1);
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
        self.queued_bytes += line.len() as u64 + 1;
    }
}

/// Runs the daemon's event loop until shutdown or crash. Owns the
/// listener, all connections, the admission sender and the tune sender
/// — dropping them on exit is what lets the batcher and tuner observe
/// disconnection and finish.
pub(crate) fn event_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    admit: &SyncSender<Admitted>,
    tune: &Sender<TuneJob>,
    out: &Receiver<Outbound>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut outbound_open = true;
    let mut flush_deadline: Option<Instant> = None;
    loop {
        if shared.is_crashed() {
            // A crash drops every connection unflushed: clients observe
            // EOF (possibly mid-response) exactly as with `kill -9`.
            return;
        }
        let mut progress = false;

        // Accept as long as the backlog has connections (not while
        // shutting down — the next generation owns new clients).
        while !shared.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if conns.len() >= shared.config.max_connections {
                        // Beyond capacity: close immediately; clients
                        // see EOF and retry with backoff.
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are complete lines; never hold them
                    // back for coalescing.
                    let _ = stream.set_nodelay(true);
                    let id = next_id;
                    next_id += 1;
                    conns.insert(
                        id,
                        Conn {
                            stream,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            close_after_flush: false,
                            dead: false,
                            read_started: None,
                            queued_bytes: 0,
                            written_bytes: 0,
                            pending_traces: Vec::new(),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        // Drain computed responses into their connections' buffers.
        while let Ok(outbound) = out.try_recv() {
            progress = true;
            queue_response(shared, &mut conns, outbound);
        }

        // Sweep every connection: read what's ready, handle complete
        // lines, write what fits.
        let ids: Vec<u64> = conns.keys().copied().collect();
        for id in ids {
            let conn = conns.get_mut(&id).expect("swept conn exists");
            if !conn.close_after_flush && read_ready(conn, shared.config.max_line_bytes) {
                progress = true;
            }
            // Handle complete lines (may queue inline responses or
            // forward to workers).
            loop {
                let conn = conns.get_mut(&id).expect("swept conn exists");
                if conn.dead || conn.close_after_flush {
                    break;
                }
                let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') else {
                    break;
                };
                let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line[..pos]).into_owned();
                if !text.trim().is_empty() {
                    handle_line(
                        shared,
                        conns.get_mut(&id).expect("swept conn"),
                        id,
                        &text,
                        admit,
                        tune,
                    );
                }
                // The next pipelined line's read time starts fresh.
                conns.get_mut(&id).expect("swept conn").read_started = None;
            }
            let conn = conns.get_mut(&id).expect("swept conn exists");
            let written = write_ready(conn);
            if written > 0 {
                progress = true;
            }
            conn.written_bytes += written as u64;
            // Finish the write+request spans of every traced response
            // whose final byte just reached the socket, and publish its
            // trace id as "most recent" for the `trace` op.
            while conn
                .pending_traces
                .first()
                .is_some_and(|&(end, _, _)| conn.written_bytes >= end)
            {
                let (_, write_span, root) = conn.pending_traces.remove(0);
                write_span.finish();
                let trace = root.trace_id();
                root.finish();
                if trace != 0 {
                    shared.obs.last_trace.store(trace, Ordering::Relaxed);
                }
            }
            if conn.close_after_flush && conn.wbuf.is_empty() {
                conn.dead = true;
            }
        }
        conns.retain(|_, conn| !conn.dead);

        // Graceful exit: workers drained, responses delivered (or the
        // flush grace expired on clients that stopped reading).
        if shared.is_shutting_down() {
            let deadline = *flush_deadline.get_or_insert_with(|| Instant::now() + FLUSH_GRACE);
            let workers_done = shared.batcher_done.load(Ordering::SeqCst)
                && shared.tuner_done.load(Ordering::SeqCst);
            let flushed = conns.values().all(|c| c.wbuf.is_empty());
            if workers_done && !outbound_open && (flushed || Instant::now() >= deadline) {
                return;
            }
        }

        if !progress {
            if outbound_open {
                // Park on the response channel: a computed response is
                // the latency-critical wakeup.
                match out.recv_timeout(IDLE_PARK) {
                    Ok(outbound) => queue_response(shared, &mut conns, outbound),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => outbound_open = false,
                }
            } else {
                std::thread::sleep(IDLE_PARK);
            }
        }
    }
}

/// Queues one worker response, applying the `drop_response` fault: the
/// Nth response daemon-wide is truncated at half its bytes and its
/// connection closed — a torn line then EOF, from the client's side.
fn queue_response(shared: &Arc<Shared>, conns: &mut HashMap<u64, Conn>, outbound: Outbound) {
    let Some(conn) = conns.get_mut(&outbound.conn) else {
        return; // client vanished; drop the response as always
    };
    let nth = usize::try_from(shared.obs.responses.inc()).unwrap_or(usize::MAX);
    if shared.config.faults.drop_response == Some(nth) {
        let torn = outbound.line.len() / 2;
        conn.wbuf
            .extend_from_slice(&outbound.line.as_bytes()[..torn]);
        conn.queued_bytes += torn as u64;
        // The dropped response's spans auto-finish with `outbound`.
        conn.close_after_flush = true;
        return;
    }
    conn.push_line(&outbound.line);
    if let Some(root) = outbound.trace {
        let write_span = root.child("write");
        conn.pending_traces
            .push((conn.queued_bytes, write_span, root));
    }
}

/// Reads everything the socket has ready into `rbuf`. Returns whether
/// any bytes arrived. EOF and hard errors mark the connection dead; a
/// line overflowing `max_line_bytes` queues a protocol error and closes
/// (resynchronizing mid-stream is not worth the buffer exposure).
fn read_ready(conn: &mut Conn, max_line_bytes: usize) -> bool {
    let mut any = false;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                if !any && conn.rbuf.is_empty() {
                    // First bytes of a new request: the lifecycle's
                    // "read" phase starts here.
                    conn.read_started = Some(Instant::now());
                }
                any = true;
                conn.rbuf.extend_from_slice(&chunk[..n]);
                if conn.rbuf.len() > max_line_bytes && !conn.rbuf.contains(&b'\n') {
                    conn.push_line(&protocol::error_response(
                        &polytops_core::json::Json::Null,
                        "request line exceeds the size limit",
                    ));
                    conn.close_after_flush = true;
                    conn.rbuf.clear();
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    any
}

/// Writes as much buffered response data as the socket accepts.
/// Returns how many bytes left. A hard write error marks the
/// connection dead (the response was undeliverable anyway).
fn write_ready(conn: &mut Conn) -> usize {
    let mut written = 0;
    while written < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[written..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    conn.wbuf.drain(..written);
    written
}

/// Handles one complete request line: immediate ops are answered into
/// the connection's write buffer; schedule/autotune are forwarded to
/// their worker threads.
fn handle_line(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    id: u64,
    line: &str,
    admit: &SyncSender<Admitted>,
    tune: &Sender<TuneJob>,
) {
    match protocol::parse_request(line) {
        Err(e) => conn.push_line(&protocol::error_response(
            &polytops_core::json::Json::Null,
            &e,
        )),
        Ok(Request::Ping) => conn.push_line(r#"{"ok":true,"pong":true}"#),
        Ok(Request::Stats) => conn.push_line(&shared.stats_line()),
        Ok(Request::Trace) => conn.push_line(&shared.trace_line()),
        Ok(Request::Shutdown) => {
            conn.push_line(r#"{"ok":true,"shutting_down":true}"#);
            shared.begin_shutdown();
        }
        Ok(Request::Autotune(req)) => {
            if shared.is_shutting_down() {
                conn.push_line(&protocol::error_response(&req.id, "shutting down"));
            } else if let Err(e) = tune.send(TuneJob {
                req: *req,
                conn: id,
            }) {
                conn.push_line(&protocol::error_response(&e.0.req.id, "shutting down"));
            }
        }
        Ok(Request::Schedule(req)) => {
            if shared.is_shutting_down() {
                conn.push_line(&protocol::error_response(&req.id, "shutting down"));
                return;
            }
            // Open the request's lifecycle spans: the "read" phase ran
            // from the first byte's arrival to now; "admission" stays
            // open until the batcher's window closes. The root adopts
            // the envelope's trace id when the router stamped one.
            let recorder = &shared.obs.recorder;
            let trace = if recorder.spans_enabled() {
                let start_ns = conn
                    .read_started
                    .take()
                    .map_or_else(|| recorder.now_ns(), |at| recorder.ns_of(at));
                let root = recorder.root_span_at("request", req.trace, start_ns);
                root.child_at("read", start_ns).finish();
                let admission = root.child("admission");
                Some(RequestTrace {
                    root,
                    admission: Some(admission),
                })
            } else {
                None
            };
            let mut admitted = Admitted {
                req: *req,
                conn: id,
                trace,
            };
            // The admission channel is bounded; brief full intervals
            // apply backpressure to this one connection's request,
            // briefly pausing the sweep — which is the point: a flood
            // must slow intake, not grow memory.
            loop {
                match admit.try_send(admitted) {
                    Ok(()) => break,
                    Err(TrySendError::Full(back)) => {
                        if shared.is_shutting_down() || shared.is_crashed() {
                            conn.push_line(&protocol::error_response(
                                &back.req.id,
                                "shutting down",
                            ));
                            break;
                        }
                        admitted = back;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(TrySendError::Disconnected(back)) => {
                        conn.push_line(&protocol::error_response(&back.req.id, "shutting down"));
                        break;
                    }
                }
            }
        }
    }
}
