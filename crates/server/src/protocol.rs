//! The `polytopsd` wire protocol: line-delimited JSON requests and
//! responses.
//!
//! One JSON document per `\n`-terminated line, both directions; the full
//! schema reference lives in `docs/SERVICE.md`. Requests are parsed into
//! [`Request`] with the in-tree parser ([`polytops_core::json`]);
//! responses are built as [`Json`] values and serialized with
//! [`Json::compact`], whose `BTreeMap`-ordered output makes every
//! response byte-deterministic — the property the bit-identity contract
//! (daemon vs offline scenario engine) is stated over.

use std::collections::BTreeMap;

use polytops_core::json::Json;
use polytops_core::scenario::{ScenarioReport, ScenarioResult};
use polytops_core::tune::{MachineModel, TuneBudget, TuneOutcome};
use polytops_core::{presets, PipelineStats, RegistryStats, SchedulerConfig};
use polytops_ir::{parse_scop, MarkKind, Schedule, Scop, StmtId, TreeNode};
use polytops_machine::model::ScheduleFeatures;

/// One named configuration inside a schedule request.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Label echoed in the matching result entry.
    pub name: String,
    /// The compiled configuration (from a preset name or inline JSON).
    pub config: SchedulerConfig,
}

/// A parsed `"op": "schedule"` request.
#[derive(Debug, Clone)]
pub struct ScheduleRequest {
    /// Request id, echoed verbatim in the response (`null` if absent).
    pub id: Json,
    /// SCoP label used when the registry sees this SCoP first.
    pub name: String,
    /// The submitted SCoP.
    pub scop: Scop,
    /// The configurations to schedule under.
    pub scenarios: Vec<ScenarioSpec>,
    /// Whether disconnected dependence components may be solved as
    /// parallel sub-jobs (the scenario engine's explicit sweep axis).
    pub split_components: bool,
    /// Request-scoped trace id, propagated in the request envelope (the
    /// router stamps one before forwarding so router and shard agree).
    /// Never echoed in responses: responses stay byte-identical whether
    /// or not a request was traced.
    pub trace: Option<u64>,
}

/// A parsed `"op": "autotune"` request.
#[derive(Debug, Clone)]
pub struct AutotuneRequest {
    /// Request id, echoed verbatim in the response (`null` if absent).
    pub id: Json,
    /// The submitted SCoP.
    pub scop: Scop,
    /// The machine to tune for (daemon default plus any overrides the
    /// request carried).
    pub machine: MachineModel,
    /// Maximum candidate configurations to explore.
    pub max_candidates: usize,
    /// Parametric-loop trip estimate for feature extraction.
    pub param_estimate: i64,
}

/// Any request the daemon understands.
#[derive(Debug, Clone)]
pub enum Request {
    /// Schedule a SCoP under one or more configurations (batched).
    Schedule(Box<ScheduleRequest>),
    /// Explore the machine-derived configuration lattice for a SCoP and
    /// return the cost model's pick (runs on the engine pool,
    /// independent of the admission window).
    Autotune(Box<AutotuneRequest>),
    /// Report registry and service counters (immediate).
    Stats,
    /// Return the span tree of the most recently completed traced
    /// request (immediate).
    Trace,
    /// Liveness probe (immediate).
    Ping,
    /// Finish in-flight batches, then stop the daemon (immediate ack).
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable description of the first problem; the
/// daemon reports it in an error response without dropping the
/// connection.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let root = polytops_core::json::parse(line)?;
    let obj = root.as_object().ok_or("request must be a JSON object")?;
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing string field `op`")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "trace" => Ok(Request::Trace),
        "shutdown" => Ok(Request::Shutdown),
        "schedule" => parse_schedule(obj).map(|r| Request::Schedule(Box::new(r))),
        "autotune" => parse_autotune(obj).map(|r| Request::Autotune(Box::new(r))),
        other => Err(format!(
            "unknown op `{other}` (expected schedule, autotune, stats, trace, ping or shutdown)"
        )),
    }
}

fn parse_schedule(obj: &BTreeMap<String, Json>) -> Result<ScheduleRequest, String> {
    let id = obj.get("id").cloned().unwrap_or(Json::Null);
    let scop_text = obj
        .get("scop")
        .and_then(Json::as_str)
        .ok_or("missing string field `scop` (polyscop exchange text)")?;
    let scop = parse_scop(scop_text).map_err(|e| e.to_string())?;
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or(&scop.name)
        .to_string();
    let split_components = match obj.get("split_components") {
        None => false,
        Some(v) => v.as_bool().ok_or("`split_components` must be a boolean")?,
    };
    let trace = match obj.get("trace") {
        None => None,
        Some(v) => Some(
            v.as_int()
                .and_then(|t| u64::try_from(t).ok())
                .filter(|&t| t != 0)
                .ok_or("`trace` must be a positive integer")?,
        ),
    };
    let specs = obj
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("missing array field `scenarios`")?;
    if specs.is_empty() {
        return Err("`scenarios` must not be empty".to_string());
    }
    let mut scenarios = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let spec = spec
            .as_object()
            .ok_or("`scenarios` entries must be objects")?;
        let (config, default_name) = match (spec.get("preset"), spec.get("config")) {
            (Some(p), None) => {
                let preset = p.as_str().ok_or("`preset` must be a string")?;
                (preset_by_name(preset)?, preset.to_string())
            }
            (None, Some(c)) => {
                // Inline configs reuse the paper's Listing 2 JSON format
                // verbatim: re-serialize the sub-document and hand it to
                // the existing SchedulerConfig parser.
                let cfg = SchedulerConfig::from_json(&c.compact()).map_err(|e| format!("{e}"))?;
                (cfg, format!("config{i}"))
            }
            _ => return Err("each scenario needs exactly one of `preset` or `config`".to_string()),
        };
        let name = spec
            .get("name")
            .map(|n| {
                n.as_str()
                    .map(str::to_string)
                    .ok_or("`name` must be a string")
            })
            .transpose()?
            .unwrap_or(default_name);
        scenarios.push(ScenarioSpec { name, config });
    }
    Ok(ScheduleRequest {
        id,
        name,
        scop,
        scenarios,
        split_components,
        trace,
    })
}

fn parse_autotune(obj: &BTreeMap<String, Json>) -> Result<AutotuneRequest, String> {
    let id = obj.get("id").cloned().unwrap_or(Json::Null);
    let scop_text = obj
        .get("scop")
        .and_then(Json::as_str)
        .ok_or("missing string field `scop` (polyscop exchange text)")?;
    let scop = parse_scop(scop_text).map_err(|e| e.to_string())?;
    let mut machine = MachineModel::default();
    if let Some(m) = obj.get("machine") {
        let m = m.as_object().ok_or("`machine` must be an object")?;
        for (key, value) in m {
            let v = value
                .as_int()
                .ok_or_else(|| format!("`machine.{key}` must be an integer"))?;
            let as_u32 = |v: i64, key: &str| {
                u32::try_from(v).map_err(|_| format!("`machine.{key}` out of range"))
            };
            match key.as_str() {
                "num_cores" => machine.num_cores = as_u32(v, key)?.max(1),
                "cache_bytes" => {
                    // Bounded at 1 TiB: `square_tile_edge` walks the
                    // edge linearly (O(√capacity)), so an absurd
                    // capacity would stall the reader thread while it
                    // holds the daemon-wide autotune slot.
                    machine.cache_bytes = u64::try_from(v)
                        .ok()
                        .filter(|&b| b <= 1 << 40)
                        .ok_or("`machine.cache_bytes` out of range (max 2^40)")?
                }
                "cache_line_bytes" => machine.cache_line_bytes = as_u32(v, key)?.max(1),
                "vector_bytes" => machine.vector_bytes = as_u32(v, key)?.max(1),
                "miss_penalty_cycles" => machine.miss_penalty_cycles = as_u32(v, key)?,
                "sync_cycles" => machine.sync_cycles = as_u32(v, key)?,
                other => return Err(format!("unknown field `{other}` in `machine`")),
            }
        }
    }
    let budget = TuneBudget::default();
    let max_candidates = match obj.get("max_candidates") {
        None => budget.max_candidates,
        Some(v) => usize::try_from(v.as_int().ok_or("`max_candidates` must be an integer")?)
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("`max_candidates` must be at least 1")?,
    };
    let param_estimate = match obj.get("param_estimate") {
        None => budget.param_estimate,
        Some(v) => {
            let v = v.as_int().ok_or("`param_estimate` must be an integer")?;
            if v < 2 {
                return Err("`param_estimate` must be at least 2".to_string());
            }
            v
        }
    };
    Ok(AutotuneRequest {
        id,
        scop,
        machine,
        max_candidates,
        param_estimate,
    })
}

/// Resolves a preset name to its configuration (the names of
/// [`polytops_core::presets`]).
pub fn preset_by_name(name: &str) -> Result<SchedulerConfig, String> {
    match name {
        "pluto" => Ok(presets::pluto()),
        "pluto_plus" => Ok(presets::pluto_plus()),
        "feautrier" => Ok(presets::feautrier()),
        "isl_like" => Ok(presets::isl_like()),
        "wavefront" => Ok(presets::wavefront()),
        "fast_path" => Ok(presets::fast_path()),
        other => Err(format!(
            "unknown preset `{other}` (expected pluto, pluto_plus, feautrier, isl_like, \
             wavefront or fast_path)"
        )),
    }
}

fn object(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Serializes one schedule-tree node recursively (the `tree` field of
/// [`schedule_to_json`]): every node carries a `kind` tag, band members
/// carry their quasi-affine terms and coincidence flags, marks carry
/// their tile sizes / vectorized statements.
fn tree_node_to_json(node: &TreeNode) -> Json {
    match node {
        TreeNode::Band {
            members,
            permutable,
            child,
        } => {
            let members: Vec<Json> = members
                .iter()
                .map(|m| {
                    let terms: Vec<Json> = m
                        .terms
                        .iter()
                        .map(|t| {
                            object(vec![
                                ("div", Json::Int(t.div)),
                                ("source_dim", Json::Int(t.source_dim as i64)),
                                (
                                    "rows",
                                    Json::Array(
                                        t.rows
                                            .iter()
                                            .map(|row| {
                                                Json::Array(
                                                    row.iter().map(|&c| Json::Int(c)).collect(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect();
                    object(vec![
                        ("coincident", Json::Bool(m.coincident)),
                        ("terms", Json::Array(terms)),
                    ])
                })
                .collect();
            object(vec![
                ("kind", Json::Str("band".into())),
                ("permutable", Json::Bool(*permutable)),
                ("members", Json::Array(members)),
                ("child", tree_node_to_json(child)),
            ])
        }
        TreeNode::Filter { stmts, child } => object(vec![
            ("kind", Json::Str("filter".into())),
            (
                "stmts",
                Json::Array(stmts.iter().map(|&s| Json::Int(s as i64)).collect()),
            ),
            ("child", tree_node_to_json(child)),
        ]),
        TreeNode::Sequence(children) => object(vec![
            ("kind", Json::Str("sequence".into())),
            (
                "children",
                Json::Array(children.iter().map(tree_node_to_json).collect()),
            ),
        ]),
        TreeNode::Mark { kind, child } => {
            let mut pairs = vec![("kind", Json::Str("mark".into()))];
            match kind {
                MarkKind::Tile(sizes) => {
                    pairs.push(("mark", Json::Str("tile".into())));
                    pairs.push((
                        "sizes",
                        Json::Array(sizes.iter().map(|&s| Json::Int(s)).collect()),
                    ));
                }
                MarkKind::Wavefront => pairs.push(("mark", Json::Str("wavefront".into()))),
                MarkKind::Vectorize(stmts) => {
                    pairs.push(("mark", Json::Str("vectorize".into())));
                    pairs.push((
                        "stmts",
                        Json::Array(stmts.iter().map(|&s| Json::Int(s as i64)).collect()),
                    ));
                }
            }
            pairs.push(("child", tree_node_to_json(child)));
            object(pairs)
        }
        TreeNode::Leaf => object(vec![("kind", Json::Str("leaf".into()))]),
    }
}

/// Serializes a schedule: per-statement rows (over `(iters, params, 1)`
/// columns) plus band and parallelism metadata, and the schedule tree
/// (tiling, wavefront and vectorization all live there as marks and
/// quasi-affine band members; `null` when post-processing never ran).
pub fn schedule_to_json(sched: &Schedule) -> Json {
    let statements: Vec<Json> = (0..sched.num_statements())
        .map(|s| {
            let ss = sched.stmt(StmtId(s));
            object(vec![(
                "rows",
                Json::Array(
                    ss.rows()
                        .iter()
                        .map(|row| Json::Array(row.iter().map(|&c| Json::Int(c)).collect()))
                        .collect(),
                ),
            )])
        })
        .collect();
    object(vec![
        ("dims", Json::Int(sched.dims() as i64)),
        (
            "bands",
            Json::Array(sched.bands().iter().map(|&b| Json::Int(b as i64)).collect()),
        ),
        (
            "parallel",
            Json::Array(sched.parallel().iter().map(|&p| Json::Bool(p)).collect()),
        ),
        ("statements", Json::Array(statements)),
        (
            "tree",
            sched
                .tree()
                .map_or(Json::Null, |t| tree_node_to_json(&t.root)),
        ),
    ])
}

/// Serializes per-run pipeline statistics.
pub fn stats_to_json(stats: &PipelineStats) -> Json {
    object(vec![
        ("farkas_hits", Json::Int(stats.farkas_hits as i64)),
        ("farkas_misses", Json::Int(stats.farkas_misses as i64)),
        ("dimensions", Json::Int(stats.dimensions as i64)),
        (
            "fractional_stages",
            Json::Int(stats.fractional_stages() as i64),
        ),
        ("dual_pivots", Json::Int(stats.dual_pivots() as i64)),
        ("phase1_passes", Json::Int(stats.phase1_passes() as i64)),
        ("shared_seed_hits", Json::Int(stats.shared_seed_hits as i64)),
        ("fast_path_dims", Json::Int(stats.fast_path_dims as i64)),
        (
            "fast_path_fallbacks",
            Json::Int(stats.fast_path_fallbacks as i64),
        ),
    ])
}

/// Serializes one scenario outcome: the schedule and the oracle verdict
/// on success, or the scheduling error.
///
/// Pipeline *statistics* are deliberately absent: the per-run Farkas
/// hit/miss split can vary under concurrency (two scenarios racing to
/// eliminate the same entry — the PR 3 determinism contract covers the
/// sum and every schedule, not the split), so stats travel in the
/// response's separate `stats` field, outside the bit-identity
/// guarantee over `results`.
pub fn result_to_json(name: &str, result: &ScenarioResult, certified: bool) -> Json {
    match result {
        Ok(report) => object(vec![
            ("name", Json::Str(name.to_string())),
            ("ok", Json::Bool(true)),
            ("certified", Json::Bool(certified)),
            ("schedule", schedule_to_json(&report.schedule)),
            ("sub_jobs", Json::Int(report.sub_jobs as i64)),
        ]),
        Err(e) => object(vec![
            ("name", Json::Str(name.to_string())),
            ("ok", Json::Bool(false)),
            ("error", Json::Str(e.to_string())),
        ]),
    }
}

/// The full results array of one request, in scenario order — exactly
/// the value the bit-identity contract compares between the daemon and
/// the offline scenario engine.
pub fn results_to_json(reports: &[(String, ScenarioResult, bool)]) -> Json {
    Json::Array(
        reports
            .iter()
            .map(|(name, result, certified)| result_to_json(name, result, *certified))
            .collect(),
    )
}

/// A successful schedule response line. `stats` is the per-scenario
/// [`stats_to_json`] array (diagnostic; not covered by the bit-identity
/// contract over `results` — see [`result_to_json`]).
pub fn schedule_response(
    id: &Json,
    results: Json,
    stats: Json,
    registry_hit: bool,
    fingerprint: u64,
) -> String {
    object(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("results", results),
        ("stats", stats),
        (
            "registry",
            object(vec![
                ("hit", Json::Bool(registry_hit)),
                ("fingerprint", Json::Str(format!("{fingerprint:016x}"))),
            ]),
        ),
    ])
    .compact()
}

/// Serializes the model's feature vector of a schedule (the
/// `winner.features` object of an autotune response).
pub fn features_to_json(f: &ScheduleFeatures) -> Json {
    object(vec![
        ("dims", Json::Int(f.dims as i64)),
        ("num_stmts", Json::Int(f.num_stmts as i64)),
        ("outer_parallel", Json::Bool(f.outer_parallel)),
        ("parallel_dims", Json::Int(f.parallel_dims as i64)),
        ("max_band_width", Json::Int(f.max_band_width as i64)),
        ("vectorized_stmts", Json::Int(f.vectorized_stmts as i64)),
        ("total_ops", Json::Int(f.total_ops)),
        ("total_instances", Json::Int(f.total_instances)),
        ("tiled", Json::Bool(f.tiled)),
        ("footprint_bytes", Json::Int(f.footprint_bytes)),
        (
            "reuse_distances",
            Json::Array(f.reuse_distances.iter().map(|&r| Json::Int(r)).collect()),
        ),
        ("element_size", Json::Int(i64::from(f.element_size))),
        ("sync_events", Json::Int(f.sync_events)),
        (
            "trip_counts",
            Json::Array(f.trip_counts.iter().map(|&t| Json::Int(t)).collect()),
        ),
        (
            "stream_strides",
            Json::Array(f.stream_strides.iter().map(|&s| Json::Int(s)).collect()),
        ),
    ])
}

/// A successful autotune response line: the winning candidate (name,
/// model score, feature vector, schedule, oracle verdict) plus every
/// candidate's score (`null` when that configuration failed to
/// schedule), in lattice order. Deterministic byte-for-byte for a given
/// (SCoP, machine, budget), like every other response.
///
/// `explored_scenarios` and `learned` expose the learned-registry
/// path: a warm serve reports `"learned":true,"explored_scenarios":0`
/// and lists only the winner under `candidates` (loser scores are not
/// persisted) — but its `winner` object is byte-identical to the cold
/// exploration's.
pub fn autotune_response(id: &Json, outcome: &TuneOutcome) -> String {
    let candidates: Vec<Json> = outcome
        .candidates
        .iter()
        .map(|(name, score)| {
            object(vec![
                ("name", Json::Str(name.clone())),
                ("score", score.map_or(Json::Null, Json::Int)),
            ])
        })
        .collect();
    object(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        (
            "winner",
            object(vec![
                ("name", Json::Str(outcome.winner.name.clone())),
                ("score", Json::Int(outcome.score)),
                ("certified", Json::Bool(outcome.certified)),
                ("features", features_to_json(&outcome.features)),
                ("schedule", schedule_to_json(&outcome.winner.schedule)),
            ]),
        ),
        ("candidates", Json::Array(candidates)),
        (
            "explored_scenarios",
            Json::Int(outcome.explored_scenarios as i64),
        ),
        ("learned", Json::Bool(outcome.learned)),
    ])
    .compact()
}

/// An error response line (any op).
pub fn error_response(id: &Json, message: &str) -> String {
    object(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
    .compact()
}

/// Cumulative solver counters over every batch the daemon has run,
/// surfaced by the `stats` op (the per-request split travels in each
/// schedule response's `stats` field — see [`stats_to_json`]).
///
/// All five are diagnostic sums: under concurrency the per-scenario
/// split can vary (racing seed publication, cache elimination), but the
/// schedules themselves stay bit-identical — see
/// `polytops_core::scenario`'s determinism contract.
#[derive(Debug, Default, Clone, Copy)]
pub struct SolverTotals {
    /// Dual-simplex re-optimization pivots across all ILP stages.
    pub dual_pivots: usize,
    /// Mini phase-1 fallbacks the dual simplex could not avoid.
    pub phase1_passes: usize,
    /// Lexmin stages seeded from a sibling scenario's published point.
    pub shared_seed_hits: usize,
    /// Schedule dimensions solved by the heuristic fast path.
    pub fast_path_dims: usize,
    /// Fast-path proposals that failed validation and fell back to ILP.
    pub fast_path_fallbacks: usize,
}

/// Autotuner counters surfaced by the `stats` op's `tuner` object: how
/// many autotune requests the daemon has served, and how many of them
/// were answered from the learned registry (zero exploration
/// scenarios) instead of a full lattice sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct TunerTotals {
    /// Autotune requests processed by the tuner worker.
    pub requests: usize,
    /// Requests answered from a remembered winner.
    pub learned_hits: usize,
}

/// Persistence counters surfaced by the `stats` op's `persist` object
/// (absent/`null` when the daemon runs without `--snapshot-dir`).
///
/// Like [`SolverTotals`] these are diagnostics, not part of the
/// bit-identity contract — but the fault-injection suite asserts on
/// them (`recovered_from_prev` proves the torn-snapshot fallback fired,
/// `restored_entries`/`prewarmed_layouts` prove the daemon served warm).
#[derive(Debug, Default, Clone)]
pub struct PersistTotals {
    /// Registry entries rebuilt from the snapshot + journal at startup.
    pub restored_entries: usize,
    /// Farkas cache layouts eagerly prewarmed during restore.
    pub prewarmed_layouts: usize,
    /// Whether the load fell back to the previous snapshot rotation
    /// (current snapshot missing or corrupt).
    pub recovered_from_prev: bool,
    /// Journal events replayed on top of the snapshot at startup.
    pub replayed_events: usize,
    /// Learned tuning winners restored at startup (snapshot entries
    /// plus `learned` journal replays) — proves remembered winners
    /// survive a restart.
    pub relearned_configs: usize,
    /// Journal events appended since startup.
    pub journal_events: usize,
    /// Snapshot rotations performed since startup.
    pub rotations: usize,
    /// The snapshot directory, echoed for operators.
    pub dir: String,
}

impl PersistTotals {
    /// The `persist` stats object.
    fn to_json(&self) -> Json {
        object(vec![
            ("restored_entries", Json::Int(self.restored_entries as i64)),
            (
                "prewarmed_layouts",
                Json::Int(self.prewarmed_layouts as i64),
            ),
            ("recovered_from_prev", Json::Bool(self.recovered_from_prev)),
            ("replayed_events", Json::Int(self.replayed_events as i64)),
            (
                "relearned_configs",
                Json::Int(self.relearned_configs as i64),
            ),
            ("journal_events", Json::Int(self.journal_events as i64)),
            ("rotations", Json::Int(self.rotations as i64)),
            ("dir", Json::Str(self.dir.clone())),
        ])
    }
}

/// Clamps an observability value (nanoseconds or a count) into the
/// JSON integer range.
fn obs_int(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Serializes one histogram snapshot: count, sum, mean and bucket-
/// ceiling quantile estimates (see `docs/OBSERVABILITY.md` for the
/// bucket layout and estimate semantics).
fn histogram_to_json(h: &polytops_obs::HistogramSnapshot) -> Json {
    object(vec![
        ("count", obs_int(h.count)),
        ("sum_ns", obs_int(h.sum_ns)),
        ("mean_ns", obs_int(h.mean_ns())),
        ("p50_ns", obs_int(h.quantile(0.5))),
        ("p90_ns", obs_int(h.quantile(0.9))),
        ("p99_ns", obs_int(h.quantile(0.99))),
        ("max_ns", obs_int(h.quantile(1.0))),
    ])
}

/// The `stats` op's `obs` object: every named counter and every latency
/// histogram of a recorder, in deterministic (sorted) order.
pub fn obs_to_json(recorder: &polytops_obs::Recorder) -> Json {
    let counters = Json::Object(
        recorder
            .counters()
            .into_iter()
            .map(|(k, v)| (k, obs_int(v)))
            .collect::<BTreeMap<_, _>>(),
    );
    let histograms = Json::Object(
        recorder
            .histograms()
            .into_iter()
            .map(|(k, h)| (k, histogram_to_json(&h)))
            .collect::<BTreeMap<_, _>>(),
    );
    object(vec![
        ("counters", counters),
        ("histograms", histograms),
        ("spans_enabled", Json::Bool(recorder.spans_enabled())),
    ])
}

/// One span as a flat JSON object (the `trace` response's `spans`
/// entries; ids are included so clients can rebuild parentage).
fn span_to_json(s: &polytops_obs::SpanRecord) -> Json {
    object(vec![
        ("id", obs_int(s.id)),
        ("parent", obs_int(s.parent)),
        ("name", Json::Str(s.name.to_string())),
        ("arg", s.arg.map_or(Json::Null, Json::Int)),
        ("start_ns", obs_int(s.start_ns)),
        ("dur_ns", obs_int(s.end_ns - s.start_ns)),
        ("tid", obs_int(s.tid)),
    ])
}

/// Builds the nested `tree` form of a span set: roots (parent absent
/// from the set) at the top, children ordered by start time then id.
fn span_tree_json(spans: &[polytops_obs::SpanRecord]) -> Json {
    fn node(
        s: &polytops_obs::SpanRecord,
        kids: &BTreeMap<u64, Vec<usize>>,
        all: &[polytops_obs::SpanRecord],
    ) -> Json {
        let children: Vec<Json> = kids
            .get(&s.id)
            .map(|ix| ix.iter().map(|&i| node(&all[i], kids, all)).collect())
            .unwrap_or_default();
        object(vec![
            ("name", Json::Str(s.name.to_string())),
            ("arg", s.arg.map_or(Json::Null, Json::Int)),
            ("start_ns", obs_int(s.start_ns)),
            ("dur_ns", obs_int(s.end_ns - s.start_ns)),
            ("tid", obs_int(s.tid)),
            ("children", Json::Array(children)),
        ])
    }
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start_ns, spans[i].id));
    let mut kids: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for &i in &order {
        let s = &spans[i];
        if s.parent != 0 && ids.contains(&s.parent) {
            kids.entry(s.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    Json::Array(
        roots
            .iter()
            .map(|&i| node(&spans[i], &kids, spans))
            .collect(),
    )
}

/// The `trace` response line: the span set of the most recently
/// completed traced request, both flat (`spans`) and nested (`tree`).
/// `None` (no traced request yet, or tracing disabled) answers
/// `"trace": null`.
pub fn trace_response(trace: Option<(u64, Vec<polytops_obs::SpanRecord>)>) -> String {
    let body = match trace {
        None => Json::Null,
        Some((id, spans)) => object(vec![
            ("id", obs_int(id)),
            (
                "spans",
                Json::Array(spans.iter().map(span_to_json).collect()),
            ),
            ("tree", span_tree_json(&spans)),
        ]),
    };
    object(vec![("ok", Json::Bool(true)), ("trace", body)]).compact()
}

/// Rebuilds Chrome trace events from a `trace` response's `trace`
/// object (as produced by [`trace_response`]) — the client-side half of
/// the Chrome export: `polytopsd trace-dump` feeds the result to
/// [`polytops_obs::chrome_trace`].
///
/// # Errors
///
/// Returns a message when the object or any span entry is malformed.
pub fn chrome_events_from_trace(trace: &Json) -> Result<Vec<polytops_obs::ChromeEvent>, String> {
    let obj = trace
        .as_object()
        .ok_or("`trace` is not an object (no traced request yet?)")?;
    let id = obj
        .get("id")
        .and_then(Json::as_int)
        .ok_or("`trace.id` missing")?;
    let spans = obj
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("`trace.spans` missing")?;
    let mut events = Vec::with_capacity(spans.len());
    for span in spans {
        let span = span.as_object().ok_or("span entry is not an object")?;
        let int = |key: &str| -> Result<u64, String> {
            span.get(key)
                .and_then(Json::as_int)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("span `{key}` missing or negative"))
        };
        let name = span
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span `name` missing")?;
        events.push(polytops_obs::ChromeEvent {
            name: name.to_string(),
            tid: int("tid")?,
            trace: u64::try_from(id).unwrap_or(0),
            arg: span.get("arg").and_then(Json::as_int),
            start_ns: int("start_ns")?,
            dur_ns: int("dur_ns")?,
        });
    }
    Ok(events)
}

/// The `stats` response line.
pub fn stats_response(
    registry: RegistryStats,
    batches: usize,
    requests: usize,
    solver: SolverTotals,
    tuner: TunerTotals,
    persist: Option<&PersistTotals>,
    obs: Json,
) -> String {
    object(vec![
        ("ok", Json::Bool(true)),
        (
            "registry",
            object(vec![
                ("entries", Json::Int(registry.entries as i64)),
                ("capacity", Json::Int(registry.capacity as i64)),
                ("hits", Json::Int(registry.hits as i64)),
                ("misses", Json::Int(registry.misses as i64)),
                ("evictions", Json::Int(registry.evictions as i64)),
                ("learned", Json::Int(registry.learned as i64)),
            ]),
        ),
        (
            "tuner",
            object(vec![
                ("requests", Json::Int(tuner.requests as i64)),
                ("learned_hits", Json::Int(tuner.learned_hits as i64)),
            ]),
        ),
        (
            "solver",
            object(vec![
                ("dual_pivots", Json::Int(solver.dual_pivots as i64)),
                ("phase1_passes", Json::Int(solver.phase1_passes as i64)),
                (
                    "shared_seed_hits",
                    Json::Int(solver.shared_seed_hits as i64),
                ),
                ("fast_path_dims", Json::Int(solver.fast_path_dims as i64)),
                (
                    "fast_path_fallbacks",
                    Json::Int(solver.fast_path_fallbacks as i64),
                ),
            ]),
        ),
        (
            "persist",
            persist.map_or(Json::Null, PersistTotals::to_json),
        ),
        ("obs", obs),
        ("batches", Json::Int(batches as i64)),
        ("requests", Json::Int(requests as i64)),
    ])
    .compact()
}

/// Runs a request's scenarios through the offline scenario engine — the
/// golden path the daemon must match bit for bit. Used by the `replay`
/// diff mode and the test suite.
pub fn offline_results(req: &ScheduleRequest) -> Json {
    use polytops_core::scenario::ScenarioSet;
    use polytops_deps::analyze;

    let mut set = ScenarioSet::new();
    let scop = set.add_scop(req.name.clone(), req.scop.clone());
    for spec in &req.scenarios {
        set.add_scenario(scop, spec.name.clone(), spec.config.clone());
    }
    set.split_components(req.split_components);
    let results = set.run_sequential();
    let deps = analyze(&req.scop);
    let reports: Vec<(String, ScenarioResult, bool)> = req
        .scenarios
        .iter()
        .zip(results)
        .map(|(spec, result)| {
            let certified = match &result {
                Ok(report) => certify(&deps, report),
                Err(_) => false,
            };
            (spec.name.clone(), result, certified)
        })
        .collect();
    results_to_json(&reports)
}

/// The independent legality oracle over one report.
pub fn certify(deps: &[polytops_deps::Dependence], report: &ScenarioReport) -> bool {
    deps.iter().all(|d| {
        polytops_deps::schedule_respects_dependence(
            d,
            report.schedule.stmt(d.src).rows(),
            report.schedule.stmt(d.dst).rows(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_ir::print_scop;
    use polytops_workloads::stencil_chain;

    fn request_line() -> String {
        object(vec![
            ("op", Json::Str("schedule".into())),
            ("id", Json::Int(7)),
            ("scop", Json::Str(print_scop(&stencil_chain()))),
            (
                "scenarios",
                Json::Array(vec![
                    object(vec![("preset", Json::Str("pluto".into()))]),
                    object(vec![
                        ("name", Json::Str("tuned".into())),
                        (
                            "config",
                            object(vec![(
                                "scheduling_strategy",
                                object(vec![("tile_sizes", Json::Array(vec![Json::Int(32)]))]),
                            )]),
                        ),
                    ]),
                ]),
            ),
        ])
        .compact()
    }

    #[test]
    fn schedule_request_round_trips() {
        let req = match parse_request(&request_line()).unwrap() {
            Request::Schedule(r) => r,
            other => panic!("expected schedule, got {other:?}"),
        };
        assert_eq!(req.id, Json::Int(7));
        assert_eq!(req.name, "stencil_chain");
        assert_eq!(req.scop, stencil_chain());
        assert_eq!(req.scenarios.len(), 2);
        assert_eq!(req.scenarios[0].name, "pluto");
        assert_eq!(req.scenarios[0].config, presets::pluto());
        assert_eq!(req.scenarios[1].name, "tuned");
        assert_eq!(req.scenarios[1].config.post.tile_sizes, vec![32]);
        assert!(!req.split_components);
    }

    #[test]
    fn autotune_request_parses_with_machine_overrides() {
        let line = object(vec![
            ("op", Json::Str("autotune".into())),
            ("id", Json::Str("t1".into())),
            ("scop", Json::Str(print_scop(&stencil_chain()))),
            (
                "machine",
                object(vec![
                    ("num_cores", Json::Int(4)),
                    ("cache_bytes", Json::Int(1 << 16)),
                ]),
            ),
            ("max_candidates", Json::Int(5)),
            ("param_estimate", Json::Int(128)),
        ])
        .compact();
        let req = match parse_request(&line).unwrap() {
            Request::Autotune(r) => r,
            other => panic!("expected autotune, got {other:?}"),
        };
        assert_eq!(req.scop, stencil_chain());
        assert_eq!(req.machine.num_cores, 4);
        assert_eq!(req.machine.cache_bytes, 1 << 16);
        // Untouched fields keep the daemon default.
        assert_eq!(
            req.machine.vector_bytes,
            MachineModel::default().vector_bytes
        );
        assert_eq!(req.max_candidates, 5);
        assert_eq!(req.param_estimate, 128);

        let bad = line.replace("num_cores", "frequency_ghz");
        assert!(parse_request(&bad).unwrap_err().contains("frequency_ghz"));
    }

    #[test]
    fn autotune_response_serializes_winner_and_candidates() {
        let scop = stencil_chain();
        let outcome = polytops_core::tune::explore(
            &scop,
            &MachineModel::default(),
            &TuneBudget {
                max_candidates: 3,
                threads: 1,
                param_estimate: 64,
            },
        )
        .unwrap();
        let line = autotune_response(&Json::Str("t2".into()), &outcome);
        let parsed = polytops_core::json::parse(&line).unwrap();
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj["ok"].as_bool(), Some(true));
        let winner = obj["winner"].as_object().unwrap();
        assert_eq!(winner["certified"].as_bool(), Some(true));
        assert_eq!(winner["score"].as_int(), Some(outcome.score));
        let features = winner["features"].as_object().unwrap();
        assert!(features["total_ops"].as_int().is_some());
        assert!(!features["trip_counts"].as_array().unwrap().is_empty());
        assert!(features.contains_key("stream_strides"));
        assert_eq!(obj["candidates"].as_array().unwrap().len(), 3);
        assert_eq!(obj["explored_scenarios"].as_int(), Some(3));
        assert_eq!(obj["learned"].as_bool(), Some(false));
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"frobnicate"}"#)
            .unwrap_err()
            .contains("frobnicate"));
        assert!(parse_request(r#"{"op":"schedule"}"#)
            .unwrap_err()
            .contains("scop"));
        let no_scenarios = object(vec![
            ("op", Json::Str("schedule".into())),
            ("scop", Json::Str(print_scop(&stencil_chain()))),
            ("scenarios", Json::Array(vec![])),
        ])
        .compact();
        assert!(parse_request(&no_scenarios).unwrap_err().contains("empty"));
    }

    #[test]
    fn offline_results_are_certified_and_deterministic() {
        let req = match parse_request(&request_line()).unwrap() {
            Request::Schedule(r) => r,
            other => panic!("expected schedule, got {other:?}"),
        };
        let a = offline_results(&req).compact();
        let b = offline_results(&req).compact();
        assert_eq!(a, b, "offline serialization must be deterministic");
        let parsed = polytops_core::json::parse(&a).unwrap();
        for entry in parsed.as_array().unwrap() {
            let obj = entry.as_object().unwrap();
            assert_eq!(obj["ok"].as_bool(), Some(true));
            assert_eq!(obj["certified"].as_bool(), Some(true));
        }
    }
}
