//! `polytopsd`: a long-lived batching scheduler service over the
//! PolyTOPS scenario engine.
//!
//! The ROADMAP's scale lever after the parallel scenario engine (PR 3)
//! is keeping the scheduler *resident*: a compiler front end
//! (Tiramisu-style, or an MLIR/AKG pipeline as in the paper) re-schedules
//! the same SCoPs under new configurations every time its tuning loop
//! turns, and a one-shot process re-pays dependence analysis and Farkas
//! elimination on every turn. This crate serves the reconfiguration loop
//! as a daemon:
//!
//! * **Protocol** ([`protocol`]) — line-delimited JSON over TCP: one
//!   request per line (SCoP in the polyscop exchange format + a list of
//!   presets/inline configs), one response per line. Schema reference:
//!   `docs/SERVICE.md`.
//! * **Batching** — concurrently arriving requests are admitted into
//!   one window (first request opens it, [`ServerConfig::window_ms`]
//!   closes it) and executed as a *single*
//!   [`ScenarioSet`](polytops_core::scenario::ScenarioSet) on the
//!   work-stealing pool, so requests from different clients share
//!   analyses and caches within the batch exactly like scenarios of one
//!   offline sweep.
//! * **Cross-request persistence** — every SCoP is resolved through a
//!   [`ScopRegistry`](polytops_core::registry::ScopRegistry):
//!   fingerprinted, deduped across clients, and kept resident (exact
//!   dependence analysis + per-layout Farkas caches) under an LRU
//!   bound. A client re-scheduling a known kernel under a new
//!   configuration pays only the ILP solves.
//! * **Determinism** — responses are bit-identical to the offline
//!   scenario-engine path ([`protocol::offline_results`] is the golden
//!   comparator), every returned schedule is certified by the
//!   independent dependence oracle before it leaves the daemon, and
//!   response serialization is byte-deterministic.
//! * **Fleet serving** — the registry persists across restarts
//!   ([`persist`]: checksummed snapshots of canonical SCoP text plus an
//!   append-only journal; a restarted daemon prewarms every Farkas
//!   cache so warm replays pay zero re-eliminations), connections are
//!   served by a nonblocking readiness loop (one thread for all
//!   sockets, not thread-per-connection), and [`Router`] fronts N
//!   daemon shards behind one address by consistent-hashing SCoP
//!   fingerprints ([`HashRing`]). [`RetryClient`] rides restarts with
//!   reconnect-and-resend backoff; scripted [`FaultPlan`]s drive the
//!   fault-injection suite that proves bit-identity through kills.
//!
//! # In-process use
//!
//! ```no_run
//! use polytops_server::{Client, Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let pong = client.roundtrip(r#"{"op":"ping"}"#).unwrap();
//! assert!(pong.contains("pong"));
//! client.send_line(r#"{"op":"shutdown"}"#).unwrap();
//! handle.join();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod persist;
pub mod protocol;
pub mod router;

mod client;
mod poll;
mod service;

pub use client::{Client, RetryClient, RetryPolicy};
pub use router::{HashRing, Router, RouterConfig, RouterHandle};
pub use service::{FaultPlan, Server, ServerConfig, ServerHandle};
