//! Consistent-hash router tests: ring stability under shard add/remove
//! (only the moved shard's keys change owner), rough balance, and the
//! end-to-end pass-through contract — router-fronted responses are
//! byte-identical to a single fresh daemon's for the standard sweep.

use polytops_core::registry::fnv1a;
use polytops_server::{Client, HashRing, Router, RouterConfig, Server, ServerConfig};
use polytops_workloads::all_kernels;
use polytops_workloads::requests::sweep_request_line;

/// Deterministic pseudo-fingerprints (the ring hashes whatever `u64`
/// it is given; these stand in for SCoP fingerprints).
fn keys(n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| fnv1a(format!("key-{i}").as_bytes()))
        .collect()
}

fn labels(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| (*s).to_string()).collect()
}

#[test]
fn ring_is_stable_under_shard_add() {
    let before = HashRing::new(&labels(&["a:1", "b:1", "c:1"]), 64);
    let after = HashRing::new(&labels(&["a:1", "b:1", "c:1", "d:1"]), 64);
    let keys = keys(4000);
    let mut moved = 0u64;
    for &key in &keys {
        let new_owner = after.shard_of(key);
        if new_owner == 3 {
            moved += 1;
        } else {
            // Every key not claimed by the new shard keeps its owner:
            // existing registries keep their residency.
            assert_eq!(
                new_owner,
                before.shard_of(key),
                "only the new shard's keys may move"
            );
        }
    }
    // ~K/N keys move to the new shard (loose 2x bound both ways).
    let expected = keys.len() as u64 / 4;
    assert!(
        moved > expected / 2 && moved < expected * 2,
        "adding 1 of 4 shards moved {moved} of {} keys",
        keys.len()
    );
}

#[test]
fn ring_is_stable_under_shard_remove() {
    let before = HashRing::new(&labels(&["a:1", "b:1", "c:1", "d:1"]), 64);
    let after = HashRing::new(&labels(&["a:1", "b:1", "c:1"]), 64);
    let mut moved = 0u64;
    let keys = keys(4000);
    for &key in &keys {
        let old_owner = before.shard_of(key);
        if old_owner == 3 {
            // The removed shard's keys redistribute somewhere valid.
            assert!(after.shard_of(key) < 3);
            moved += 1;
        } else {
            assert_eq!(
                after.shard_of(key),
                old_owner,
                "survivors keep every key they owned"
            );
        }
    }
    let expected = keys.len() as u64 / 4;
    assert!(
        moved > expected / 2 && moved < expected * 2,
        "removing 1 of 4 shards moved {moved} of {} keys",
        keys.len()
    );
}

#[test]
fn ring_balances_roughly_evenly() {
    let ring = HashRing::new(&labels(&["a:1", "b:1", "c:1", "d:1"]), 64);
    assert_eq!(ring.shards(), 4);
    let mut counts = [0u64; 4];
    for key in keys(10_000) {
        counts[ring.shard_of(key)] += 1;
    }
    for (shard, &count) in counts.iter().enumerate() {
        assert!(
            count > 500,
            "shard {shard} owns only {count} of 10000 keys: {counts:?}"
        );
    }
}

/// The pass-through contract: for the standard sweep, a client talking
/// to a router over two fresh shards receives responses byte-identical
/// to a client talking to one fresh daemon — and both shards actually
/// serve a share of the kernels.
#[test]
fn routed_sweep_is_byte_identical_to_direct() {
    let shard_config = || ServerConfig {
        window_ms: 5,
        ..ServerConfig::default()
    };
    let direct = Server::start(shard_config()).expect("direct daemon");
    let shard_a = Server::start(shard_config()).expect("shard a");
    let shard_b = Server::start(shard_config()).expect("shard b");
    let router = Router::start(RouterConfig {
        shards: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("router");

    let mut via_router = Client::connect(router.addr()).expect("connect router");
    let mut via_daemon = Client::connect(direct.addr()).expect("connect daemon");

    // Liveness through the front.
    let pong = via_router.roundtrip(r#"{"op":"ping"}"#).unwrap();
    assert!(pong.contains("pong"), "{pong}");

    // The bit-identity contract is stated over the `results` field
    // (the diagnostic `stats` splits legitimately vary run to run —
    // see `polytops_core::scenario`'s determinism contract).
    let results_of = |response: &str| -> (bool, String, String) {
        let parsed = polytops_core::json::parse(response).expect("response parses");
        let obj = parsed.as_object().expect("response object");
        (
            obj["ok"].as_bool().expect("ok flag"),
            obj["id"].compact(),
            obj["results"].compact(),
        )
    };
    for (kernel, scop) in all_kernels() {
        let line = sweep_request_line(kernel, kernel, &scop);
        let routed = via_router.roundtrip(&line).expect("routed roundtrip");
        let direct_response = via_daemon.roundtrip(&line).expect("direct roundtrip");
        let (ok_r, id_r, results_r) = results_of(&routed);
        let (ok_d, id_d, results_d) = results_of(&direct_response);
        assert!(
            ok_r && ok_d,
            "{kernel}: routed={routed} direct={direct_response}"
        );
        assert_eq!(id_r, id_d);
        assert_eq!(
            results_r, results_d,
            "{kernel}: routed results must be byte-identical to the direct daemon's"
        );
    }

    // Fleet stats: each shard served exactly the kernels the ring
    // assigns it. The oracle rebuilds the router's own ring from the
    // shard addresses, so the check is deterministic even when an
    // unlucky port draw sends the whole sweep to one shard.
    let ring = HashRing::new(
        &[shard_a.addr().to_string(), shard_b.addr().to_string()],
        RouterConfig::default().virtual_nodes,
    );
    let mut expected_requests = [0i64; 2];
    for (_, scop) in all_kernels() {
        expected_requests[ring.shard_of(polytops_core::registry::fingerprint(&scop))] += 1;
    }
    let stats = via_router.roundtrip_json(r#"{"op":"stats"}"#).unwrap();
    let shards = stats.as_object().unwrap()["shards"].as_array().unwrap();
    assert_eq!(shards.len(), 2);
    for (idx, shard) in shards.iter().enumerate() {
        let requests = shard.as_object().unwrap()["requests"].as_int().unwrap();
        assert_eq!(
            requests,
            expected_requests[idx],
            "shard {idx} request count must match the ring assignment: {}",
            stats.compact()
        );
    }

    // A shutdown op through the router stops the shards, then the
    // router itself.
    let ack = via_router.roundtrip(r#"{"op":"shutdown"}"#).unwrap();
    assert!(ack.contains("shutting_down"), "{ack}");
    router.join();
    shard_a.join();
    shard_b.join();
    direct.shutdown();
}
