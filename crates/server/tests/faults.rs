//! The deterministic fault-injection harness: scripted [`FaultPlan`]s
//! drive kill/restart, dropped-connection and torn-snapshot scenarios
//! over real TCP, asserting the fleet invariants end to end:
//!
//! * responses that survive a fault are **byte-identical** to the
//!   offline scenario engine (the never-killed golden path);
//! * a restarted daemon serves **warm** — replayed requests report
//!   `farkas_misses == 0`;
//! * a torn snapshot on disk is detected and recovered from the
//!   previous rotation.
//!
//! Restarts use the listener-handoff pattern ([`Server::start_on`]):
//! the test binds the port once and hands each daemon generation a
//! clone, exactly like a socket-activation supervisor — std's
//! `TcpListener` takes no `SO_REUSEADDR`, so rebinding a just-killed
//! port would otherwise hit `TIME_WAIT`. The kill scenario runs at 1, 2
//! and 4 worker threads: determinism must not depend on the pool shape.

use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

use polytops_core::json::Json;
use polytops_server::protocol::{self, Request};
use polytops_server::{FaultPlan, RetryClient, RetryPolicy, Server, ServerConfig, ServerHandle};
use polytops_workloads::requests::{autotune_request_line, fleet_request_streams};

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("polytops-faults-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A retry policy generous enough to ride a restart window that
/// includes registry restore + prewarm.
fn patient() -> RetryPolicy {
    RetryPolicy {
        attempts: 60,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(250),
    }
}

/// The offline-engine golden `results` text for one request line.
fn golden(line: &str) -> String {
    match protocol::parse_request(line).expect("request parses") {
        Request::Schedule(req) => protocol::offline_results(&req).compact(),
        other => panic!("fleet stream line must be a schedule request, got {other:?}"),
    }
}

/// Parses a schedule response into (ok, registry_hit, results text,
/// max farkas_misses across its scenarios).
fn unpack(response: &str) -> (bool, bool, String, i64) {
    let parsed = polytops_core::json::parse(response).expect("response parses");
    let obj = parsed.as_object().expect("response object");
    let ok = obj["ok"].as_bool().expect("ok flag");
    let hit = obj
        .get("registry")
        .and_then(Json::as_object)
        .and_then(|r| r.get("hit"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let results = obj.get("results").map(Json::compact).unwrap_or_default();
    let misses = obj
        .get("stats")
        .and_then(Json::as_array)
        .map(|stats| {
            stats
                .iter()
                .filter_map(|entry| {
                    entry
                        .as_object()?
                        .get("pipeline")?
                        .as_object()?
                        .get("farkas_misses")?
                        .as_int()
                })
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    (ok, hit, results, misses)
}

fn fleet_config(threads: usize, dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        window_ms: 0, // one batch per request: the kill point is exact
        threads,
        snapshot_dir: Some(dir.display().to_string()),
        rotate_every: 4,
        ..ServerConfig::default()
    }
}

/// Kill-after-N-batches at 1, 2 and 4 worker threads: every client's
/// final answer is bit-identical to the offline engine, and the
/// restarted daemon replays journaled work with zero fresh Farkas
/// eliminations.
#[test]
fn kill_restart_is_bit_identical_and_warm() {
    for threads in [1usize, 2, 4] {
        let dir = scratch(&format!("kill-t{threads}"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind supervisor port");
        let addr = listener.local_addr().unwrap().to_string();

        let first = Server::start_on(
            listener.try_clone().expect("clone listener"),
            ServerConfig {
                faults: FaultPlan {
                    kill_after_batches: Some(2),
                    ..FaultPlan::default()
                },
                ..fleet_config(threads, &dir)
            },
        )
        .expect("start first generation");

        // Concurrent clients, overlapping kernels, rotated presets.
        let streams = fleet_request_streams(6, 2);
        let addr_ref: &str = &addr;
        let outcomes: Vec<Vec<(String, String)>> = std::thread::scope(|s| {
            let workers: Vec<_> = streams
                .iter()
                .map(|stream| {
                    s.spawn(move || {
                        let mut client = RetryClient::new(addr_ref, patient());
                        stream
                            .iter()
                            .map(|line| {
                                let response =
                                    client.roundtrip(line).expect("retry rides the restart");
                                (line.clone(), response)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();

            // Meanwhile: wait for the scripted crash, then hand the
            // listener to the second generation (no fault plan).
            while !first.crashed() {
                std::thread::sleep(Duration::from_millis(5));
            }
            let crashed = first.crashed();
            first.join();
            assert!(crashed, "fault plan must have fired");
            let second = Server::start_on(
                listener.try_clone().expect("clone listener"),
                fleet_config(threads, &dir),
            )
            .expect("start second generation");
            let totals = second.persist_totals().expect("persistence enabled");
            assert!(
                totals.restored_entries > 0,
                "threads={threads}: the restart must restore journaled admissions, got {totals:?}"
            );

            let collected = workers
                .into_iter()
                .map(|w| w.join().expect("client thread"))
                .collect();
            finish(second);
            collected
        });

        for outcome in &outcomes {
            for (line, response) in outcome {
                let (ok, _, results, _) = unpack(response);
                assert!(ok, "threads={threads}: {response}");
                assert_eq!(
                    results,
                    golden(line),
                    "threads={threads}: survivor response must be bit-identical to offline"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Drains a daemon through a warm re-sweep before shutting it down:
/// every request must be a registry hit with zero Farkas misses and
/// bit-identical results — the "serves warm" guarantee.
fn finish(handle: ServerHandle) {
    let mut client = RetryClient::new(handle.addr().to_string(), patient());
    for stream in fleet_request_streams(6, 2) {
        for line in stream {
            let response = client.roundtrip(&line).expect("warm replay");
            let (ok, hit, results, misses) = unpack(&response);
            assert!(ok, "{response}");
            assert!(hit, "warm replay must hit the registry: {response}");
            assert_eq!(misses, 0, "warm replay must not re-eliminate: {response}");
            assert_eq!(
                results,
                golden(&line),
                "warm replay must stay bit-identical"
            );
        }
    }
    handle.shutdown();
}

/// Parses an autotune response into (ok, learned, explored_scenarios,
/// winner-object text).
fn unpack_tune(response: &str) -> (bool, bool, i64, String) {
    let parsed = polytops_core::json::parse(response).expect("tune response parses");
    let obj = parsed.as_object().expect("tune response object");
    (
        obj["ok"].as_bool().expect("ok flag"),
        obj["learned"].as_bool().expect("learned flag"),
        obj["explored_scenarios"].as_int().expect("explored count"),
        obj["winner"].compact(),
    )
}

/// A learned tuning winner survives a kill/restart: the second
/// generation relearns it from the journal, and re-submitting the same
/// autotune request is served warm (`explored_scenarios == 0`) with a
/// byte-identical winner.
#[test]
fn learned_winner_survives_kill_restart() {
    let dir = scratch("learned-kill");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind supervisor port");
    let addr = listener.local_addr().unwrap().to_string();

    let first = Server::start_on(
        listener.try_clone().expect("clone listener"),
        ServerConfig {
            faults: FaultPlan {
                kill_after_batches: Some(2),
                ..FaultPlan::default()
            },
            ..fleet_config(2, &dir)
        },
    )
    .expect("start first generation");

    // Pay the cold exploration before the crash: the winner goes into
    // the journal as a `learned` event.
    let tune_line = autotune_request_line("survivor", &polytops_workloads::jacobi_1d(), 6, 64);
    let mut client = RetryClient::new(addr.clone(), patient());
    let (ok, learned, explored, cold_winner) =
        unpack_tune(&client.roundtrip(&tune_line).expect("cold autotune"));
    assert!(ok && !learned && explored > 0, "cold run must explore");

    // Drive the batcher past the scripted kill point while the
    // supervisor hands the port to the second generation.
    let stream = &fleet_request_streams(1, 3)[0];
    let addr_ref: &str = &addr;
    std::thread::scope(|s| {
        let worker = s.spawn(move || {
            let mut client = RetryClient::new(addr_ref, patient());
            for line in stream {
                client.roundtrip(line).expect("retry rides the restart");
            }
        });

        while !first.crashed() {
            std::thread::sleep(Duration::from_millis(5));
        }
        first.join();
        let second = Server::start_on(
            listener.try_clone().expect("clone listener"),
            fleet_config(2, &dir),
        )
        .expect("start second generation");
        let totals = second.persist_totals().expect("persistence enabled");
        assert!(
            totals.relearned_configs > 0,
            "the restart must relearn the journaled winner: {totals:?}"
        );
        worker.join().expect("client thread");

        // The re-submission is served from the relearned store: no
        // exploration, and the winner is byte-identical.
        let mut probe = RetryClient::new(second.addr().to_string(), patient());
        let (ok, learned, explored, warm_winner) =
            unpack_tune(&probe.roundtrip(&tune_line).expect("warm autotune"));
        assert!(ok, "warm autotune must succeed after restart");
        assert!(learned, "the relearned winner must serve the re-submission");
        assert_eq!(explored, 0, "the warm serve must explore nothing");
        assert_eq!(
            warm_winner, cold_winner,
            "the winner must survive the restart byte-identically"
        );
        second.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// A learned winner survives even a *torn* snapshot: the second
/// generation falls back to the previous rotation plus the journals,
/// and still serves the remembered winner warm.
#[test]
fn learned_winner_survives_torn_snapshot() {
    let dir = scratch("learned-torn");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind supervisor port");
    let addr = listener.local_addr().unwrap().to_string();

    let first = Server::start_on(
        listener.try_clone().expect("clone listener"),
        ServerConfig {
            window_ms: 0,
            rotate_every: 1,
            snapshot_dir: Some(dir.display().to_string()),
            faults: FaultPlan {
                kill_after_batches: Some(3),
                torn_snapshot_bytes: Some(10),
                ..FaultPlan::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start first generation");

    let tune_line = autotune_request_line("survivor", &polytops_workloads::stencil_chain(), 5, 64);
    let mut client = RetryClient::new(addr.clone(), patient());
    let (ok, learned, explored, cold_winner) =
        unpack_tune(&client.roundtrip(&tune_line).expect("cold autotune"));
    assert!(ok && !learned && explored > 0, "cold run must explore");

    let stream = &fleet_request_streams(1, 4)[0];
    let addr_ref: &str = &addr;
    std::thread::scope(|s| {
        let worker = s.spawn(move || {
            let mut client = RetryClient::new(addr_ref, patient());
            for line in stream {
                client.roundtrip(line).expect("retry rides the restart");
            }
        });

        while !first.crashed() {
            std::thread::sleep(Duration::from_millis(5));
        }
        first.join();
        let snapshot = std::fs::metadata(dir.join("snapshot")).expect("snapshot exists");
        assert_eq!(snapshot.len(), 10, "the kill must have torn the snapshot");

        let second = Server::start_on(
            listener.try_clone().expect("clone listener"),
            ServerConfig {
                window_ms: 0,
                rotate_every: 1,
                snapshot_dir: Some(dir.display().to_string()),
                ..ServerConfig::default()
            },
        )
        .expect("start second generation");
        let totals = second.persist_totals().expect("persistence enabled");
        assert!(
            totals.recovered_from_prev,
            "the bad checksum must trigger the .prev fallback: {totals:?}"
        );
        assert!(
            totals.relearned_configs > 0,
            "the fallback must still relearn the winner: {totals:?}"
        );
        worker.join().expect("client thread");

        let mut probe = RetryClient::new(second.addr().to_string(), patient());
        let (ok, learned, explored, warm_winner) =
            unpack_tune(&probe.roundtrip(&tune_line).expect("warm autotune"));
        assert!(ok && learned && explored == 0, "recovery must serve warm");
        assert_eq!(
            warm_winner, cold_winner,
            "the winner must survive the torn snapshot byte-identically"
        );
        second.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `drop_response` fault: the daemon truncates a response mid-line
/// and drops the connection; the retrying client reconnects, resends,
/// and still ends with the bit-identical answer.
#[test]
fn dropped_connection_mid_response_is_retried_transparently() {
    let handle = Server::start(ServerConfig {
        window_ms: 0,
        faults: FaultPlan {
            drop_response: Some(2),
            ..FaultPlan::default()
        },
        ..ServerConfig::default()
    })
    .expect("start daemon");

    let mut client = RetryClient::new(handle.addr().to_string(), patient());
    let stream = &fleet_request_streams(1, 3)[0];
    for (i, line) in stream.iter().enumerate() {
        let response = client
            .roundtrip(line)
            .expect("retry absorbs the torn response");
        let (ok, _, results, _) = unpack(&response);
        assert!(ok, "request {i}: {response}");
        assert_eq!(
            results,
            golden(line),
            "request {i}: the resent answer must be bit-identical"
        );
    }
    handle.shutdown();
}

/// The torn-snapshot fault: the kill truncates the freshly rotated
/// snapshot; the next generation detects the bad checksum, falls back
/// to the previous rotation plus both journal generations, and serves
/// the full state warm.
#[test]
fn torn_snapshot_recovers_from_previous_rotation() {
    let dir = scratch("torn");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind supervisor port");
    let addr = listener.local_addr().unwrap().to_string();

    let first = Server::start_on(
        listener.try_clone().expect("clone listener"),
        ServerConfig {
            window_ms: 0,
            rotate_every: 1, // rotate after every batch: .prev exists fast
            snapshot_dir: Some(dir.display().to_string()),
            faults: FaultPlan {
                kill_after_batches: Some(3),
                torn_snapshot_bytes: Some(10),
                ..FaultPlan::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start first generation");

    let stream = &fleet_request_streams(1, 3)[0];
    let addr_ref: &str = &addr;
    std::thread::scope(|s| {
        let worker = s.spawn(move || {
            let mut client = RetryClient::new(addr_ref, patient());
            stream
                .iter()
                .map(|line| client.roundtrip(line).expect("retry rides the restart"))
                .collect::<Vec<_>>()
        });

        while !first.crashed() {
            std::thread::sleep(Duration::from_millis(5));
        }
        first.join();
        let snapshot = std::fs::metadata(dir.join("snapshot")).expect("snapshot exists");
        assert_eq!(snapshot.len(), 10, "the kill must have torn the snapshot");

        let second = Server::start_on(
            listener.try_clone().expect("clone listener"),
            ServerConfig {
                window_ms: 0,
                rotate_every: 1,
                snapshot_dir: Some(dir.display().to_string()),
                ..ServerConfig::default()
            },
        )
        .expect("start second generation");
        let totals = second.persist_totals().expect("persistence enabled");
        assert!(
            totals.recovered_from_prev,
            "the bad checksum must trigger the .prev fallback: {totals:?}"
        );
        assert!(totals.restored_entries > 0, "{totals:?}");

        let responses = worker.join().expect("client thread");
        for (line, response) in stream.iter().zip(&responses) {
            let (ok, _, results, _) = unpack(response);
            assert!(ok, "{response}");
            assert_eq!(results, golden(line), "recovery must stay bit-identical");
        }

        // The recovered state is warm: journaled kernels replay without
        // fresh eliminations.
        let mut probe = RetryClient::new(second.addr().to_string(), patient());
        for line in stream {
            let (ok, hit, results, misses) = unpack(&probe.roundtrip(line).unwrap());
            assert!(ok && hit, "recovered entries must be registry hits");
            assert_eq!(misses, 0, "recovered entries must replay warm");
            assert_eq!(results, golden(line));
        }
        second.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `Client` hard-failure regression: a request submitted while the
/// daemon is *down* (connection refused, nothing listening) must still
/// get its bit-identical answer once the daemon comes up.
#[test]
fn client_submitted_during_restart_window_gets_its_answer() {
    // Learn a free port, then close the listener: a never-accepted
    // listener leaves no TIME_WAIT state, so the port is immediately
    // rebindable — and until then, connects are refused.
    let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let stream = &fleet_request_streams(1, 1)[0];
    let line = stream[0].clone();
    let addr_clone = addr.clone();
    let worker = std::thread::spawn(move || {
        let mut client = RetryClient::new(addr_clone, patient());
        client
            .roundtrip(&line)
            .expect("retry spans the down window")
    });

    // Let the client burn a few refused attempts before the daemon
    // appears.
    std::thread::sleep(Duration::from_millis(150));
    let handle = Server::start(ServerConfig {
        addr,
        window_ms: 0,
        ..ServerConfig::default()
    })
    .expect("rebind the drained port");

    let response = worker.join().expect("client thread");
    let (ok, _, results, _) = unpack(&response);
    assert!(ok, "{response}");
    assert_eq!(
        results,
        golden(&stream[0]),
        "the delayed answer must be bit-identical"
    );
    handle.shutdown();
}
