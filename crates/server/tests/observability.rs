//! End-to-end tests of the tracing + metrics subsystem: the request
//! lifecycle span tree served by the `trace` op, Chrome export, the
//! extended `stats` op, router forwarding telemetry — and the hard
//! contract that tracing never perturbs results (responses bit-identical
//! with tracing on and off, at 1, 2 and 4 worker threads).

use polytops_core::json::Json;
use polytops_server::protocol::{self, Request};
use polytops_server::{Client, Router, RouterConfig, Server, ServerConfig};
use polytops_workloads::all_kernels;
use polytops_workloads::requests::sweep_request_line;

fn config(threads: usize, trace: bool) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        window_ms: 2,
        threads,
        trace,
        ..ServerConfig::default()
    }
}

/// Runs the standard sweep against one fresh daemon and returns each
/// kernel's `results` text in order.
fn sweep_results(threads: usize, trace: bool) -> Vec<String> {
    let handle = Server::start(config(threads, trace)).expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut results = Vec::new();
    for (kernel, scop) in all_kernels() {
        let line = sweep_request_line(kernel, kernel, &scop);
        let response = client.roundtrip(&line).expect("roundtrip");
        let parsed = polytops_core::json::parse(&response).expect("response parses");
        let obj = parsed.as_object().expect("response object");
        assert_eq!(obj["ok"].as_bool(), Some(true), "{kernel}: {response}");
        results.push(obj["results"].compact());
    }
    handle.shutdown();
    results
}

#[test]
fn tracing_never_perturbs_results_at_1_2_4_threads() {
    for threads in [1usize, 2, 4] {
        let traced = sweep_results(threads, true);
        let untraced = sweep_results(threads, false);
        assert_eq!(
            traced, untraced,
            "{threads} threads: tracing on/off must be bit-identical"
        );
        // Both must also equal the offline engine (the existing
        // contract, re-checked under instrumentation).
        for ((kernel, scop), got) in all_kernels().into_iter().zip(&traced) {
            let line = sweep_request_line(kernel, kernel, &scop);
            let Request::Schedule(req) = protocol::parse_request(&line).unwrap() else {
                panic!("sweep line must parse as a schedule request");
            };
            let want = protocol::offline_results(&req).compact();
            assert_eq!(got, &want, "{kernel} at {threads} threads");
        }
    }
}

/// Collects every name in a span tree, depth-first.
fn tree_names(node: &Json, out: &mut Vec<String>) {
    let obj = node.as_object().expect("tree node object");
    out.push(obj["name"].as_str().expect("node name").to_string());
    for child in obj["children"].as_array().expect("children array") {
        tree_names(child, out);
    }
}

#[test]
fn trace_op_returns_the_full_request_lifecycle_tree() {
    let handle = Server::start(config(2, true)).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let line = sweep_request_line("traced", "matmul", &polytops_workloads::matmul());
    let response = client.roundtrip(&line).expect("schedule roundtrip");
    assert!(response.contains(r#""ok":true"#), "{response}");

    let trace = client.roundtrip(r#"{"op":"trace"}"#).expect("trace op");
    let parsed = polytops_core::json::parse(&trace).expect("trace parses");
    let obj = parsed.as_object().expect("trace object");
    assert_eq!(obj["ok"].as_bool(), Some(true));
    let body = obj["trace"].as_object().expect("trace must not be null");
    assert!(body["id"].as_int().unwrap() > 0);

    // The flat span list and the nested tree describe the same spans.
    let spans = body["spans"].as_array().expect("spans array");
    assert!(!spans.is_empty());

    let tree = body["tree"].as_array().expect("tree array");
    assert_eq!(tree.len(), 1, "one root: the request span");
    let root = tree[0].as_object().unwrap();
    assert_eq!(root["name"].as_str(), Some("request"));

    // Direct lifecycle children, in start order.
    let phases: Vec<&str> = root["children"]
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c.as_object().unwrap()["name"].as_str().unwrap())
        .collect();
    assert_eq!(
        phases,
        ["read", "admission", "solve", "serialize", "write"],
        "lifecycle phases in order"
    );

    // The solve phase carries the engine's span tree: per-job, the
    // pipeline with its per-dimension work.
    let mut names = Vec::new();
    tree_names(&tree[0], &mut names);
    for expected in ["job", "pipeline", "dimension"] {
        assert!(
            names.iter().any(|n| n == expected),
            "span tree must contain `{expected}`: {names:?}"
        );
    }

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn trace_op_exports_as_valid_chrome_trace_json() {
    let handle = Server::start(config(2, true)).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let line = sweep_request_line("chrome", "jacobi_1d", &polytops_workloads::jacobi_1d());
    client.roundtrip(&line).expect("schedule roundtrip");

    let trace = client.roundtrip(r#"{"op":"trace"}"#).expect("trace op");
    let parsed = polytops_core::json::parse(&trace).expect("trace parses");
    let body = &parsed.as_object().unwrap()["trace"];
    let events = protocol::chrome_events_from_trace(body).expect("convert to Chrome events");
    let span_count = body.as_object().unwrap()["spans"].as_array().unwrap().len();
    assert_eq!(events.len(), span_count);

    let chrome = polytops_obs::chrome_trace(&events);
    let reparsed = polytops_core::json::parse(&chrome).expect("Chrome export is valid JSON");
    let trace_events = reparsed.as_object().unwrap()["traceEvents"]
        .as_array()
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), span_count);
    for event in trace_events {
        let event = event.as_object().unwrap();
        assert_eq!(event["ph"].as_str(), Some("X"), "complete events");
        assert!(event.contains_key("ts") && event.contains_key("dur"));
    }

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn stats_op_reports_unified_counters_and_histograms() {
    let handle = Server::start(config(2, true)).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let line = sweep_request_line(
        "stats",
        "stencil_chain",
        &polytops_workloads::stencil_chain(),
    );
    client.roundtrip(&line).expect("schedule roundtrip");

    let stats = client.stats().expect("stats op");
    let obs = stats.as_object().unwrap()["obs"]
        .as_object()
        .expect("obs section");
    assert_eq!(obs["spans_enabled"].as_bool(), Some(true));

    let counters = obs["counters"].as_object().expect("counters");
    assert_eq!(counters["service.requests"].as_int(), Some(1));
    assert_eq!(counters["service.batches"].as_int(), Some(1));
    // The pipeline's counters flow through the same registry the old
    // hand-rolled structs fed; solver totals must agree with them.
    assert!(counters["solver.dimensions"].as_int().unwrap() > 0);
    let solver = stats.as_object().unwrap()["solver"].as_object().unwrap();
    assert_eq!(
        solver["dual_pivots"].as_int(),
        counters["solver.dual_pivots"].as_int(),
        "wire solver totals come from the unified registry"
    );

    let histograms = obs["histograms"].as_object().expect("histograms");
    let queue = histograms["pool.queue_wait_ns"]
        .as_object()
        .expect("queue-wait histogram");
    assert!(queue["count"].as_int().unwrap() > 0);
    assert!(queue["p99_ns"].as_int().unwrap() >= queue["p50_ns"].as_int().unwrap());

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn untraced_daemon_serves_null_trace_but_keeps_counters() {
    let handle = Server::start(config(2, false)).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let line = sweep_request_line("quiet", "matmul", &polytops_workloads::matmul());
    client.roundtrip(&line).expect("schedule roundtrip");

    let trace = client.roundtrip(r#"{"op":"trace"}"#).expect("trace op");
    assert_eq!(trace, r#"{"ok":true,"trace":null}"#);

    let stats = client.stats().expect("stats op");
    let obs = stats.as_object().unwrap()["obs"].as_object().unwrap();
    assert_eq!(obs["spans_enabled"].as_bool(), Some(false));
    let counters = obs["counters"].as_object().unwrap();
    assert_eq!(counters["service.requests"].as_int(), Some(1));
    assert!(counters["solver.dimensions"].as_int().unwrap() > 0);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn router_stats_carry_per_shard_forwarding_telemetry() {
    let shard_a = Server::start(config(2, true)).expect("shard a");
    let shard_b = Server::start(config(2, true)).expect("shard b");
    let router = Router::start(RouterConfig {
        shards: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("router");

    let mut client = Client::connect(router.addr()).expect("connect router");
    let kernels = all_kernels();
    for (kernel, scop) in &kernels {
        let line = sweep_request_line(kernel, kernel, scop);
        let response = client.roundtrip(&line).expect("forwarded roundtrip");
        assert!(response.contains(r#""ok":true"#), "{response}");
    }

    let stats = client.stats().expect("router stats");
    let top = stats.as_object().expect("stats object");
    assert_eq!(top["router"].as_bool(), Some(true));
    let obs = top["obs"].as_object().expect("router obs section");
    let counters = obs["counters"].as_object().unwrap();
    let forwarded: i64 = (0..2)
        .map(|i| {
            counters
                .get(&format!("router.shard{i}.requests"))
                .and_then(Json::as_int)
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        forwarded,
        kernels.len() as i64,
        "every schedule forward is counted against its shard"
    );
    let histograms = obs["histograms"].as_object().unwrap();
    let fleet = histograms["router.forward_ns"].as_object().unwrap();
    assert_eq!(fleet["count"].as_int(), Some(kernels.len() as i64));

    // The router stamped each forwarded envelope with a trace id, so
    // the shards' span trees adopted router-issued ids.
    let mut direct = Client::connect(shard_a.addr()).expect("connect shard");
    let trace = direct
        .roundtrip(r#"{"op":"trace"}"#)
        .expect("shard trace op");
    let parsed = polytops_core::json::parse(&trace).unwrap();
    let body = parsed.as_object().unwrap()["trace"]
        .as_object()
        .expect("shard served traced requests");
    assert!(body["id"].as_int().unwrap() > 0);

    client.shutdown().expect("fleet shutdown");
    router.join();
    shard_a.join();
    shard_b.join();
}
