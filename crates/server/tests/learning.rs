//! The learned-registry regression suite: re-submitting a previously
//! tuned SCoP through the `autotune` op must be served from the
//! registry's remembered winner — `"learned":true` with
//! `"explored_scenarios":0` and a `winner` object byte-identical to
//! the cold exploration's — at every worker-thread count, and through
//! the consistent-hash router (same fingerprint → same shard → the
//! shard holding the learned entry answers the warm hit).

use polytops_server::{Client, Router, RouterConfig, Server, ServerConfig};
use polytops_workloads::requests::autotune_request_line;

/// Unpacks an autotune response into
/// `(ok, learned, explored_scenarios, winner-object text)`.
fn unpack(response: &str) -> (bool, bool, i64, String) {
    let parsed = polytops_core::json::parse(response).expect("response parses");
    let obj = parsed.as_object().expect("response object");
    (
        obj["ok"].as_bool().expect("ok flag"),
        obj["learned"].as_bool().expect("learned flag"),
        obj["explored_scenarios"].as_int().expect("explored count"),
        obj["winner"].compact(),
    )
}

/// Cold exploration then warm re-submission, at 1, 2 and 4 worker
/// threads: the warm serve must skip exploration entirely and return
/// the remembered winner byte-identically — and the winner must also
/// be identical *across* thread counts (the tuner's bit-identity
/// contract extends to the learned path).
#[test]
fn warm_resubmission_is_served_from_the_learned_registry() {
    let scop = polytops_workloads::jacobi_1d();
    let line = autotune_request_line("tune", &scop, 6, 64);
    let mut winners: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4] {
        let handle = Server::start(ServerConfig {
            threads,
            ..ServerConfig::default()
        })
        .expect("start daemon");
        let mut client = Client::connect(handle.addr()).expect("connect");

        let cold = client.roundtrip(&line).expect("cold autotune");
        let (ok, learned, explored, cold_winner) = unpack(&cold);
        assert!(ok, "threads={threads}: {cold}");
        assert!(!learned, "threads={threads}: first sight cannot be warm");
        assert_eq!(
            explored, 6,
            "threads={threads}: cold run sweeps the lattice"
        );

        let warm = client.roundtrip(&line).expect("warm autotune");
        let (ok, learned, explored, warm_winner) = unpack(&warm);
        assert!(ok, "threads={threads}: {warm}");
        assert!(
            learned,
            "threads={threads}: re-submission must be served warm"
        );
        assert_eq!(
            explored, 0,
            "threads={threads}: a warm serve explores nothing"
        );
        assert_eq!(
            warm_winner, cold_winner,
            "threads={threads}: the remembered winner must be byte-identical"
        );
        // The warm response lists only the winner: loser scores are
        // not persisted.
        let parsed = polytops_core::json::parse(&warm).unwrap();
        let candidates = parsed.as_object().unwrap()["candidates"]
            .as_array()
            .unwrap();
        assert_eq!(candidates.len(), 1, "threads={threads}: {warm}");

        // The stats op surfaces the learned store and the hit counter.
        let stats = client.roundtrip_json(r#"{"op":"stats"}"#).expect("stats");
        let obj = stats.as_object().unwrap();
        let registry = obj["registry"].as_object().unwrap();
        assert_eq!(registry["learned"].as_int(), Some(1), "{}", stats.compact());
        let tuner = obj["tuner"].as_object().unwrap();
        assert_eq!(tuner["requests"].as_int(), Some(2), "{}", stats.compact());
        assert_eq!(
            tuner["learned_hits"].as_int(),
            Some(1),
            "{}",
            stats.compact()
        );

        winners.push(cold_winner);
        handle.shutdown();
    }
    assert!(
        winners.windows(2).all(|w| w[0] == w[1]),
        "the tuned winner must not depend on the worker-thread count"
    );
}

/// Router affinity: autotune requests for one fingerprint always land
/// on the same shard, so the warm hit finds the learned entry — and
/// the fleet stats show exactly one shard holding it.
#[test]
fn router_sends_resubmissions_to_the_shard_holding_the_learned_entry() {
    let shard_a = Server::start(ServerConfig::default()).expect("shard a");
    let shard_b = Server::start(ServerConfig::default()).expect("shard b");
    let router = Router::start(RouterConfig {
        shards: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
        ..RouterConfig::default()
    })
    .expect("router");
    let mut client = Client::connect(router.addr()).expect("connect router");

    let scop = polytops_workloads::stencil_chain();
    let line = autotune_request_line("routed", &scop, 5, 64);
    let (ok, learned, _, cold_winner) = unpack(&client.roundtrip(&line).unwrap());
    assert!(ok && !learned);
    let (ok, learned, explored, warm_winner) = unpack(&client.roundtrip(&line).unwrap());
    assert!(ok, "the re-submission must route to a live shard");
    assert!(
        learned && explored == 0,
        "consistent hashing must land the re-submission on the learned shard"
    );
    assert_eq!(warm_winner, cold_winner);

    // Exactly one shard holds the learned entry and served both
    // requests.
    let stats = client.roundtrip_json(r#"{"op":"stats"}"#).unwrap();
    let shards = stats.as_object().unwrap()["shards"].as_array().unwrap();
    let learned_counts: Vec<i64> = shards
        .iter()
        .map(|s| {
            s.as_object().unwrap()["registry"].as_object().unwrap()["learned"]
                .as_int()
                .unwrap()
        })
        .collect();
    let hit_counts: Vec<i64> = shards
        .iter()
        .map(|s| {
            s.as_object().unwrap()["tuner"].as_object().unwrap()["learned_hits"]
                .as_int()
                .unwrap()
        })
        .collect();
    assert_eq!(learned_counts.iter().sum::<i64>(), 1, "{}", stats.compact());
    assert_eq!(hit_counts.iter().sum::<i64>(), 1, "{}", stats.compact());
    let owner = learned_counts.iter().position(|&c| c == 1).unwrap();
    assert_eq!(
        hit_counts[owner], 1,
        "the warm hit must have been served by the owning shard"
    );

    let ack = client.roundtrip(r#"{"op":"shutdown"}"#).unwrap();
    assert!(ack.contains("shutting_down"), "{ack}");
    router.join();
    shard_a.join();
    shard_b.join();
}
