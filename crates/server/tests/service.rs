//! End-to-end tests of the `polytopsd` daemon over real TCP
//! connections: protocol behaviour, batching, registry persistence, and
//! the bit-identity contract against the offline scenario engine.

use std::time::Duration;

use polytops_core::json::Json;
use polytops_server::protocol::{self, Request};
use polytops_server::{Client, Server, ServerConfig};
use polytops_workloads::requests::{sweep_request_line, sweep_request_streams};
use polytops_workloads::{all_kernels, jacobi_1d, matmul, producer_consumer, stencil_chain};

fn start(config: ServerConfig) -> polytops_server::ServerHandle {
    Server::start(config).expect("bind ephemeral port")
}

fn local_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        window_ms: 5,
        ..ServerConfig::default()
    }
}

/// Parses a schedule response and returns (ok, registry_hit, results
/// compact text).
fn unpack(response: &str) -> (bool, bool, String) {
    let parsed = polytops_core::json::parse(response).expect("response parses");
    let obj = parsed.as_object().expect("response object");
    let ok = obj["ok"].as_bool().expect("ok flag");
    let hit = obj
        .get("registry")
        .and_then(Json::as_object)
        .and_then(|r| r.get("hit"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let results = obj.get("results").map(Json::compact).unwrap_or_default();
    (ok, hit, results)
}

/// The per-scenario pipeline stats of a schedule response (the
/// diagnostic `stats` field, outside the bit-identity contract).
fn pipeline_stats(response: &str) -> Vec<(i64, i64)> {
    let parsed = polytops_core::json::parse(response).expect("response parses");
    parsed.as_object().expect("response object")["stats"]
        .as_array()
        .expect("stats array")
        .iter()
        .map(|entry| {
            let pipeline = entry.as_object().unwrap()["pipeline"].as_object().unwrap();
            (
                pipeline["farkas_hits"].as_int().unwrap(),
                pipeline["farkas_misses"].as_int().unwrap(),
            )
        })
        .collect()
}

#[test]
fn ping_stats_and_malformed_lines() {
    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    let pong = client.roundtrip(r#"{"op":"ping"}"#).unwrap();
    assert!(pong.contains("pong"), "{pong}");

    // A malformed line gets an error response and keeps the connection.
    let err = client.roundtrip("this is not json").unwrap();
    assert!(err.contains(r#""ok":false"#), "{err}");

    let stats = client.stats().unwrap();
    let registry = stats.as_object().unwrap()["registry"].as_object().unwrap();
    assert_eq!(registry["entries"].as_int(), Some(0));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn daemon_matches_offline_engine_bit_for_bit() {
    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    for (kernel, scop) in all_kernels() {
        let line = sweep_request_line(kernel, kernel, &scop);
        let (ok, _, got) = unpack(&client.roundtrip(&line).unwrap());
        assert!(ok, "daemon scheduled {kernel}");
        let req = match protocol::parse_request(&line).unwrap() {
            Request::Schedule(req) => req,
            other => panic!("generated line must be a schedule request, got {other:?}"),
        };
        let want = protocol::offline_results(&req).compact();
        assert_eq!(got, want, "{kernel}: daemon must match the offline engine");
    }
    handle.shutdown();
}

#[test]
fn warm_requests_hit_the_registry_and_replay_everything() {
    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let line = sweep_request_line("cold", "matmul", &matmul());

    let (ok, hit, cold) = unpack(&client.roundtrip(&line).unwrap());
    assert!(ok && !hit, "first sight must be a registry miss");

    // Same SCoP from a *different* connection: registry hit, identical
    // bytes, and zero fresh Farkas eliminations (everything replays).
    let mut second = Client::connect(handle.addr()).unwrap();
    let line2 = sweep_request_line("warm", "matmul", &matmul());
    let response = second.roundtrip(&line2).unwrap();
    let (ok, hit, warm) = unpack(&response);
    assert!(ok && hit, "second sight must be a registry hit");
    assert_eq!(cold, warm, "warm results must be bit-identical to cold");
    // The fast_path scenario can schedule without ever building Farkas
    // constraints (heuristic proposal, no lexmin), so it legitimately
    // reports zero cache traffic; every scenario that *does* consult
    // the cache must hit, and the ILP presets guarantee at least one.
    let pairs = pipeline_stats(&response);
    assert!(pairs.iter().any(|&(hits, _)| hits > 0));
    for (_, misses) in pairs {
        assert_eq!(misses, 0, "warm run must not re-eliminate");
    }

    let stats = handle.registry_stats();
    assert_eq!(stats.entries, 1, "one kernel resident");
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    handle.shutdown();
}

#[test]
fn near_identical_scops_dedupe_onto_one_entry() {
    // producer_consumer with its accesses permuted (write listed before
    // read): the dependence vector would come out permuted, but the
    // canonical fingerprint ignores access order, so the daemon must
    // dedupe — and answer from the representative's caches.
    use polytops_ir::{Aff, ScopBuilder};
    let permuted = {
        let mut b = ScopBuilder::new("producer_consumer");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let bb = b.array("B", &[n.clone()], 8);
        let c = b.array("C", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.stmt("S0")
            .write(bb, &[Aff::var("i")])
            .read(a, &[Aff::var("i")])
            .text("B[i] = A[i];")
            .add(&mut b);
        b.close_loop();
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S1")
            .write(c, &[Aff::var("j")])
            .read(bb, &[Aff::var("j")])
            .text("C[j] = B[j];")
            .add(&mut b);
        b.close_loop();
        b.build().unwrap()
    };

    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let (ok, hit, original) = unpack(
        &client
            .roundtrip(&sweep_request_line(
                "a",
                "producer_consumer",
                &producer_consumer(),
            ))
            .unwrap(),
    );
    assert!(ok && !hit);
    let (ok, hit, deduped) = unpack(
        &client
            .roundtrip(&sweep_request_line("b", "permuted", &permuted))
            .unwrap(),
    );
    assert!(ok, "permuted submission schedules");
    assert!(hit, "permuted submission must dedupe onto the entry");
    assert_eq!(
        original, deduped,
        "deduped clients get bit-identical answers"
    );
    assert_eq!(handle.registry_stats().entries, 1);
    handle.shutdown();
}

#[test]
fn registry_evicts_beyond_capacity() {
    let handle = start(ServerConfig {
        registry_capacity: 2,
        ..local_config()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    for (kernel, scop) in [
        ("stencil_chain", stencil_chain()),
        ("matmul", matmul()),
        ("jacobi_1d", jacobi_1d()),
    ] {
        let (ok, _, _) = unpack(
            &client
                .roundtrip(&sweep_request_line(kernel, kernel, &scop))
                .unwrap(),
        );
        assert!(ok, "{kernel} schedules");
    }
    let stats = handle.registry_stats();
    assert_eq!(stats.entries, 2, "LRU bound holds");
    assert_eq!(stats.evictions, 1);

    // The coldest entry (stencil_chain) was evicted: re-requesting it is
    // a miss (which in turn evicts matmul, now coldest); jacobi_1d —
    // most recently used — stays resident through both.
    let (_, hit, _) = unpack(
        &client
            .roundtrip(&sweep_request_line(
                "again",
                "stencil_chain",
                &stencil_chain(),
            ))
            .unwrap(),
    );
    assert!(!hit, "evicted SCoP must re-register");
    let (_, hit, _) = unpack(
        &client
            .roundtrip(&sweep_request_line("again", "jacobi_1d", &jacobi_1d()))
            .unwrap(),
    );
    assert!(hit, "most-recently-used SCoP must stay resident");
    handle.shutdown();
}

#[test]
fn concurrent_clients_match_sequential_offline_runs() {
    // N clients replay the standard sweep concurrently (batched into
    // shared ScenarioSets by the admission window); every response must
    // equal the N sequential offline runs — which all equal one
    // offline run, computed once here.
    let clients = 4;
    let handle = start(ServerConfig {
        window_ms: 20, // wide window: force cross-client batches
        ..local_config()
    });
    let addr = handle.addr();

    let streams = sweep_request_streams(clients);
    let mut expected: Vec<(String, String)> = Vec::new();
    for line in &streams[0] {
        let req = match protocol::parse_request(line).unwrap() {
            Request::Schedule(req) => req,
            other => panic!("generated line must be a schedule request, got {other:?}"),
        };
        let kernel = req.name.clone();
        expected.push((kernel, protocol::offline_results(&req).compact()));
    }

    let responses: Vec<Vec<(String, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                s.spawn(move || {
                    let mut client = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
                    for line in stream {
                        client.send_line(line).unwrap();
                    }
                    stream
                        .iter()
                        .map(|_| {
                            let (ok, _, results) = unpack(&client.recv_line().unwrap());
                            assert!(ok);
                            results
                        })
                        .zip(stream.iter().map(|l| {
                            // Recover the kernel name from the request id.
                            let parsed = polytops_core::json::parse(l).unwrap();
                            let id = parsed.as_object().unwrap()["id"]
                                .as_str()
                                .unwrap()
                                .to_string();
                            id.split_once('/').unwrap().1.to_string()
                        }))
                        .map(|(results, kernel)| (kernel, results))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for client_responses in responses {
        assert_eq!(client_responses.len(), expected.len());
        for (kernel, got) in client_responses {
            let (_, want) = expected
                .iter()
                .find(|(k, _)| *k == kernel)
                .expect("known kernel");
            assert_eq!(got, *want, "{kernel}: daemon must match offline run");
        }
    }
    // All N copies of each kernel deduped onto one entry.
    assert_eq!(handle.registry_stats().entries, all_kernels().len());
    handle.shutdown();
}

#[test]
fn autotune_op_returns_a_certified_deterministic_winner() {
    use std::collections::BTreeMap;
    let line = Json::Object(BTreeMap::from([
        ("op".to_string(), Json::Str("autotune".to_string())),
        ("id".to_string(), Json::Str("tune/jacobi".to_string())),
        (
            "scop".to_string(),
            Json::Str(polytops_ir::print_scop(&jacobi_1d())),
        ),
        (
            "machine".to_string(),
            Json::Object(BTreeMap::from([
                ("num_cores".to_string(), Json::Int(8)),
                ("cache_bytes".to_string(), Json::Int(1 << 20)),
            ])),
        ),
        ("max_candidates".to_string(), Json::Int(8)),
    ]))
    .compact();

    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let first = client.roundtrip(&line).unwrap();
    let parsed = polytops_core::json::parse(&first).unwrap();
    let obj = parsed.as_object().unwrap();
    assert_eq!(obj["ok"].as_bool(), Some(true), "{first}");
    let winner = obj["winner"].as_object().unwrap();
    assert_eq!(winner["certified"].as_bool(), Some(true));
    let winner_score = winner["score"].as_int().unwrap();
    let candidates = obj["candidates"].as_array().unwrap();
    assert_eq!(candidates.len(), 8);
    // The winner's score is the maximum over every scored candidate —
    // in particular it matches or beats the default preset (the first
    // lattice entry, "pluto").
    let first_candidate = candidates[0].as_object().unwrap();
    assert_eq!(first_candidate["name"].as_str(), Some("pluto"));
    for c in candidates {
        if let Some(score) = c.as_object().unwrap()["score"].as_int() {
            assert!(winner_score >= score);
        }
    }

    // First sight means a full exploration.
    assert_eq!(obj["learned"].as_bool(), Some(false), "{first}");
    assert_eq!(obj["explored_scenarios"].as_int(), Some(8), "{first}");

    // Same request, fresh connection: served warm from the learned
    // registry — zero exploration, a byte-identical winner object, and
    // only the winner under `candidates` (loser scores are not
    // persisted).
    let mut second = Client::connect(handle.addr()).unwrap();
    let warm = second.roundtrip(&line).unwrap();
    let warm_parsed = polytops_core::json::parse(&warm).unwrap();
    let warm_obj = warm_parsed.as_object().unwrap();
    assert_eq!(warm_obj["ok"].as_bool(), Some(true), "{warm}");
    assert_eq!(warm_obj["learned"].as_bool(), Some(true), "{warm}");
    assert_eq!(warm_obj["explored_scenarios"].as_int(), Some(0), "{warm}");
    assert_eq!(
        warm_obj["winner"].compact(),
        obj["winner"].compact(),
        "the remembered winner must be byte-identical"
    );
    assert_eq!(
        warm_obj["candidates"].as_array().unwrap().len(),
        1,
        "{warm}"
    );
    let registry = handle.registry_stats();
    assert_eq!(registry.entries, 1, "autotune SCoPs become resident");
    assert_eq!(registry.hits, 1, "second autotune rides the registry");
    // Autotune traffic shows up in the service counters.
    let stats = second.stats().unwrap();
    assert_eq!(
        stats.as_object().unwrap()["requests"].as_int(),
        Some(2),
        "{stats:?}"
    );
    handle.shutdown();
}

#[test]
fn shutdown_op_stops_the_daemon() {
    let handle = start(local_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let ack = client.shutdown().unwrap();
    assert_eq!(
        ack.as_object().unwrap()["shutting_down"].as_bool(),
        Some(true)
    );
    // join() returns only when accept and batcher threads exit.
    handle.join();
}
