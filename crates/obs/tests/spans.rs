//! Property tests for span-tree well-formedness under concurrency.
//!
//! Random per-worker nesting programs run at 1, 2 and 4 threads; the
//! resulting trace must always be a closed forest: every opened span is
//! in the ring with a sane interval, every non-root parent exists, and
//! a parent's interval contains each child's (one recorder clock makes
//! intervals comparable across threads).

use proptest::prelude::*;

use polytops_obs::{Recorder, SpanLink, SpanRecord};

/// Executes one program on the current thread: each entry opens a chain
/// of scoped spans nested to that depth, all under `link`'s span.
fn run_program(link: &SpanLink, depths: &[usize]) {
    let _guard = link.bind();
    for &depth in depths {
        nest(depth);
    }
}

fn nest(depth: usize) {
    let _span = polytops_obs::span_arg("work", depth as i64);
    if depth > 1 {
        nest(depth - 1);
    }
}

/// Runs `programs` distributed round-robin over `threads` workers under
/// one root span and returns the finished trace.
fn run_traced(programs: &[Vec<usize>], threads: usize) -> Vec<SpanRecord> {
    let recorder = Recorder::new(true);
    let root = recorder.root_span("root");
    let trace = root.trace_id();
    std::thread::scope(|s| {
        for worker in 0..threads {
            let assigned: Vec<&Vec<usize>> =
                programs.iter().skip(worker).step_by(threads).collect();
            if assigned.is_empty() {
                continue;
            }
            let handle = root.child_arg("worker", worker as i64);
            s.spawn(move || {
                let link = handle.link().expect("worker span is armed");
                for program in assigned {
                    let job = link.span("job");
                    let job_link = job.link().expect("job span is armed");
                    run_program(&job_link, program);
                    job.finish();
                }
                handle.finish();
            });
        }
    });
    root.finish();
    recorder.spans_for(trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn span_forest_stays_well_formed(
        programs in proptest::collection::vec(
            proptest::collection::vec(1usize..=3, 1..5),
            1..7,
        ),
    ) {
        for &threads in &[1usize, 2, 4] {
            let spans = run_traced(&programs, threads);

            // Every opened span closed into the ring: the root, one
            // span per non-empty worker, one "job" per program, and one
            // "work" span per unit of nesting depth.
            let workers = threads.min(programs.len());
            let work: usize = programs.iter().flatten().sum();
            prop_assert_eq!(spans.len(), 1 + workers + programs.len() + work);

            let by_id: std::collections::BTreeMap<u64, &SpanRecord> =
                spans.iter().map(|s| (s.id, s)).collect();
            prop_assert_eq!(by_id.len(), spans.len());
            for span in &spans {
                prop_assert!(span.end_ns >= span.start_ns, "span {} closed sanely", span.id);
                if span.name == "root" {
                    prop_assert_eq!(span.parent, 0);
                    continue;
                }
                // Parents outlive children: the parent exists in the
                // same trace and its interval contains the child's.
                let parent = by_id.get(&span.parent);
                prop_assert!(parent.is_some(), "span {} has live parent", span.id);
                let parent = parent.unwrap();
                prop_assert!(parent.start_ns <= span.start_ns);
                prop_assert!(parent.end_ns >= span.end_ns);
            }

            // Single-threaded runs keep every span on one timeline lane.
            if threads == 1 {
                let tids: std::collections::BTreeSet<u64> =
                    spans.iter().filter(|s| s.name == "work").map(|s| s.tid).collect();
                prop_assert_eq!(tids.len(), 1);
            }
        }
    }
}

#[test]
fn chrome_export_of_concurrent_trace_is_valid_json() {
    let programs = vec![vec![2, 3], vec![1], vec![3, 1, 2]];
    let spans = run_traced(&programs, 2);
    let events: Vec<polytops_obs::ChromeEvent> = spans.iter().map(Into::into).collect();
    let chrome = polytops_obs::chrome_trace(&events);
    // The export parses as JSON and carries every span as a complete
    // ("ph":"X") event.
    assert_eq!(chrome.matches("\"ph\":\"X\"").count(), spans.len());
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
}
