//! In-tree observability kernel for the PolyTOPS stack: spans,
//! counters, latency histograms and Chrome trace-event export.
//!
//! Same philosophy as `core/src/json.rs` and `vendor/proptest`: the
//! build container has no crates.io access, so instead of `tracing` +
//! `metrics` this crate implements the minimal subset the scheduler
//! actually needs, with zero dependencies.
//!
//! Three recording primitives hang off a [`Recorder`]:
//!
//! - [`Counter`] — a relaxed atomic sum (requests, batches, pivots …).
//! - [`Histogram`] — log2-bucketed latency distribution; recording is a
//!   single relaxed atomic increment per bucket.
//! - Spans — timed intervals with parent/child structure. Completed
//!   spans land in a bounded ring buffer (a short mutex critical
//!   section; counters and histograms stay lock-free).
//!
//! Spans come in two flavors:
//!
//! - [`SpanHandle`] — an explicit, owned span that may cross threads
//!   (a request travelling event loop → batcher → pool worker). It
//!   finishes when dropped or via [`SpanHandle::finish`].
//! - Scoped spans ([`span`]/[`span_arg`]) — RAII guards bound to the
//!   *current thread's* span context. A worker enters a context with
//!   [`SpanLink::bind`]; until the guard drops, every [`span`] call on
//!   that thread nests under the innermost open span via a per-thread
//!   parent stack. With no context bound, [`span`] is a single
//!   thread-local read and a branch — the "tracing disabled" fast path.
//!
//! Trace identity: every root span allocates (or inherits) a `trace`
//! id; the daemon propagates it in the request JSON envelope so a
//! router hop and the shard that serves it agree on the id. The
//! recorder can then return one request's complete span set
//! ([`Recorder::spans_for`]) for the `trace` op, or everything recent
//! for Chrome export ([`chrome_trace`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bound of the completed-span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 16384;

/// Number of log2 histogram buckets. Bucket 0 holds exact zeros;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 64;

// ---------------------------------------------------------------------------
// Thread identity
// ---------------------------------------------------------------------------

/// Process-wide ordinal source for [`thread_ordinal`]. Labeling only —
/// never part of any result.
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// A small, stable, per-thread ordinal (1, 2, 3 … in first-use order),
/// used as the `tid` of recorded spans. Friendlier than the opaque OS
/// thread id in Chrome's timeline lanes.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonic counter. All operations are relaxed atomics: counters
/// are diagnostic sums and never participate in result bit-identity.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one and returns the *new* value. The return value
    /// makes the counter usable as an ordinal source (the daemon's
    /// `drop_response` fault indexes the Nth response this way).
    pub fn inc(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A log2-bucketed histogram of nanosecond durations. Recording is one
/// relaxed `fetch_add` per bucket plus two for count/sum — safe to call
/// from every pool worker concurrently.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The log2 bucket index of a value: 0 for 0, `floor(log2(v)) + 1`
/// (clamped to the last bucket) otherwise.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of a bucket, used as the quantile
/// estimate reported for any value that landed in it.
fn bucket_ceiling(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one duration in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (nanoseconds).
    pub sum_ns: u64,
    /// Per-bucket counts; see [`HISTOGRAM_BUCKETS`] for the layout.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// An upper-bound estimate of the `q`-quantile (0.0 ≤ q ≤ 1.0):
    /// the ceiling of the bucket where the cumulative count crosses
    /// `q * count`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let clamped = q.clamp(0.0, 1.0);
        // ceil(q * count), as integer arithmetic on the clamped value.
        let target = ((clamped * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_ceiling(i);
            }
        }
        bucket_ceiling(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean recorded value (0 for an empty histogram).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Span records
// ---------------------------------------------------------------------------

/// One completed span, as stored in the recorder's ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace (request) id this span belongs to.
    pub trace: u64,
    /// Span id, unique within the recorder's lifetime (never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// Stage name (`"request"`, `"solve"`, `"ilp_solve"` …).
    pub name: &'static str,
    /// Optional integer argument (dimension index, scenario index …).
    pub arg: Option<i64>,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the recorder's epoch (≥ `start_ns`).
    pub end_ns: u64,
    /// [`thread_ordinal`] of the thread that closed the span.
    pub tid: u64,
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// The sink all telemetry flows into: named counters and histograms
/// plus a bounded ring of completed spans. One recorder per daemon (or
/// per router / bench harness); there is no global registry.
pub struct Recorder {
    epoch: Instant,
    spans_enabled: bool,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    next_span: AtomicU64,
    next_trace: AtomicU64,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("spans_enabled", &self.spans_enabled)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// Creates a recorder. `spans_enabled: false` is the daemon's
    /// `--no-trace` mode: counters and histograms still accumulate, but
    /// every root span is inert, so no span context is ever bound and
    /// scoped spans cost one thread-local read.
    pub fn new(spans_enabled: bool) -> Arc<Recorder> {
        Recorder::with_capacity(spans_enabled, DEFAULT_SPAN_CAPACITY)
    }

    /// Creates a recorder with an explicit span ring bound.
    pub fn with_capacity(spans_enabled: bool, capacity: usize) -> Arc<Recorder> {
        Arc::new(Recorder {
            epoch: Instant::now(),
            spans_enabled,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
        })
    }

    /// Whether root spans record anything.
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled
    }

    /// Monotonic nanoseconds since this recorder was created.
    pub fn now_ns(&self) -> u64 {
        saturate_ns(self.epoch.elapsed().as_nanos())
    }

    /// Converts an externally captured [`Instant`] (for example the
    /// moment a request's first byte arrived) to recorder time.
    /// Instants before the epoch clamp to 0.
    pub fn ns_of(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .map_or(0, |d| saturate_ns(d.as_nanos()))
    }

    /// Allocates a fresh trace id (never 0).
    pub fn begin_trace(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    fn alloc_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    fn push_record(&self, record: SpanRecord) {
        let mut ring = self.ring.lock().expect("span ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The counter with this name, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// The histogram with this name, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Every counter, sorted by name (BTreeMap order — deterministic
    /// JSON for the `stats` op).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.counters.lock().expect("counter map poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Every histogram snapshot, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self.histograms.lock().expect("histogram map poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// All completed spans of one trace still in the ring, in
    /// completion order.
    pub fn spans_for(&self, trace: u64) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("span ring poisoned");
        ring.iter().filter(|s| s.trace == trace).cloned().collect()
    }

    /// Every completed span still in the ring, oldest first.
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().expect("span ring poisoned");
        ring.iter().cloned().collect()
    }

    /// Starts a root span (a fresh trace id) ending whenever the
    /// returned handle drops or [`SpanHandle::finish`]es. Inert when
    /// spans are disabled.
    pub fn root_span(self: &Arc<Recorder>, name: &'static str) -> SpanHandle {
        let now = self.now_ns();
        self.root_span_at(name, None, now)
    }

    /// Starts a root span with an explicit trace id (`None` allocates a
    /// fresh one) and an explicit start time in recorder nanoseconds —
    /// the daemon backdates the request root to the first byte read.
    pub fn root_span_at(
        self: &Arc<Recorder>,
        name: &'static str,
        trace: Option<u64>,
        start_ns: u64,
    ) -> SpanHandle {
        if !self.spans_enabled {
            return SpanHandle::disabled();
        }
        let trace = trace.unwrap_or_else(|| self.begin_trace());
        SpanHandle {
            inner: Some(HandleInner {
                recorder: Arc::clone(self),
                trace,
                id: self.alloc_span_id(),
                parent: 0,
                name,
                arg: None,
                start_ns,
            }),
        }
    }
}

fn saturate_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Cross-thread span handles
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HandleInner {
    recorder: Arc<Recorder>,
    trace: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    arg: Option<i64>,
    start_ns: u64,
}

/// An owned span that may cross threads. The span ends when the handle
/// is dropped or explicitly [`finish`](SpanHandle::finish)ed; children
/// and [`SpanLink`]s reference its id, so keep the handle alive while
/// descendants may still start.
#[derive(Debug)]
pub struct SpanHandle {
    inner: Option<HandleInner>,
}

impl SpanHandle {
    /// An inert handle: every operation is a no-op. What disabled
    /// recorders hand out, so call sites need no `if tracing` branches.
    pub fn disabled() -> SpanHandle {
        SpanHandle { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, or 0 when inert.
    pub fn trace_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.trace)
    }

    /// Starts a child span beginning now.
    pub fn child(&self, name: &'static str) -> SpanHandle {
        match &self.inner {
            Some(i) => {
                let now = i.recorder.now_ns();
                self.child_at(name, now)
            }
            None => SpanHandle::disabled(),
        }
    }

    /// Starts a child span with an explicit start time (recorder
    /// nanoseconds, from [`Recorder::ns_of`]).
    pub fn child_at(&self, name: &'static str, start_ns: u64) -> SpanHandle {
        let Some(i) = &self.inner else {
            return SpanHandle::disabled();
        };
        SpanHandle {
            inner: Some(HandleInner {
                recorder: Arc::clone(&i.recorder),
                trace: i.trace,
                id: i.recorder.alloc_span_id(),
                parent: i.id,
                name,
                arg: None,
                start_ns,
            }),
        }
    }

    /// Starts a child span carrying an integer argument.
    pub fn child_arg(&self, name: &'static str, arg: i64) -> SpanHandle {
        let mut child = self.child(name);
        if let Some(i) = &mut child.inner {
            i.arg = Some(arg);
        }
        child
    }

    /// A cloneable link to this span, for handing the context to
    /// another thread or embedding it in options structs. `None` when
    /// inert.
    pub fn link(&self) -> Option<SpanLink> {
        self.inner.as_ref().map(|i| SpanLink {
            recorder: Arc::clone(&i.recorder),
            trace: i.trace,
            parent: i.id,
        })
    }

    /// Ends the span now.
    pub fn finish(mut self) {
        self.finish_now();
    }

    fn finish_now(&mut self) {
        if let Some(i) = self.inner.take() {
            let end = i.recorder.now_ns();
            i.recorder.push_record(SpanRecord {
                trace: i.trace,
                id: i.id,
                parent: i.parent,
                name: i.name,
                arg: i.arg,
                start_ns: i.start_ns,
                end_ns: end.max(i.start_ns),
                tid: thread_ordinal(),
            });
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        self.finish_now();
    }
}

/// A cloneable reference to an open span: recorder + trace + parent id.
/// This is what travels in `EngineOptions` and across the scenario
/// pool; a worker [`bind`](SpanLink::bind)s it to nest scoped spans
/// under the originating request.
#[derive(Clone)]
pub struct SpanLink {
    recorder: Arc<Recorder>,
    trace: u64,
    parent: u64,
}

impl fmt::Debug for SpanLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanLink")
            .field("trace", &self.trace)
            .field("parent", &self.parent)
            .finish()
    }
}

impl SpanLink {
    /// The recorder this link records into.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Starts an owned child span under the linked span.
    pub fn span(&self, name: &'static str) -> SpanHandle {
        SpanHandle {
            inner: Some(HandleInner {
                recorder: Arc::clone(&self.recorder),
                trace: self.trace,
                id: self.recorder.alloc_span_id(),
                parent: self.parent,
                name,
                arg: None,
                start_ns: self.recorder.now_ns(),
            }),
        }
    }

    /// Starts an owned child span carrying an integer argument.
    pub fn span_arg(&self, name: &'static str, arg: i64) -> SpanHandle {
        let mut h = self.span(name);
        if let Some(i) = &mut h.inner {
            i.arg = Some(arg);
        }
        h
    }

    /// Makes this link the current thread's span context until the
    /// guard drops (restoring whatever was bound before). Scoped
    /// [`span`]/[`span_arg`]/[`time`] calls on this thread then record
    /// under the linked span.
    pub fn bind(&self) -> ContextGuard {
        let prev = CTX.with(|slot| {
            slot.borrow_mut().replace(ThreadCtx {
                recorder: Arc::clone(&self.recorder),
                trace: self.trace,
                stack: vec![self.parent],
            })
        });
        ContextGuard {
            prev,
            _not_send: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local scoped spans
// ---------------------------------------------------------------------------

struct ThreadCtx {
    recorder: Arc<Recorder>,
    trace: u64,
    /// Open scoped-span ids, innermost last; `stack[0]` is the bound
    /// link's parent id.
    stack: Vec<u64>,
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Restores the previously bound span context when dropped. `!Send` —
/// a context binding is a property of one thread.
pub struct ContextGuard {
    prev: Option<ThreadCtx>,
    _not_send: PhantomData<*const ()>,
}

impl fmt::Debug for ContextGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContextGuard").finish_non_exhaustive()
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|slot| *slot.borrow_mut() = prev);
    }
}

/// A link to the current thread's innermost open span, if a context is
/// bound — for re-rooting work handed to yet another thread.
pub fn current() -> Option<SpanLink> {
    CTX.with(|slot| {
        let borrow = slot.borrow();
        let ctx = borrow.as_ref()?;
        Some(SpanLink {
            recorder: Arc::clone(&ctx.recorder),
            trace: ctx.trace,
            parent: *ctx.stack.last().unwrap_or(&0),
        })
    })
}

struct Entered {
    id: u64,
    parent: u64,
    start_ns: u64,
    name: &'static str,
    arg: Option<i64>,
}

/// A scoped span: records an interval from creation to drop, nested
/// under the thread's innermost open span. Inert (one thread-local
/// read) when no context is bound. `!Send` by construction.
pub struct ScopedSpan {
    armed: Option<Entered>,
    _not_send: PhantomData<*const ()>,
}

impl fmt::Debug for ScopedSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScopedSpan")
            .field("armed", &self.armed.is_some())
            .finish()
    }
}

/// Opens a scoped span named `name` under the current thread context.
pub fn span(name: &'static str) -> ScopedSpan {
    enter(name, None)
}

/// Opens a scoped span carrying an integer argument (dimension index,
/// scenario ordinal …).
pub fn span_arg(name: &'static str, arg: i64) -> ScopedSpan {
    enter(name, Some(arg))
}

fn enter(name: &'static str, arg: Option<i64>) -> ScopedSpan {
    let armed = CTX.with(|slot| {
        let mut borrow = slot.borrow_mut();
        let ctx = borrow.as_mut()?;
        let id = ctx.recorder.alloc_span_id();
        let parent = *ctx.stack.last().unwrap_or(&0);
        let start_ns = ctx.recorder.now_ns();
        ctx.stack.push(id);
        Some(Entered {
            id,
            parent,
            start_ns,
            name,
            arg,
        })
    });
    ScopedSpan {
        armed,
        _not_send: PhantomData,
    }
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        let Some(e) = self.armed.take() else {
            return;
        };
        CTX.with(|slot| {
            let mut borrow = slot.borrow_mut();
            let Some(ctx) = borrow.as_mut() else {
                return;
            };
            // Scoped spans drop innermost-first, so popping back to our
            // frame only ever removes descendants abandoned by early
            // returns.
            while let Some(top) = ctx.stack.pop() {
                if top == e.id {
                    break;
                }
            }
            let end = ctx.recorder.now_ns();
            ctx.recorder.push_record(SpanRecord {
                trace: ctx.trace,
                id: e.id,
                parent: e.parent,
                name: e.name,
                arg: e.arg,
                start_ns: e.start_ns,
                end_ns: end.max(e.start_ns),
                tid: thread_ordinal(),
            });
        });
    }
}

/// Times a region into the named histogram of the current context's
/// recorder: the elapsed nanoseconds from creation to drop are
/// [`Histogram::record`]ed. Inert when no context is bound.
pub fn time(name: &str) -> HistTimer {
    let armed = CTX.with(|slot| {
        let borrow = slot.borrow();
        let ctx = borrow.as_ref()?;
        Some(ctx.recorder.histogram(name))
    });
    HistTimer {
        armed: armed.map(|h| (h, Instant::now())),
    }
}

/// RAII histogram timer returned by [`time`].
#[derive(Debug)]
pub struct HistTimer {
    armed: Option<(Arc<Histogram>, Instant)>,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.armed.take() {
            hist.record(saturate_ns(start.elapsed().as_nanos()));
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// One Chrome trace-event "complete" (`ph: "X"`) event. Decoupled from
/// [`SpanRecord`] so callers can also export spans deserialized from a
/// daemon's `trace` op (where names are owned strings).
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Event name (the span name).
    pub name: String,
    /// Timeline lane.
    pub tid: u64,
    /// Trace id, attached under `args`.
    pub trace: u64,
    /// Optional integer argument, attached under `args`.
    pub arg: Option<i64>,
    /// Start in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl From<&SpanRecord> for ChromeEvent {
    fn from(s: &SpanRecord) -> ChromeEvent {
        ChromeEvent {
            name: s.name.to_string(),
            tid: s.tid,
            trace: s.trace,
            arg: s.arg,
            start_ns: s.start_ns,
            dur_ns: s.end_ns - s.start_ns,
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes events as a Chrome trace-event JSON document (the
/// `chrome://tracing` / Perfetto "JSON Array Format", wrapped in
/// `{"traceEvents": […]}`). Timestamps and durations are microseconds
/// with nanosecond precision kept as fractional digits.
pub fn chrome_trace(events: &[ChromeEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let arg = e.arg.map(|a| format!(",\"arg\":{a}")).unwrap_or_default();
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"cat\":\"polytops\",\"name\":\"{}\",\"pid\":1,\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"trace\":{}{}}}}}",
            escape_json(&e.name),
            e.tid,
            e.start_ns / 1000,
            e.start_ns % 1000,
            e.dur_ns / 1000,
            e.dur_ns % 1000,
            e.trace,
            arg,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_report_ordinals() {
        let rec = Recorder::new(true);
        let c = rec.counter("requests");
        assert_eq!(c.inc(), 1);
        assert_eq!(c.inc(), 2);
        c.add(3);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same counter.
        assert_eq!(rec.counter("requests").get(), 5);
        assert_eq!(rec.counters(), vec![("requests".to_string(), 5)]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum_ns, 1_001_006);
        assert_eq!(snap.quantile(0.0), 0);
        assert!(snap.quantile(1.0) >= 1_000_000);
        assert_eq!(snap.mean_ns(), 1_001_006 / 6);
    }

    #[test]
    fn quantile_estimates_are_bucket_ceilings() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(100); // bucket [64, 127]
        }
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 127);
        assert_eq!(snap.quantile(0.99), 127);
        assert!(snap.quantile(1.0) >= 1_000_000);
    }

    #[test]
    fn scoped_spans_nest_under_a_bound_link() {
        let rec = Recorder::new(true);
        let root = rec.root_span("request");
        let trace = root.trace_id();
        {
            let link = root.link().expect("armed root");
            let _guard = link.bind();
            let _outer = span("outer");
            {
                let _inner = span_arg("inner", 7);
            }
        }
        root.finish();
        let spans = rec.spans_for(trace);
        assert_eq!(spans.len(), 3);
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        let request = spans.iter().find(|s| s.name == "request").expect("root");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, request.id);
        assert_eq!(request.parent, 0);
        assert_eq!(inner.arg, Some(7));
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.end_ns >= inner.end_ns);
        assert!(request.end_ns >= outer.end_ns);
    }

    #[test]
    fn unbound_scoped_spans_are_inert() {
        let probe = span("nothing");
        assert!(probe.armed.is_none());
        drop(probe);
        let timer = time("nothing_ns");
        assert!(timer.armed.is_none());
    }

    #[test]
    fn disabled_recorders_hand_out_inert_handles() {
        let rec = Recorder::new(false);
        let root = rec.root_span("request");
        assert!(!root.is_armed());
        assert_eq!(root.trace_id(), 0);
        assert!(root.link().is_none());
        let child = root.child("solve");
        assert!(!child.is_armed());
        drop(child);
        root.finish();
        assert!(rec.recent_spans().is_empty());
    }

    #[test]
    fn handles_cross_threads_and_keep_parentage() {
        let rec = Recorder::new(true);
        let root = rec.root_span("request");
        let trace = root.trace_id();
        let link = root.link().expect("armed");
        let worker = std::thread::spawn(move || {
            let job = link.span_arg("job", 3);
            let inner = job.link().expect("armed");
            let _guard = inner.bind();
            let _s = span("pipeline");
        });
        worker.join().expect("worker");
        let root_id = {
            let spans = rec.spans_for(trace);
            assert_eq!(spans.len(), 2); // job + pipeline; root still open
            root.finish();
            rec.spans_for(trace)
                .iter()
                .find(|s| s.name == "request")
                .expect("root recorded")
                .id
        };
        let spans = rec.spans_for(trace);
        let job = spans.iter().find(|s| s.name == "job").expect("job");
        let pipeline = spans.iter().find(|s| s.name == "pipeline").expect("pipe");
        assert_eq!(job.parent, root_id);
        assert_eq!(pipeline.parent, job.id);
        assert_eq!(job.arg, Some(3));
    }

    #[test]
    fn ring_is_bounded() {
        let rec = Recorder::with_capacity(true, 4);
        for _ in 0..10 {
            rec.root_span("r").finish();
        }
        assert_eq!(rec.recent_spans().len(), 4);
    }

    #[test]
    fn timers_record_into_histograms() {
        let rec = Recorder::new(true);
        let root = rec.root_span("request");
        {
            let link = root.link().expect("armed");
            let _guard = link.bind();
            let _t = time("stage_ns");
        }
        assert_eq!(rec.histogram("stage_ns").snapshot().count, 1);
    }

    #[test]
    fn bind_restores_the_previous_context() {
        let rec = Recorder::new(true);
        let a = rec.root_span("a");
        let b = rec.root_span("b");
        let la = a.link().expect("armed");
        let lb = b.link().expect("armed");
        let _ga = la.bind();
        {
            let _gb = lb.bind();
            assert_eq!(current().expect("bound").trace_id(), b.trace_id());
        }
        assert_eq!(current().expect("restored").trace_id(), a.trace_id());
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let rec = Recorder::new(true);
        let root = rec.root_span("request");
        root.child_arg("solve", 1).finish();
        root.finish();
        let spans = rec.recent_spans();
        let events: Vec<ChromeEvent> = spans.iter().map(ChromeEvent::from).collect();
        let doc = chrome_trace(&events);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"solve\""));
        assert!(doc.contains("\"arg\":1"));
        assert_eq!(
            doc.matches("{\"ph\"").count(),
            2,
            "one event per completed span"
        );
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
