for (c0 = -1; c0 <= floord(2*T + N - 4, 32); c0++) { // wavefront
  #pragma omp parallel for
  for (c1 = ceild(32*c0 - T - 30, 32); c1 <= min(floord(T + N - 3, 32), floord(32*c0 + N + 60, 64)); c1++) { // tile loop (size 32)
    for (c2 = max(0, 32*c1 - N + 2, ceild(32*c0 - N + 2, 2), 32*c0 - 32*c1 - 31); c2 <= min(T - 1, 32*c1 + 30, 32*c0 - 32*c1 + 62); c2++) {
      for (c3 = max(c2 + 1, 32*c1, 32*c0 - c2); c3 <= min(c2 + N - 2, 32*c1 + 31, 32*c0 - c2 + 62); c3++) {
        if (c0 == floord(c2, 32) + floord(c3, 32)) S0(c2, -c2 + c3);
      }
    }
  }
}
