#pragma omp parallel for
for (c0 = 0; c0 <= N - 1; c0++) {
  for (c1 = 0; c1 <= N - 1; c1++) {
    for (c2 = 0; c2 <= N - 1; c2++) {
      S0(c0, c1, c2);
    }
  }
}
