for (c0 = 0; c0 <= floord(N - 1, 32); c0++) { // tile loop (size 32)
  for (c1 = max(0, 32*c0); c1 <= min(N - 1, 32*c0 + 31); c1++) {
    for (c2 = 0; c2 <= floord(N - 1, 32); c2++) { // tile loop (size 32)
      for (c3 = max(0, 32*c2); c3 <= min(N - 1, 32*c2 + 31); c3++) {
        S0(c3, c1);
        S1(c1, c3);
      }
    }
    S2(c1);
    for (c2 = 0; c2 <= floord(N - 1, 32); c2++) { // tile loop (size 32)
      for (c3 = max(0, 32*c2); c3 <= min(N - 1, 32*c2 + 31); c3++) {
        S3(c3, c1);
      }
    }
  }
}
