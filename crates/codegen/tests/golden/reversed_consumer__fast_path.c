#pragma omp parallel for
for (c0 = 0; c0 <= N - 1; c0++) {
  S0(c0);
}
#pragma omp parallel for
for (c0 = 0; c0 <= N - 1; c0++) {
  S1(c0);
}
