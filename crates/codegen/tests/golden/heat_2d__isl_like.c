for (c0 = 2; c0 <= 2*T + 2*N - 6; c0++) {
  #pragma omp parallel for
  for (c1 = max(1, c0 - T - N + 3, ceild(c0 - N + 3, 2)); c1 <= min(c0 - 1, T + N - 3, floord(c0 + N - 3, 2)); c1++) {
    for (c2 = max(0, c1 - N + 2, c0 - c1 - N + 2); c2 <= min(T - 1, c1 - 1, c0 - c1 - 1); c2++) {
      S0(c2, c1 - c2, c0 - c1 - c2);
    }
  }
}
