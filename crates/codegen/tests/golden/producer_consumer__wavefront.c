#pragma omp parallel for
for (c0 = 0; c0 <= floord(N - 1, 32); c0++) { // tile loop (size 32)
  for (c1 = max(0, 32*c0); c1 <= min(N - 1, 32*c0 + 31); c1++) {
    S0(c1);
    S1(c1);
  }
}
