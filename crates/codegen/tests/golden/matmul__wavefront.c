#pragma omp parallel for
for (c0 = 0; c0 <= floord(N - 1, 32); c0++) { // tile loop (size 32)
  for (c1 = 0; c1 <= floord(N - 1, 32); c1++) { // tile loop (size 32)
    for (c2 = 0; c2 <= floord(N - 1, 32); c2++) { // tile loop (size 32)
      for (c3 = max(0, 32*c0); c3 <= min(N - 1, 32*c0 + 31); c3++) {
        for (c4 = max(0, 32*c1); c4 <= min(N - 1, 32*c1 + 31); c4++) {
          for (c5 = max(0, 32*c2); c5 <= min(N - 1, 32*c2 + 31); c5++) {
            S0(c4, c3, c5);
          }
        }
      }
    }
  }
}
