for (c0 = 1; c0 <= 2*T + N - 4; c0++) {
  #pragma omp parallel for
  for (c1 = max(0, ceild(c0 - N + 2, 2)); c1 <= min(T - 1, floord(c0 - 1, 2)); c1++) {
    S0(c1, c0 - 2*c1);
  }
}
