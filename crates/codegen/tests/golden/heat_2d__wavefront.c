for (c0 = -2; c0 <= floord(3*T + 2*N - 7, 32); c0++) { // wavefront
  #pragma omp parallel for
  for (c1 = max(ceild(32*c0 - 2*T - N - 27, 32), ceild(32*c0 - N - 89, 96)); c1 <= min(floord(T + N - 3, 32), floord(16*c0 + N + 44, 48)); c1++) { // tile loop (size 32)
    for (c2 = max(ceild(32*c1 - N - 28, 32), ceild(32*c0 - 2*T - N - 27, 32), ceild(32*c0 - N - 89, 96), ceild(32*c0 - 32*c1 - T - 61, 32)); c2 <= min(floord(T + N - 3, 32), floord(32*c1 + N + 28, 32), floord(16*c0 + N + 44, 48), floord(32*c0 - 32*c1 + N + 91, 64), floord(32*c0 - 64*c1 + N + 91, 32)); c2++) { // tile loop (size 32)
      for (c3 = max(0, 32*c2 - N + 2, 32*c1 - N + 2, ceild(32*c0 - 2*N + 4, 3), ceild(32*c0 - 32*c1 - N - 29, 2), ceild(32*c0 - 32*c2 - N - 29, 2), 32*c0 - 32*c1 - 32*c2 - 62); c3 <= min(T - 1, 32*c2 + 30, 32*c1 + 30, floord(32*c0 + 91, 3), 16*c0 - 16*c2 + 46, 16*c0 - 16*c1 + 46, 32*c0 - 32*c1 - 32*c2 + 93); c3++) {
        for (c4 = max(c3 + 1, 32*c1, 32*c0 - 2*c3 - N + 2, 32*c0 - 32*c2 - c3 - 31); c4 <= min(c3 + N - 2, 32*c1 + 31, 32*c0 - 2*c3 + 92, 32*c0 - 32*c2 - c3 + 93); c4++) {
          for (c5 = max(c3 + 1, 32*c2, 32*c0 - c3 - c4); c5 <= min(c3 + N - 2, 32*c2 + 31, 32*c0 - c3 - c4 + 93); c5++) {
            if (c0 == floord(c3, 32) + floord(c4, 32) + floord(c5, 32)) S0(c3, -c3 + c5, -c3 + c4);
          }
        }
      }
    }
  }
}
