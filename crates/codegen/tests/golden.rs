//! Golden-C snapshots of the full kernel × preset sweep.
//!
//! Every reference-kernel × preset scenario (7 kernels × 5 presets) is
//! scheduled through the core pipeline, lowered through the
//! schedule-tree backend, and compared byte-for-byte against the
//! checked-in snapshot `tests/golden/<kernel>__<preset>.c`.
//!
//! After an *intentional* codegen change, regenerate the snapshots
//! with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p polytops_codegen --test golden
//! ```
//!
//! and review the resulting diff like any other code change.

use std::fs;
use std::path::PathBuf;

use polytops_codegen::emit_c;
use polytops_core::schedule;
use polytops_workloads::{all_kernels, sweep::preset_grid};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn sweep_matches_golden_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let mut failures = Vec::new();
    for (kernel, scop) in all_kernels() {
        for (preset, config) in preset_grid() {
            let sched = schedule(&scop, &config)
                .unwrap_or_else(|e| panic!("{kernel}/{preset} schedules: {e:?}"));
            let text =
                emit_c(&scop, &sched).unwrap_or_else(|e| panic!("{kernel}/{preset} lowers: {e:?}"));
            let path = dir.join(format!("{kernel}__{preset}.c"));
            if update {
                fs::create_dir_all(&dir).expect("golden dir");
                fs::write(&path, &text).expect("write snapshot");
                continue;
            }
            let want = fs::read_to_string(&path).unwrap_or_else(|_| {
                panic!(
                    "missing snapshot {}; run with UPDATE_GOLDEN=1 to create it",
                    path.display()
                )
            });
            if want != text {
                failures.push(format!(
                    "{kernel}/{preset}: emitted C differs from {}\n--- golden\n{want}\
                     --- emitted\n{text}",
                    path.display()
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} snapshot mismatches (UPDATE_GOLDEN=1 regenerates after intentional changes):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
