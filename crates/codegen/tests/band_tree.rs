//! Schedule-tree codegen integration tests: schedule real kernels with
//! the core pipeline and check the generated loop nests.

use polytops_codegen::{emit_c, generate, stats, AstNode};
use polytops_core::{presets, schedule, SchedulerConfig};
use polytops_ir::MarkKind;
use polytops_workloads::{gemver, heat_2d, jacobi_1d, matmul, producer_consumer};

/// Counts the loops (tile and point) of a generated AST.
fn count_loops(node: &AstNode) -> (usize, usize) {
    match node {
        AstNode::Stmt(_) => (0, 0),
        AstNode::Seq(children) => children.iter().fold((0, 0), |(t, p), c| {
            let (ct, cp) = count_loops(c);
            (t + ct, p + cp)
        }),
        AstNode::Loop(l) => {
            let (t, p) = l.body.iter().fold((0, 0), |(t, p), c| {
                let (ct, cp) = count_loops(c);
                (t + ct, p + cp)
            });
            if l.tile.is_some() {
                (t + 1, p)
            } else {
                (t, p + 1)
            }
        }
    }
}

#[test]
fn matmul_lowers_to_three_nested_point_loops() {
    let scop = matmul();
    let sched = schedule(&scop, &presets::pluto()).unwrap();
    let tree = generate(&scop, &sched).unwrap();
    assert_eq!(count_loops(&tree), (0, 3));
    let text = emit_c(&scop, &sched).unwrap();
    assert_eq!(text.matches("for (").count(), 3, "{text}");
    // The statement instance is rewritten over the scan variables (the
    // i/j interchange tie may fall either way; all three must appear).
    let call = text
        .lines()
        .find(|l| l.contains("S0("))
        .expect("statement emitted");
    for v in ["c0", "c1", "c2"] {
        assert!(call.contains(v), "{text}");
    }
    assert!(text.contains("#pragma omp parallel for"), "{text}");
}

#[test]
fn tiled_jacobi_materializes_tile_loops() {
    let scop = jacobi_1d();
    let mut cfg = SchedulerConfig::default();
    cfg.post.tile_sizes = vec![32, 32];
    let sched = schedule(&scop, &cfg).unwrap();
    let marks = sched.tree().expect("post sets a tree").marks();
    assert!(
        marks.iter().any(|m| matches!(m, MarkKind::Tile(_))),
        "jacobi band must tile"
    );
    let tree = generate(&scop, &sched).unwrap();
    let (tile_loops, point_loops) = count_loops(&tree);
    assert_eq!(tile_loops, 2, "one tile loop per band dimension");
    assert_eq!(point_loops, 2);
    let text = emit_c(&scop, &sched).unwrap();
    assert!(text.contains("tile loop (size 32)"), "{text}");
    // Point loops are constrained to their tile: a 32*c0-style bound
    // must appear somewhere in the point loop bounds.
    assert!(text.contains("32*c0"), "{text}");
}

#[test]
fn fused_producer_consumer_shares_one_loop() {
    let scop = producer_consumer();
    let sched = schedule(&scop, &presets::pluto()).unwrap();
    let text = emit_c(&scop, &sched).unwrap();
    // One fused loop containing both statements, S0 before S1.
    assert_eq!(text.matches("for (").count(), 1, "{text}");
    let s0 = text.find("S0(").expect("S0 emitted");
    let s1 = text.find("S1(").expect("S1 emitted");
    assert!(s0 < s1, "{text}");
}

#[test]
fn untiled_tree_matches_schedule_dims() {
    let scop = matmul();
    let sched = schedule(&scop, &presets::feautrier()).unwrap();
    let tree = generate(&scop, &sched).unwrap();
    let (tile_loops, point_loops) = count_loops(&tree);
    assert_eq!(tile_loops, 0);
    assert_eq!(point_loops, 3);
}

#[test]
fn wavefront_emits_exact_floor_guard_or_clean_skew() {
    let scop = heat_2d();
    let sched = schedule(&scop, &presets::wavefront()).unwrap();
    let text = emit_c(&scop, &sched).unwrap();
    // The skewed tile band is annotated and the program still names
    // every statement exactly once per loop nest.
    assert!(text.contains("// wavefront"), "{text}");
    assert_eq!(text.matches("S0(").count(), 1, "{text}");
}

#[test]
fn fused_statements_do_not_split_into_sibling_loops() {
    // gemver under feautrier fuses four statements with staggered
    // domains; the old flat-schedule scanner split them into four
    // sibling nests per level. The tree scanner must emit union loops
    // with per-statement guards instead.
    let scop = gemver();
    let sched = schedule(&scop, &presets::feautrier()).unwrap();
    let tree = generate(&scop, &sched).unwrap();
    let s = stats(&tree);
    // Old flat-schedule scanner: 7 loops across sibling nests.
    assert!(
        s.loops < 7,
        "expected fewer union loops than the old separation, got {s:?}"
    );
    let text = emit_c(&scop, &sched).unwrap();
    for name in ["S0(", "S1(", "S2(", "S3("] {
        assert_eq!(text.matches(name).count(), 1, "{text}");
    }
}
