//! Schedule rendering and code generation for PolyTOPS.
//!
//! Two backends:
//!
//! * the **schedule-tree AST** ([`generate`], [`emit_c`] in [`ast`]) — a
//!   CLooG-lite polyhedral scanner that walks the explicit
//!   [`polytops_ir::ScheduleTree`] of a schedule, emits one union loop
//!   per band member (no per-statement sibling splitting), eliminates
//!   guards implied by the enclosing loop bounds gist-style, and lowers
//!   the result to C-like text;
//! * the human-readable renderings the tools and benchmarks use:
//!   [`schedule_table`] — per-statement scheduling rows with named
//!   iterators and parameters plus band/parallel annotations — and
//!   [`emit_pseudo`] — a compact pseudo-code view listing each statement
//!   under its timestamp expressions.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;

pub use ast::{
    emit_c, generate, stats, AstNode, BoundTerm, CodegenStats, Guard, LoopNode, StmtNode,
};

use std::fmt::Write as _;

use polytops_ir::{AffineExpr, Schedule, Scop, StmtId};

/// Renders one line per statement and scheduling dimension:
/// `S0  t0 = i + j  [parallel] (band 0)`.
pub fn schedule_table(scop: &Scop, sched: &Schedule) -> String {
    let mut out = String::new();
    let params: Vec<&str> = scop.params.iter().map(String::as_str).collect();
    for (sid, stmt) in scop.statements.iter().enumerate() {
        let iters: Vec<&str> = stmt.iter_names.iter().map(String::as_str).collect();
        let ss = sched.stmt(StmtId(sid));
        let _ = writeln!(out, "{}:", stmt.name);
        for (d, row) in ss.rows().iter().enumerate() {
            let e = AffineExpr::from_row(row, stmt.depth(), scop.nparams());
            let par = if sched.parallel().get(d).copied().unwrap_or(false) {
                "  [parallel]"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  t{d} = {}{par} (band {})",
                e.display(&iters, &params),
                sched.bands().get(d).copied().unwrap_or(0),
            );
        }
    }
    out
}

/// Renders statements in pseudo-code form under their timestamps, using
/// the statement source text when the builder recorded one.
pub fn emit_pseudo(scop: &Scop, sched: &Schedule) -> String {
    let mut out = String::new();
    let params: Vec<&str> = scop.params.iter().map(String::as_str).collect();
    for (sid, stmt) in scop.statements.iter().enumerate() {
        let iters: Vec<&str> = stmt.iter_names.iter().map(String::as_str).collect();
        let ss = sched.stmt(StmtId(sid));
        let ts: Vec<String> = ss
            .rows()
            .iter()
            .map(|row| {
                AffineExpr::from_row(row, stmt.depth(), scop.nparams()).display(&iters, &params)
            })
            .collect();
        let body = stmt
            .text
            .clone()
            .unwrap_or_else(|| format!("{}(...);", stmt.name));
        let _ = writeln!(out, "@({}) {}", ts.join(", "), body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_ir::{Aff, ScopBuilder};

    fn simple() -> Scop {
        let mut b = ScopBuilder::new("k");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        b.stmt("S0")
            .write(a, &[Aff::var("i")])
            .text("A[i] = 0;")
            .add(&mut b);
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn table_names_iterators() {
        let scop = simple();
        let sched = Schedule::identity_2dp1(&scop);
        let table = schedule_table(&scop, &sched);
        assert!(table.contains("S0:"), "{table}");
        assert!(table.contains("t1 = i"), "{table}");
    }

    #[test]
    fn pseudo_uses_source_text() {
        let scop = simple();
        let sched = Schedule::identity_2dp1(&scop);
        let text = emit_pseudo(&scop, &sched);
        assert!(text.contains("A[i] = 0;"), "{text}");
        assert!(text.contains("@(0, i, 0)"), "{text}");
    }
}
