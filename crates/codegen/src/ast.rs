//! Band-tree AST generation: a CLooG-lite polyhedral scanner.
//!
//! [`band_tree`] turns a [`Schedule`] (including the tiling metadata the
//! post-processing stage records) into a [`BandNode`] tree, and
//! [`emit_c`] lowers that tree to C-like text with explicit tile loops,
//! `#pragma omp parallel for` markers and statement instances rewritten
//! in terms of the scan variables.
//!
//! The scanner works per statement with exact Fourier–Motzkin
//! projection: the statement's iteration domain is lifted into the space
//! `(scan variables…, iterators…, parameters…)`, each *point* scan
//! variable is pinned to its schedule row, each *tile* scan variable is
//! boxed around its point row (`T·v ≤ φ ≤ T·v + T − 1`), the original
//! iterators are eliminated, and loop bounds for scan variable `k` are
//! read off the projection onto the first `k + 1` scan variables.
//!
//! Known approximations, documented rather than hidden:
//!
//! * projections of integer sets may over-approximate (no gist/guard
//!   generation), which can execute no-op boundary iterations but never
//!   reorders statement instances;
//! * statements that share a loop level but disagree on bounds are split
//!   into sibling loops ordered by statement id (the engine always
//!   separates differently-scheduled statements with a constant level
//!   first, so this is a formality).

use std::fmt::Write as _;

use polytops_ir::{Schedule, Scop, StmtId};
use polytops_math::{ConstraintSystem, Rat, Result as MathResult, RowKind};

/// One bound term `⌈expr / div⌉` (lower) or `⌊expr / div⌋` (upper); the
/// numerator is affine over `(outer scan vars…, params, 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundTerm {
    /// Numerator coefficients: outer scan variables, then parameters,
    /// then the constant.
    pub expr: Vec<i64>,
    /// Positive divisor (1 for ordinary bounds).
    pub div: i64,
}

/// A loop in the generated AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// Scan-variable index (rendered as `c{var}`).
    pub var: usize,
    /// The schedule dimension this loop scans.
    pub dim: usize,
    /// Tile size when this is a tile loop (the variable counts tiles).
    pub tile: Option<i64>,
    /// Whether the scanned dimension is parallel.
    pub parallel: bool,
    /// Lower bound: the maximum of these terms (ceiling division).
    pub lb: Vec<BoundTerm>,
    /// Upper bound: the minimum of these terms (floor division).
    pub ub: Vec<BoundTerm>,
    /// Loop body.
    pub body: Vec<BandNode>,
}

/// A statement instance in the generated AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtNode {
    /// The statement.
    pub id: StmtId,
    /// Statement name (e.g. `S0`).
    pub name: String,
    /// Original iterators expressed over `(scan vars…, params, 1)`;
    /// `None` when the schedule's iterator part was not integrally
    /// invertible.
    pub iters: Option<Vec<Vec<i64>>>,
}

/// A node of the band tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BandNode {
    /// A loop over one scan variable.
    Loop(LoopNode),
    /// Sequential composition (constant schedule levels, or sibling
    /// loops with differing bounds).
    Seq(Vec<BandNode>),
    /// A statement instance.
    Stmt(StmtNode),
}

/// One scan variable: a tile counter or a point (time) dimension.
#[derive(Debug, Clone, Copy)]
struct ScanVar {
    dim: usize,
    tile: Option<i64>,
    /// Tile loops carry the band's stricter flag (zero distance for
    /// every dependence live at band entry); point loops carry the
    /// schedule's per-dimension flag.
    parallel: bool,
}

/// The scan order induced by bands and tiling: a tiled band contributes
/// its tile counters first, then its point dimensions.
fn scan_order(sched: &Schedule) -> Vec<ScanVar> {
    let mut order = Vec::new();
    for (start, end) in sched.band_ranges() {
        if let Some(tb) = sched
            .tiling()
            .iter()
            .find(|tb| tb.start == start && tb.end == end)
        {
            for d in start..end {
                order.push(ScanVar {
                    dim: d,
                    tile: Some(tb.sizes[d - start]),
                    parallel: tb.parallel[d - start],
                });
            }
        }
        for d in start..end {
            order.push(ScanVar {
                dim: d,
                tile: None,
                parallel: sched.parallel().get(d).copied().unwrap_or(false),
            });
        }
    }
    order
}

/// Per-statement scanning data: loop bounds per scan variable.
struct StmtScan {
    /// `bounds[k] = (lb terms, ub terms)` over `(c_0..c_{k-1}, params, 1)`.
    bounds: Vec<(Vec<BoundTerm>, Vec<BoundTerm>)>,
}

/// Builds the `(scan, iters, params)` system of one statement and
/// projects out the iterators.
fn stmt_projection(
    scop: &Scop,
    sched: &Schedule,
    order: &[ScanVar],
    sid: usize,
) -> MathResult<ConstraintSystem> {
    let stmt = &scop.statements[sid];
    let d = stmt.depth();
    let np = scop.nparams();
    let k = order.len();
    let mut sys = ConstraintSystem::new(k + d + np);
    // Domain rows (over iters, params) lifted into the new layout.
    for (kind, row) in stmt.domain.iter() {
        let mut r = vec![0i64; k + d + np + 1];
        r[k..k + d + np].copy_from_slice(&row[..d + np]);
        r[k + d + np] = row[d + np];
        match kind {
            RowKind::Eq => sys.add_eq(r),
            RowKind::Ineq => sys.add_ineq(r),
        }
    }
    let ss = sched.stmt(StmtId(sid));
    for (v, sv) in order.iter().enumerate() {
        let row = &ss.rows()[sv.dim];
        // φ(iters, params) spread into the lifted layout.
        let mut phi = vec![0i64; k + d + np + 1];
        phi[k..k + d + np].copy_from_slice(&row[..d + np]);
        phi[k + d + np] = row[d + np];
        match sv.tile {
            None => {
                // c_v == φ.
                let mut eq = phi;
                eq[v] -= 1;
                sys.add_eq(eq);
            }
            Some(size) => {
                // size·c_v ≤ φ ≤ size·c_v + size − 1.
                let mut lo = phi.clone();
                lo[v] -= size;
                sys.add_ineq(lo);
                let mut hi: Vec<i64> = phi.iter().map(|&c| -c).collect();
                hi[v] += size;
                hi[k + d + np] += size - 1;
                sys.add_ineq(hi);
            }
        }
    }
    // Eliminate the original iterators (positions k..k+d).
    let mut cur = sys;
    for _ in 0..d {
        cur = cur.eliminate_var(k)?;
    }
    Ok(cur)
}

/// Extracts lb/ub terms for scan variable `k` from the projection onto
/// `(c_0..c_k, params)`.
fn extract_bounds(proj: &ConstraintSystem, k: usize) -> (Vec<BoundTerm>, Vec<BoundTerm>) {
    let mut lb = Vec::new();
    let mut ub = Vec::new();
    let n = proj.num_vars();
    let mut add = |coeff: i64, row: &[i64]| {
        // coeff·c_k + rest ⋛ 0 with rest over (c_0..c_{k-1}, params, 1).
        let mut rest: Vec<i64> = Vec::with_capacity(n);
        rest.extend_from_slice(&row[..k]);
        rest.extend_from_slice(&row[k + 1..=n]);
        if coeff > 0 {
            // c_k >= ceil(-rest / coeff)
            let term = BoundTerm {
                expr: rest.iter().map(|&c| -c).collect(),
                div: coeff,
            };
            if !lb.contains(&term) {
                lb.push(term);
            }
        } else {
            // c_k <= floor(rest / -coeff)
            let term = BoundTerm {
                expr: rest,
                div: -coeff,
            };
            if !ub.contains(&term) {
                ub.push(term);
            }
        }
    };
    for (kind, row) in proj.iter() {
        let c = row[k];
        if c == 0 {
            continue;
        }
        match kind {
            RowKind::Ineq => add(c, row),
            RowKind::Eq => {
                // Both directions.
                add(c, row);
                let neg: Vec<i64> = row.iter().map(|&v| -v).collect();
                add(-c, &neg);
            }
        }
    }
    (lb, ub)
}

/// Computes the full per-statement scan data.
fn scan_stmt(scop: &Scop, sched: &Schedule, order: &[ScanVar], sid: usize) -> MathResult<StmtScan> {
    let k = order.len();
    let mut projections: Vec<ConstraintSystem> = Vec::with_capacity(k);
    let mut cur = stmt_projection(scop, sched, order, sid)?;
    projections.push(cur.clone()); // onto (c_0..c_{K-1}, params)
    for kk in (1..k).rev() {
        cur = cur.eliminate_var(kk)?;
        projections.push(cur.clone());
    }
    projections.reverse(); // projections[k] is onto (c_0..c_k, params)
    let bounds = (0..k)
        .map(|kk| extract_bounds(&projections[kk], kk))
        .collect();
    Ok(StmtScan { bounds })
}

/// Inverts the iterator part of a statement schedule: expresses each
/// original iterator over `(scan vars…, params, 1)`. Returns `None` when
/// no integral inverse exists.
fn invert_iters(
    scop: &Scop,
    sched: &Schedule,
    order: &[ScanVar],
    sid: usize,
) -> Option<Vec<Vec<i64>>> {
    let stmt = &scop.statements[sid];
    let d = stmt.depth();
    let np = scop.nparams();
    let k = order.len();
    if d == 0 {
        return Some(Vec::new());
    }
    let ss = sched.stmt(StmtId(sid));
    // Greedily pick dims whose iterator rows form a rank-d basis, and
    // remember the point scan variable of each picked dim.
    let mut m = polytops_math::IntMatrix::zeros(0, d);
    let mut picked: Vec<usize> = Vec::new(); // schedule dims
    for dim in 0..ss.len() {
        if ss.row_is_constant(dim) {
            continue;
        }
        let mut candidate = m.clone();
        candidate.push_row(ss.rows()[dim][..d].to_vec());
        if candidate.rank() == candidate.rows() {
            m = candidate;
            picked.push(dim);
        }
        if m.rows() == d {
            break;
        }
    }
    if m.rows() != d {
        return None;
    }
    let inv = m.to_rat().inverse().ok()?;
    // x = M⁻¹ · (c_sel − param/const parts of the picked rows).
    let scan_of_dim = |dim: usize| {
        order
            .iter()
            .position(|sv| sv.dim == dim && sv.tile.is_none())
    };
    let mut out = Vec::with_capacity(d);
    for i in 0..d {
        let mut expr_rat = vec![Rat::ZERO; k + np + 1];
        for (j, &dim) in picked.iter().enumerate() {
            let w = inv[(i, j)];
            if w == Rat::ZERO {
                continue;
            }
            let row = &ss.rows()[dim];
            expr_rat[scan_of_dim(dim)?] += w;
            for p in 0..np {
                expr_rat[k + p] -= w * Rat::from(row[d + p]);
            }
            expr_rat[k + np] -= w * Rat::from(row[d + np]);
        }
        let mut expr = Vec::with_capacity(k + np + 1);
        for v in expr_rat {
            expr.push(i64::try_from(v.to_integer()?).ok()?);
        }
        out.push(expr);
    }
    Some(out)
}

/// Builds the band tree for a scheduled SCoP.
///
/// # Errors
///
/// Propagates arithmetic overflow from the exact projections.
pub fn band_tree(scop: &Scop, sched: &Schedule) -> MathResult<BandNode> {
    let order = scan_order(sched);
    let nstmts = scop.statements.len();
    let mut scans = Vec::with_capacity(nstmts);
    let mut iters = Vec::with_capacity(nstmts);
    for sid in 0..nstmts {
        scans.push(scan_stmt(scop, sched, &order, sid)?);
        iters.push(invert_iters(scop, sched, &order, sid));
    }
    let active: Vec<usize> = (0..nstmts).collect();
    let body = build_level(scop, sched, &order, &scans, &iters, 0, &active);
    Ok(match body.len() {
        1 => body.into_iter().next().expect("nonempty"),
        _ => BandNode::Seq(body),
    })
}

/// Recursively builds the nodes of scan level `k` for the active
/// statements.
fn build_level(
    scop: &Scop,
    sched: &Schedule,
    order: &[ScanVar],
    scans: &[StmtScan],
    iters: &[Option<Vec<Vec<i64>>>],
    k: usize,
    active: &[usize],
) -> Vec<BandNode> {
    if active.is_empty() {
        return Vec::new();
    }
    if k == order.len() {
        return active
            .iter()
            .map(|&sid| {
                BandNode::Stmt(StmtNode {
                    id: StmtId(sid),
                    name: scop.statements[sid].name.clone(),
                    iters: iters[sid].clone(),
                })
            })
            .collect();
    }
    let sv = order[k];
    let constant_level = sv.tile.is_none()
        && active
            .iter()
            .all(|&sid| sched.stmt(StmtId(sid)).row_is_constant(sv.dim));
    if constant_level {
        // A splitting level: group by the row's (constant, param) value
        // in ascending order; no loop is emitted.
        let np = scop.nparams();
        let mut groups: Vec<(Vec<i64>, Vec<usize>)> = Vec::new();
        for &sid in active {
            let stmt = &scop.statements[sid];
            let row = &sched.stmt(StmtId(sid)).rows()[sv.dim];
            let mut key = vec![row[stmt.depth() + np]];
            key.extend_from_slice(&row[stmt.depth()..stmt.depth() + np]);
            match groups.iter_mut().find(|(g, _)| *g == key) {
                Some((_, members)) => members.push(sid),
                None => groups.push((key, vec![sid])),
            }
        }
        groups.sort_by(|(a, _), (b, _)| a.cmp(b));
        let mut out = Vec::new();
        for (_, members) in groups {
            out.extend(build_level(
                scop,
                sched,
                order,
                scans,
                iters,
                k + 1,
                &members,
            ));
        }
        return out;
    }
    // A loop level: group active statements by identical bounds.
    type BoundPair = (Vec<BoundTerm>, Vec<BoundTerm>);
    let mut groups: Vec<(&BoundPair, Vec<usize>)> = Vec::new();
    for &sid in active {
        let b = &scans[sid].bounds[k];
        match groups.iter_mut().find(|(g, _)| *g == b) {
            Some((_, members)) => members.push(sid),
            None => groups.push((b, vec![sid])),
        }
    }
    groups
        .into_iter()
        .map(|((lb, ub), members)| {
            BandNode::Loop(LoopNode {
                var: k,
                dim: sv.dim,
                tile: sv.tile,
                parallel: sv.parallel,
                lb: lb.clone(),
                ub: ub.clone(),
                body: build_level(scop, sched, order, scans, iters, k + 1, &members),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Lowering to C-like text.
// ---------------------------------------------------------------------

/// Renders an affine numerator over `(c_0.., params, 1)`; the scan-var
/// count is implied by the expression length (bound terms at level `k`
/// only see the `k` outer scan variables).
fn render_affine(expr: &[i64], params: &[&str]) -> String {
    let nvars = expr.len() - 1 - params.len();
    let mut out = String::new();
    let name = |i: usize| -> String {
        if i < nvars {
            format!("c{i}")
        } else {
            params[i - nvars].to_string()
        }
    };
    for (i, &c) in expr[..expr.len() - 1].iter().enumerate() {
        if c == 0 {
            continue;
        }
        let v = name(i);
        if out.is_empty() {
            match c {
                1 => out.push_str(&v),
                -1 => {
                    let _ = write!(out, "-{v}");
                }
                _ => {
                    let _ = write!(out, "{c}*{v}");
                }
            }
        } else {
            let sign = if c > 0 { "+" } else { "-" };
            let a = c.abs();
            if a == 1 {
                let _ = write!(out, " {sign} {v}");
            } else {
                let _ = write!(out, " {sign} {a}*{v}");
            }
        }
    }
    let cst = expr[expr.len() - 1];
    if out.is_empty() {
        let _ = write!(out, "{cst}");
    } else if cst > 0 {
        let _ = write!(out, " + {cst}");
    } else if cst < 0 {
        let _ = write!(out, " - {}", -cst);
    }
    out
}

/// Renders one bound term, wrapping in `floord`/`ceild` when divided.
fn render_term(term: &BoundTerm, lower: bool, params: &[&str]) -> String {
    let e = render_affine(&term.expr, params);
    if term.div == 1 {
        e
    } else if lower {
        format!("ceild({e}, {})", term.div)
    } else {
        format!("floord({e}, {})", term.div)
    }
}

/// Renders a max-of/min-of bound list.
fn render_bound(terms: &[BoundTerm], lower: bool, params: &[&str]) -> String {
    let rendered: Vec<String> = terms
        .iter()
        .map(|t| render_term(t, lower, params))
        .collect();
    match rendered.len() {
        0 => if lower { "-INF" } else { "INF" }.to_string(),
        1 => rendered.into_iter().next().expect("nonempty"),
        _ => format!(
            "{}({})",
            if lower { "max" } else { "min" },
            rendered.join(", ")
        ),
    }
}

fn emit_node(node: &BandNode, params: &[&str], indent: usize, in_parallel: bool, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        BandNode::Seq(children) => {
            for c in children {
                emit_node(c, params, indent, in_parallel, out);
            }
        }
        BandNode::Loop(l) => {
            let v = format!("c{}", l.var);
            let lb = render_bound(&l.lb, true, params);
            let ub = render_bound(&l.ub, false, params);
            let mark_parallel = l.parallel && !in_parallel;
            if mark_parallel {
                let _ = writeln!(out, "{pad}#pragma omp parallel for");
            }
            let tile = match l.tile {
                Some(size) => format!(" // tile loop (size {size})"),
                None => String::new(),
            };
            let _ = writeln!(out, "{pad}for ({v} = {lb}; {v} <= {ub}; {v}++) {{{tile}");
            for c in &l.body {
                emit_node(c, params, indent + 1, in_parallel || mark_parallel, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        BandNode::Stmt(s) => {
            let args = match &s.iters {
                Some(exprs) => exprs
                    .iter()
                    .map(|e| render_affine(e, params))
                    .collect::<Vec<_>>()
                    .join(", "),
                None => "...".to_string(),
            };
            let _ = writeln!(out, "{pad}{}({args});", s.name);
        }
    }
}

/// Lowers a scheduled SCoP to C-like text through the band tree.
///
/// The output uses CLooG-style `floord`/`ceild` integer divisions and
/// `max`/`min` bound combinators; tile loops are annotated with their
/// size and parallel dimensions carry an OpenMP pragma.
///
/// # Errors
///
/// Propagates arithmetic overflow from the exact projections.
pub fn emit_c(scop: &Scop, sched: &Schedule) -> MathResult<String> {
    let tree = band_tree(scop, sched)?;
    let params: Vec<&str> = scop.params.iter().map(String::as_str).collect();
    let mut out = String::new();
    emit_node(&tree, &params, 0, false, &mut out);
    Ok(out)
}
