//! Schedule-tree code generation: a CLooG-lite polyhedral scanner over
//! the explicit [`polytops_ir::ScheduleTree`].
//!
//! [`generate`] walks the schedule tree of a [`Schedule`] (lowering the
//! flat form first when post-processing never ran) and produces an
//! [`AstNode`] tree; [`emit_c`] lowers that tree to C-like text with
//! explicit tile loops, `#pragma omp parallel for` / `#pragma omp simd`
//! markers, and statement instances rewritten over the scan variables.
//!
//! The scanner works per statement with exact Fourier–Motzkin
//! projection: the statement's iteration domain is lifted into the
//! space `(scan variables…, auxiliary floor variables…, iterators…,
//! parameters…)`; each affine band member pins its scan variable to its
//! row, each tile member (single term, divisor > 1) is boxed around its
//! row (`T·v ≤ φ ≤ T·v + T − 1`), and each quasi-affine member (a
//! wavefront sum of floors) introduces one auxiliary variable per
//! floored term. Auxiliary variables and the original iterators are
//! eliminated, and loop bounds for scan variable `k` are read off the
//! projection onto the first `k + 1` scan variables.
//!
//! Unlike the flat-schedule scanner this module replaces, statements
//! that share a band never split into sibling loops: every band member
//! emits **one union loop** whose bounds cover all active statements
//! (shared bounds are proven with an exact LP implication check, and a
//! `min`/`max` combination of the per-statement bounds covers the rest)
//! while per-statement *guards* at the leaves restore exactness.
//! Guards implied by the enclosing loop bounds are eliminated
//! gist-style with the same LP check, so a statement whose domain is
//! fully described by its loops carries no guard at all.

use std::fmt::Write as _;

use polytops_ir::{MarkKind, PathStep, Schedule, Scop, StmtId, TreeNode};
use polytops_math::{ineq_implied, ConstraintSystem, Rat, Result as MathResult, RowKind};

/// One bound term `⌈expr / div⌉` (lower) or `⌊expr / div⌋` (upper); the
/// numerator is affine over `(outer scan vars…, params, 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundTerm {
    /// Numerator coefficients: outer scan variables, then parameters,
    /// then the constant.
    pub expr: Vec<i64>,
    /// Positive divisor (1 for ordinary bounds).
    pub div: i64,
}

/// A loop in the generated AST, scanning one band member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNode {
    /// Scan-variable index (rendered as `c{var}`): the loop's nesting
    /// level among band members on this path.
    pub var: usize,
    /// Tile size when this member is a tile counter (a single floored
    /// term with divisor > 1).
    pub tile: Option<i64>,
    /// Whether this member was wavefront-skewed (sits under a
    /// `Mark::Wavefront` as the band's outermost member).
    pub wavefront: bool,
    /// Whether the member is coincident: the loop may run in parallel.
    pub parallel: bool,
    /// Whether a `Mark::Vectorize` covers every statement in this loop
    /// and this is the band's innermost member.
    pub simd: bool,
    /// Lower bound: `min` over the outer list of (`max` over the inner
    /// terms). A single-element outer list is a *shared* bound, valid
    /// for every statement in the loop.
    pub lb: Vec<Vec<BoundTerm>>,
    /// Upper bound: `max` over the outer list of (`min` over the inner
    /// terms).
    pub ub: Vec<Vec<BoundTerm>>,
    /// Loop body.
    pub body: Vec<AstNode>,
}

/// One leaf guard of a statement: a residual condition the enclosing
/// loops do not already imply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// `expr ≥ 0` with `expr` affine over `(scan vars…, params, 1)`.
    Ineq(Vec<i64>),
    /// `expr == 0` with `expr` affine over `(scan vars…, params, 1)`.
    Eq(Vec<i64>),
    /// `c{var} == Σⱼ ⌊exprⱼ / divⱼ⌋`: the exact coordinate check of a
    /// quasi-affine (wavefront) member, which no affine relaxation can
    /// express.
    Floors {
        /// The scan variable the floors must sum to.
        var: usize,
        /// The floored terms, each over `(scan vars…, params, 1)`.
        terms: Vec<BoundTerm>,
    },
}

/// A statement instance in the generated AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StmtNode {
    /// The statement.
    pub id: StmtId,
    /// Statement name (e.g. `S0`).
    pub name: String,
    /// Original iterators expressed over `(scan vars…, params, 1)`;
    /// `None` when the tree's affine members do not pin the iterators
    /// integrally.
    pub iters: Option<Vec<Vec<i64>>>,
    /// Residual guards (empty when the loops are exact for this
    /// statement).
    pub guards: Vec<Guard>,
}

/// A node of the generated AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstNode {
    /// A loop over one scan variable.
    Loop(LoopNode),
    /// Sequential composition (tree `Sequence` children).
    Seq(Vec<AstNode>),
    /// A statement instance.
    Stmt(StmtNode),
}

/// Structural counters of a generated AST — the quantities the codegen
/// benchmark tracks per kernel and preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodegenStats {
    /// Total `for` loops emitted.
    pub loops: usize,
    /// Total residual guard conditions across all statements.
    pub guards: usize,
    /// Maximum loop nesting depth.
    pub max_depth: usize,
}

/// Counts loops, guard conditions and the maximum loop depth of an AST.
pub fn stats(node: &AstNode) -> CodegenStats {
    fn walk(node: &AstNode, depth: usize, s: &mut CodegenStats) {
        match node {
            AstNode::Seq(children) => children.iter().for_each(|c| walk(c, depth, s)),
            AstNode::Stmt(st) => s.guards += st.guards.len(),
            AstNode::Loop(l) => {
                s.loops += 1;
                s.max_depth = s.max_depth.max(depth + 1);
                l.body.iter().for_each(|c| walk(c, depth + 1, s));
            }
        }
    }
    let mut s = CodegenStats::default();
    walk(node, 0, &mut s);
    s
}

/// One band member a statement crosses, specialized to that statement.
struct MemberData {
    /// `(numerator row, divisor)` terms; rows over the statement's
    /// `(iters, params, 1)` columns.
    terms: Vec<(Vec<i64>, i64)>,
    /// The member's coincidence flag.
    coincident: bool,
}

/// Per-statement scanning data.
struct StmtScan {
    /// The member steps along the statement's root-to-leaf path.
    members: Vec<MemberData>,
    /// `bounds[k] = (lb terms, ub terms)` over `(c_0..c_{k-1}, params, 1)`.
    bounds: Vec<(Vec<BoundTerm>, Vec<BoundTerm>)>,
    /// The full projection onto `(c_0..c_{K-1}, params)` — the exact
    /// (convex) description of the statement's scan space, the source
    /// of leaf guards.
    full: ConstraintSystem,
    /// Original iterators over `(c_0..c_{K-1}, params, 1)`, when the
    /// affine members pin them integrally.
    iters: Option<Vec<Vec<i64>>>,
}

/// Drops every inequality row the remaining rows already imply (an
/// exact LP check per row). Fourier–Motzkin cascades produce heavily
/// redundant systems; pruning after each elimination keeps the cascade
/// small and the extracted loop bounds readable.
fn prune_redundant(cs: &ConstraintSystem) -> ConstraintSystem {
    let rows = cs.rows();
    let n = rows.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        if rows[i].0 == RowKind::Eq {
            continue;
        }
        let mut rest = ConstraintSystem::new(cs.num_vars());
        for j in 0..n {
            if j == i || !keep[j] {
                continue;
            }
            match rows[j].0 {
                RowKind::Eq => rest.add_eq(rows[j].1.clone()),
                RowKind::Ineq => rest.add_ineq(rows[j].1.clone()),
            }
        }
        if ineq_implied(&rest, &rows[i].1) {
            keep[i] = false;
        }
    }
    let mut out = ConstraintSystem::new(cs.num_vars());
    for (j, (kind, row)) in rows.iter().enumerate() {
        if !keep[j] {
            continue;
        }
        match kind {
            RowKind::Eq => out.add_eq(row.clone()),
            RowKind::Ineq => out.add_ineq(row.clone()),
        }
    }
    out
}

/// Extracts lb/ub terms for scan variable `k` from the projection onto
/// `(c_0..c_k, params)`.
fn extract_bounds(proj: &ConstraintSystem, k: usize) -> (Vec<BoundTerm>, Vec<BoundTerm>) {
    let mut lb = Vec::new();
    let mut ub = Vec::new();
    let n = proj.num_vars();
    let mut add = |coeff: i64, row: &[i64]| {
        // coeff·c_k + rest ⋛ 0 with rest over (c_0..c_{k-1}, params, 1).
        let mut rest: Vec<i64> = Vec::with_capacity(n);
        rest.extend_from_slice(&row[..k]);
        rest.extend_from_slice(&row[k + 1..=n]);
        if coeff > 0 {
            // c_k >= ceil(-rest / coeff)
            let term = BoundTerm {
                expr: rest.iter().map(|&c| -c).collect(),
                div: coeff,
            };
            if !lb.contains(&term) {
                lb.push(term);
            }
        } else {
            // c_k <= floor(rest / -coeff)
            let term = BoundTerm {
                expr: rest,
                div: -coeff,
            };
            if !ub.contains(&term) {
                ub.push(term);
            }
        }
    };
    for (kind, row) in proj.iter() {
        let c = row[k];
        if c == 0 {
            continue;
        }
        match kind {
            RowKind::Ineq => add(c, row),
            RowKind::Eq => {
                add(c, row);
                let neg: Vec<i64> = row.iter().map(|&v| -v).collect();
                add(-c, &neg);
            }
        }
    }
    (lb, ub)
}

/// Builds one statement's scan data: lift the domain and the member
/// constraints, eliminate auxiliary floor variables and iterators, and
/// read per-level bounds off successive projections.
fn scan_stmt(scop: &Scop, sid: usize, members: Vec<MemberData>) -> MathResult<StmtScan> {
    let stmt = &scop.statements[sid];
    let d = stmt.depth();
    let np = scop.nparams();
    let kk = members.len();
    let aux: usize = members
        .iter()
        .filter(|m| m.terms.len() > 1)
        .map(|m| m.terms.len())
        .sum();
    let total = kk + aux + d + np;
    let mut sys = ConstraintSystem::new(total);
    // Domain rows (over iters, params) lifted into the new layout.
    for (kind, row) in stmt.domain.iter() {
        let mut r = vec![0i64; total + 1];
        r[kk + aux..kk + aux + d + np].copy_from_slice(&row[..d + np]);
        r[total] = row[d + np];
        match kind {
            RowKind::Eq => sys.add_eq(r),
            RowKind::Ineq => sys.add_ineq(r),
        }
    }
    // φ(iters, params) spread into the lifted layout.
    let lift = |row: &[i64]| {
        let mut phi = vec![0i64; total + 1];
        phi[kk + aux..kk + aux + d + np].copy_from_slice(&row[..d + np]);
        phi[total] = row[d + np];
        phi
    };
    // div·target ≤ φ ≤ div·target + div − 1.
    let add_box = |sys: &mut ConstraintSystem, target: usize, row: &[i64], div: i64| {
        let mut lo = lift(row);
        lo[target] -= div;
        sys.add_ineq(lo);
        let mut hi: Vec<i64> = lift(row).iter().map(|&c| -c).collect();
        hi[target] += div;
        hi[total] += div - 1;
        sys.add_ineq(hi);
    };
    let mut next_aux = kk;
    for (v, md) in members.iter().enumerate() {
        if let [(row, div)] = md.terms.as_slice() {
            if *div == 1 {
                // c_v == φ.
                let mut eq = lift(row);
                eq[v] -= 1;
                sys.add_eq(eq);
            } else {
                add_box(&mut sys, v, row, *div);
            }
        } else {
            // c_v == Σ w_j with each w_j = ⌊rowⱼ·x / divⱼ⌋.
            let mut eq = vec![0i64; total + 1];
            eq[v] = 1;
            for (row, div) in &md.terms {
                let w = next_aux;
                next_aux += 1;
                eq[w] -= 1;
                if *div == 1 {
                    let mut e = lift(row);
                    e[w] -= 1;
                    sys.add_eq(e);
                } else {
                    add_box(&mut sys, w, row, *div);
                }
            }
            sys.add_eq(eq);
        }
    }
    // Eliminate the auxiliary floor variables and the original
    // iterators (positions kk..kk+aux+d).
    let mut cur = sys;
    for _ in 0..(aux + d) {
        cur = prune_redundant(&cur.eliminate_var(kk)?);
    }
    let full = cur.clone();
    // Successive projections onto (c_0..c_k, params).
    let mut projections = vec![cur.clone()];
    for k in (1..kk).rev() {
        cur = prune_redundant(&cur.eliminate_var(k)?);
        projections.push(cur.clone());
    }
    projections.reverse();
    let bounds = (0..kk)
        .map(|k| extract_bounds(&projections[k], k))
        .collect();
    let iters = invert_iters(scop, sid, &members);
    Ok(StmtScan {
        members,
        bounds,
        full,
        iters,
    })
}

/// Inverts the affine members pinning a statement's iterators:
/// expresses each original iterator over `(scan vars…, params, 1)`.
/// Returns `None` when no integral inverse exists.
fn invert_iters(scop: &Scop, sid: usize, members: &[MemberData]) -> Option<Vec<Vec<i64>>> {
    let stmt = &scop.statements[sid];
    let d = stmt.depth();
    let np = scop.nparams();
    let kk = members.len();
    if d == 0 {
        return Some(Vec::new());
    }
    // Greedily pick affine members whose iterator rows form a rank-d
    // basis.
    let mut m = polytops_math::IntMatrix::zeros(0, d);
    let mut picked: Vec<usize> = Vec::new();
    for (k, md) in members.iter().enumerate() {
        let [(row, 1)] = md.terms.as_slice() else {
            continue;
        };
        let mut candidate = m.clone();
        candidate.push_row(row[..d].to_vec());
        if candidate.rank() == candidate.rows() {
            m = candidate;
            picked.push(k);
        }
        if m.rows() == d {
            break;
        }
    }
    if m.rows() != d {
        return None;
    }
    let inv = m.to_rat().inverse().ok()?;
    // x = M⁻¹ · (c_picked − param/const parts of the picked rows).
    let mut out = Vec::with_capacity(d);
    for i in 0..d {
        let mut expr_rat = vec![Rat::ZERO; kk + np + 1];
        for (j, &k) in picked.iter().enumerate() {
            let w = inv[(i, j)];
            if w == Rat::ZERO {
                continue;
            }
            let row = &members[k].terms[0].0;
            expr_rat[k] += w;
            for p in 0..np {
                expr_rat[kk + p] -= w * Rat::from(row[d + p]);
            }
            expr_rat[kk + np] -= w * Rat::from(row[d + np]);
        }
        let mut expr = Vec::with_capacity(kk + np + 1);
        for v in expr_rat {
            expr.push(i64::try_from(v.to_integer()?).ok()?);
        }
        out.push(expr);
    }
    Some(out)
}

/// Lifts a bound on `c_k` (over `(c_0..c_{k-1}, params, 1)`) into a
/// statement's full `(c_0..c_{K-1}, params)` row: `div·c_k − expr ≥ 0`
/// for lower bounds, `expr − div·c_k ≥ 0` for upper bounds.
fn lift_bound(term: &BoundTerm, k: usize, kk: usize, np: usize, lower: bool) -> Vec<i64> {
    let sign = if lower { -1 } else { 1 };
    let mut row = vec![0i64; kk + np + 1];
    for (i, &c) in term.expr[..k].iter().enumerate() {
        row[i] = sign * c;
    }
    for (p, &c) in term.expr[k..].iter().enumerate() {
        row[kk + p] = sign * c;
    }
    row[k] = -sign * term.div;
    row
}

/// Whether `term` is a valid `c_k` bound for every point of `scan`'s
/// statement (an exact LP implication over the full projection).
fn bound_valid(scan: &StmtScan, k: usize, term: &BoundTerm, lower: bool, np: usize) -> bool {
    let row = lift_bound(term, k, scan.members.len(), np, lower);
    ineq_implied(&scan.full, &row)
}

/// The union bound of one loop level: the shared terms every active
/// statement satisfies when such terms exist, otherwise the per-
/// statement bound lists combined with an outer `min`/`max`.
fn union_bounds(
    scans: &[StmtScan],
    active: &[usize],
    k: usize,
    lower: bool,
    np: usize,
) -> Vec<Vec<BoundTerm>> {
    let list_of = |s: usize| -> &Vec<BoundTerm> {
        let (lb, ub) = &scans[s].bounds[k];
        if lower {
            lb
        } else {
            ub
        }
    };
    let mut candidates: Vec<BoundTerm> = Vec::new();
    for &s in active {
        for t in list_of(s) {
            if !candidates.contains(t) {
                candidates.push(t.clone());
            }
        }
    }
    let shared: Vec<BoundTerm> = candidates
        .into_iter()
        .filter(|t| {
            active
                .iter()
                .all(|&s| bound_valid(&scans[s], k, t, lower, np))
        })
        .collect();
    if !shared.is_empty() {
        return vec![shared];
    }
    let mut lists: Vec<Vec<BoundTerm>> = Vec::new();
    for &s in active {
        let l = list_of(s).clone();
        if !lists.contains(&l) {
            lists.push(l);
        }
    }
    lists
}

/// Marks pending from enclosing `Mark` nodes, consumed by the next band.
#[derive(Default, Clone, Copy)]
struct PendingMarks<'a> {
    wavefront: bool,
    simd_stmts: Option<&'a [usize]>,
}

/// The leaf guards of one statement: the exact floor checks of its
/// quasi-affine members plus every full-projection row the enclosing
/// loop bounds do not imply.
fn leaf_guards(scan: &StmtScan, loop_bounds: &[(usize, bool, BoundTerm)], np: usize) -> Vec<Guard> {
    let kk = scan.members.len();
    let mut ctx = ConstraintSystem::new(kk + np);
    for (k, lower, term) in loop_bounds {
        ctx.add_ineq(lift_bound(term, *k, kk, np, *lower));
    }
    let mut out = Vec::new();
    // Exact floor guards for quasi-affine members, plus their linear
    // relaxation (`D·c_v` between the div-weighted term sums) so the
    // projection rows derived from the same facts are recognized as
    // implied below.
    for (v, md) in scan.members.iter().enumerate() {
        if md.terms.len() < 2 {
            continue;
        }
        let Some(terms) = floor_terms(scan, md) else {
            continue;
        };
        let d_all: i64 = terms.iter().map(|t| t.div).product();
        let mut lo = vec![0i64; kk + np + 1];
        let mut hi = vec![0i64; kk + np + 1];
        lo[v] = d_all;
        hi[v] = -d_all;
        for t in &terms {
            let w = d_all / t.div;
            for (i, &c) in t.expr.iter().enumerate() {
                lo[i] -= w * c;
                hi[i] += w * c;
            }
            lo[kk + np] += w * (t.div - 1);
        }
        ctx.add_ineq(lo);
        ctx.add_ineq(hi);
        out.push(Guard::Floors { var: v, terms });
    }
    for (kind, row) in scan.full.iter() {
        match kind {
            RowKind::Ineq => {
                if !ineq_implied(&ctx, row) {
                    out.push(Guard::Ineq(row.to_vec()));
                    ctx.add_ineq(row.to_vec());
                }
            }
            RowKind::Eq => {
                let neg: Vec<i64> = row.iter().map(|&c| -c).collect();
                if !(ineq_implied(&ctx, row) && ineq_implied(&ctx, &neg)) {
                    out.push(Guard::Eq(row.to_vec()));
                    ctx.add_eq(row.to_vec());
                }
            }
        }
    }
    out
}

/// The floored terms of a quasi-affine member rewritten over the scan
/// variables (requires the statement's iterators to be invertible).
fn floor_terms(scan: &StmtScan, md: &MemberData) -> Option<Vec<BoundTerm>> {
    let iters = scan.iters.as_ref()?;
    let kk = scan.members.len();
    let width = scan.full.num_vars() + 1; // kk + np + 1
    let np = width - kk - 1;
    let d = iters.len();
    let mut out = Vec::with_capacity(md.terms.len());
    for (row, div) in &md.terms {
        let mut e = vec![0i64; width];
        for (i, x) in iters.iter().enumerate() {
            for (pos, &c) in x.iter().enumerate() {
                e[pos] += row[i] * c;
            }
        }
        for p in 0..np {
            e[kk + p] += row[d + p];
        }
        e[kk + np] += row[d + np];
        out.push(BoundTerm { expr: e, div: *div });
    }
    Some(out)
}

/// Recursively builds the AST of one tree node for the active
/// statements.
#[allow(clippy::too_many_arguments)]
fn walk(
    scop: &Scop,
    scans: &[StmtScan],
    node: &TreeNode,
    active: &[usize],
    level: usize,
    loop_bounds: &mut Vec<(usize, bool, BoundTerm)>,
    marks: PendingMarks<'_>,
) -> Vec<AstNode> {
    if active.is_empty() {
        return Vec::new();
    }
    let np = scop.nparams();
    match node {
        TreeNode::Leaf => active
            .iter()
            .map(|&sid| {
                AstNode::Stmt(StmtNode {
                    id: StmtId(sid),
                    name: scop.statements[sid].name.clone(),
                    iters: scans[sid].iters.clone(),
                    guards: leaf_guards(&scans[sid], loop_bounds, np),
                })
            })
            .collect(),
        TreeNode::Filter { stmts, child } => {
            let inner: Vec<usize> = active
                .iter()
                .copied()
                .filter(|s| stmts.contains(s))
                .collect();
            walk(scop, scans, child, &inner, level, loop_bounds, marks)
        }
        TreeNode::Sequence(children) => {
            let mut out = Vec::new();
            for c in children {
                out.extend(walk(
                    scop,
                    scans,
                    c,
                    active,
                    level,
                    loop_bounds,
                    PendingMarks::default(),
                ));
            }
            out
        }
        TreeNode::Mark { kind, child } => {
            let next = match kind {
                MarkKind::Tile(_) => marks,
                MarkKind::Wavefront => PendingMarks {
                    wavefront: true,
                    ..marks
                },
                MarkKind::Vectorize(stmts) => PendingMarks {
                    simd_stmts: Some(stmts),
                    ..marks
                },
            };
            walk(scop, scans, child, active, level, loop_bounds, next)
        }
        TreeNode::Band { members, child, .. } => {
            let n = members.len();
            build_member(scop, scans, active, level, n, 0, child, loop_bounds, marks)
        }
    }
}

/// Builds the `j`-th member loop of a band (and, recursively, the
/// members inside it, then the band's child).
#[allow(clippy::too_many_arguments)]
fn build_member(
    scop: &Scop,
    scans: &[StmtScan],
    active: &[usize],
    level: usize,
    n: usize,
    j: usize,
    child: &TreeNode,
    loop_bounds: &mut Vec<(usize, bool, BoundTerm)>,
    marks: PendingMarks<'_>,
) -> Vec<AstNode> {
    if j == n {
        return walk(
            scop,
            scans,
            child,
            active,
            level + n,
            loop_bounds,
            PendingMarks::default(),
        );
    }
    let k = level + j;
    let np = scop.nparams();
    let lb = union_bounds(scans, active, k, true, np);
    let ub = union_bounds(scans, active, k, false, np);
    // Shared bounds join the gist context of every nested statement.
    let pushed = {
        let mut pushed = 0;
        if let [terms] = lb.as_slice() {
            for t in terms {
                loop_bounds.push((k, true, t.clone()));
                pushed += 1;
            }
        }
        if let [terms] = ub.as_slice() {
            for t in terms {
                loop_bounds.push((k, false, t.clone()));
                pushed += 1;
            }
        }
        pushed
    };
    let body = build_member(
        scop,
        scans,
        active,
        level,
        n,
        j + 1,
        child,
        loop_bounds,
        marks,
    );
    for _ in 0..pushed {
        loop_bounds.pop();
    }
    let md = &scans[active[0]].members[k];
    let tile = match md.terms.as_slice() {
        [(_, div)] if *div > 1 => Some(*div),
        _ => None,
    };
    let simd = j + 1 == n
        && marks
            .simd_stmts
            .is_some_and(|stmts| active.iter().all(|s| stmts.contains(s)));
    vec![AstNode::Loop(LoopNode {
        var: k,
        tile,
        wavefront: j == 0 && marks.wavefront,
        parallel: md.coincident,
        simd,
        lb,
        ub,
        body,
    })]
}

/// Generates the AST of a scheduled SCoP by walking its schedule tree
/// (lowering the flat schedule when no tree was recorded).
///
/// # Errors
///
/// Propagates arithmetic overflow from the exact projections.
///
/// # Panics
///
/// Panics if `sched` is not a schedule of `scop`.
pub fn generate(scop: &Scop, sched: &Schedule) -> MathResult<AstNode> {
    let tree = sched.tree_or_lowered();
    assert_eq!(
        tree.nstmts,
        scop.statements.len(),
        "schedule/scop statement count"
    );
    let paths = tree.stmt_paths();
    let mut scans = Vec::with_capacity(paths.len());
    for (sid, path) in paths.iter().enumerate() {
        let members = path
            .iter()
            .filter_map(|step| match step {
                PathStep::Member {
                    terms, coincident, ..
                } => Some(MemberData {
                    terms: terms.clone(),
                    coincident: *coincident,
                }),
                PathStep::Seq { .. } => None,
            })
            .collect();
        scans.push(scan_stmt(scop, sid, members)?);
    }
    let active: Vec<usize> = (0..scop.statements.len()).collect();
    let mut loop_bounds = Vec::new();
    let body = walk(
        scop,
        &scans,
        &tree.root,
        &active,
        0,
        &mut loop_bounds,
        PendingMarks::default(),
    );
    Ok(match body.len() {
        1 => body.into_iter().next().expect("nonempty"),
        _ => AstNode::Seq(body),
    })
}

// ---------------------------------------------------------------------
// Lowering to C-like text.
// ---------------------------------------------------------------------

/// Renders an affine numerator over `(c_0.., params, 1)`; the scan-var
/// count is implied by the expression length.
fn render_affine(expr: &[i64], params: &[&str]) -> String {
    let nvars = expr.len() - 1 - params.len();
    let mut out = String::new();
    let name = |i: usize| -> String {
        if i < nvars {
            format!("c{i}")
        } else {
            params[i - nvars].to_string()
        }
    };
    for (i, &c) in expr[..expr.len() - 1].iter().enumerate() {
        if c == 0 {
            continue;
        }
        let v = name(i);
        if out.is_empty() {
            match c {
                1 => out.push_str(&v),
                -1 => {
                    let _ = write!(out, "-{v}");
                }
                _ => {
                    let _ = write!(out, "{c}*{v}");
                }
            }
        } else {
            let sign = if c > 0 { "+" } else { "-" };
            let a = c.abs();
            if a == 1 {
                let _ = write!(out, " {sign} {v}");
            } else {
                let _ = write!(out, " {sign} {a}*{v}");
            }
        }
    }
    let cst = expr[expr.len() - 1];
    if out.is_empty() {
        let _ = write!(out, "{cst}");
    } else if cst > 0 {
        let _ = write!(out, " + {cst}");
    } else if cst < 0 {
        let _ = write!(out, " - {}", -cst);
    }
    out
}

/// Renders one bound term, wrapping in `floord`/`ceild` when divided.
fn render_term(term: &BoundTerm, lower: bool, params: &[&str]) -> String {
    let e = render_affine(&term.expr, params);
    if term.div == 1 {
        e
    } else if lower {
        format!("ceild({e}, {})", term.div)
    } else {
        format!("floord({e}, {})", term.div)
    }
}

/// Renders a max-of/min-of list of bound terms.
fn render_terms(terms: &[BoundTerm], lower: bool, params: &[&str]) -> String {
    let rendered: Vec<String> = terms
        .iter()
        .map(|t| render_term(t, lower, params))
        .collect();
    match rendered.len() {
        0 => if lower { "-INF" } else { "INF" }.to_string(),
        1 => rendered.into_iter().next().expect("nonempty"),
        _ => format!(
            "{}({})",
            if lower { "max" } else { "min" },
            rendered.join(", ")
        ),
    }
}

/// Renders a full loop bound: the outer `min`/`max` over per-statement
/// term lists (a single list renders without the outer combinator).
fn render_bound(lists: &[Vec<BoundTerm>], lower: bool, params: &[&str]) -> String {
    let rendered: Vec<String> = lists
        .iter()
        .map(|terms| render_terms(terms, lower, params))
        .collect();
    match rendered.len() {
        0 => if lower { "-INF" } else { "INF" }.to_string(),
        1 => rendered.into_iter().next().expect("nonempty"),
        _ => format!(
            "{}({})",
            if lower { "min" } else { "max" },
            rendered.join(", ")
        ),
    }
}

/// Renders one guard condition.
fn render_guard(g: &Guard, params: &[&str]) -> String {
    match g {
        Guard::Ineq(row) => format!("{} >= 0", render_affine(row, params)),
        Guard::Eq(row) => format!("{} == 0", render_affine(row, params)),
        Guard::Floors { var, terms } => {
            let sum: Vec<String> = terms
                .iter()
                .map(|t| {
                    let e = render_affine(&t.expr, params);
                    if t.div == 1 {
                        format!("({e})")
                    } else {
                        format!("floord({e}, {})", t.div)
                    }
                })
                .collect();
            format!("c{var} == {}", sum.join(" + "))
        }
    }
}

fn emit_node(node: &AstNode, params: &[&str], indent: usize, in_parallel: bool, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        AstNode::Seq(children) => {
            for c in children {
                emit_node(c, params, indent, in_parallel, out);
            }
        }
        AstNode::Loop(l) => {
            let v = format!("c{}", l.var);
            let lb = render_bound(&l.lb, true, params);
            let ub = render_bound(&l.ub, false, params);
            let mark_parallel = l.parallel && !in_parallel;
            if mark_parallel {
                let _ = writeln!(out, "{pad}#pragma omp parallel for");
            }
            if l.simd {
                let _ = writeln!(out, "{pad}#pragma omp simd");
            }
            let mut note = String::new();
            if let Some(size) = l.tile {
                let _ = write!(note, " // tile loop (size {size})");
            }
            if l.wavefront {
                let _ = write!(note, " // wavefront");
            }
            let _ = writeln!(out, "{pad}for ({v} = {lb}; {v} <= {ub}; {v}++) {{{note}");
            for c in &l.body {
                emit_node(c, params, indent + 1, in_parallel || mark_parallel, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        AstNode::Stmt(s) => {
            let args = match &s.iters {
                Some(exprs) => exprs
                    .iter()
                    .map(|e| render_affine(e, params))
                    .collect::<Vec<_>>()
                    .join(", "),
                None => "...".to_string(),
            };
            if s.guards.is_empty() {
                let _ = writeln!(out, "{pad}{}({args});", s.name);
            } else {
                let conds: Vec<String> = s.guards.iter().map(|g| render_guard(g, params)).collect();
                let _ = writeln!(out, "{pad}if ({}) {}({args});", conds.join(" && "), s.name);
            }
        }
    }
}

/// Lowers a scheduled SCoP to C-like text through the schedule-tree
/// AST.
///
/// The output uses CLooG-style `floord`/`ceild` integer divisions and
/// `max`/`min` bound combinators; tile loops and wavefront loops are
/// annotated, parallel members carry an OpenMP pragma, vectorized
/// members carry `#pragma omp simd`, and residual per-statement guards
/// render as `if (...)` conditions.
///
/// # Errors
///
/// Propagates arithmetic overflow from the exact projections.
pub fn emit_c(scop: &Scop, sched: &Schedule) -> MathResult<String> {
    let tree = generate(scop, sched)?;
    let params: Vec<&str> = scop.params.iter().map(String::as_str).collect();
    let mut out = String::new();
    emit_node(&tree, &params, 0, false, &mut out);
    Ok(out)
}
