//! The scenario engine: the paper's per-scenario reconfiguration loop
//! as a first-class, parallel API.
//!
//! PolyTOPS's headline workflow (paper Fig. 1) schedules the *same* SCoP
//! many times under different configurations — presets, cost-function
//! stacks, tile-size candidates — and picks a winner. Run naively that
//! loop repeats the most expensive constraint-construction work (the
//! Farkas eliminations of every dependence) once per configuration and
//! uses one core. This module turns the loop into an engine:
//!
//! * a [`ScenarioSet`] holds N (SCoP × configuration) jobs
//!   ([`Scenario`]) over a shared pool of SCoPs;
//! * jobs are **grouped by SCoP and ILP variable layout**, each group
//!   sharing one dependence analysis and one `Arc`-wrapped
//!   [`FarkasCache`]: the first scenario of a group eliminates each
//!   dependence, every later (or concurrent) scenario replays it —
//!   [`PipelineStats::farkas_hits`] of the later scenarios measure
//!   exactly this cross-scenario amortization;
//! * [`ScenarioSet::run_sharded`] executes the jobs on a work-stealing
//!   pool of scoped threads pulling from a shared channel queue
//!   (`std::thread::scope` + `std::sync::mpsc` — the build environment
//!   has no registry access, so no rayon/crossbeam);
//! * with [`ScenarioSet::split_components`] enabled, a SCoP whose
//!   dependence graph falls into several weakly connected components is
//!   dispatched as one **sub-job per component** (the groups a
//!   distribution cut would isolate anyway), solved in parallel and
//!   stitched back under a leading constant distribution dimension;
//! * [`winner`]/[`winner_by`] select the best report by a score (a
//!   static cost heuristic by default, or any user oracle).
//!
//! # Determinism
//!
//! Sharded execution is **bit-identical** to sequential execution: a
//! cache hit replays a constraint system equal to what a recomputation
//! would build, so no result depends on which thread finished first.
//! ILP warm-start seeds — which *can* steer tie-breaks between equally
//! optimal points — are kept per-run by default; opting into
//! [`ScenarioSet::share_warm_starts`] lets scenarios of one
//! (SCoP, ILP layout) group seed each other's solves from a completed
//! sibling's per-dimension optimum, and preserves bit-identity by
//! switching those solves to the canonical-optimum tie-break
//! ([`polytops_math::ilp_lexmin_canonical`]): the answer is a pure
//! function of the constraint system, whichever sibling (or none)
//! donated the seed. Only per-scenario *counter* splits may vary under
//! concurrency (cache hit/miss, seed hits, branch-and-bound node
//! counts); every schedule is reproducible at any thread count.
//!
//! # Example
//!
//! ```
//! use polytops_core::scenario::{winner, ScenarioSet};
//! use polytops_core::presets;
//! use polytops_ir::{Aff, ScopBuilder};
//!
//! // for (i = 1; i < N; i++) A[i] = A[i-1];
//! let mut b = ScopBuilder::new("chain");
//! let n = b.param("N");
//! let a = b.array("A", &[n.clone()], 8);
//! b.open_loop("i", Aff::val(1), n - 1);
//! b.stmt("S0")
//!     .read(a, &[Aff::var("i") - 1])
//!     .write(a, &[Aff::var("i")])
//!     .add(&mut b);
//! b.close_loop();
//!
//! let mut set = ScenarioSet::new();
//! let scop = set.add_scop("chain", b.build().unwrap());
//! set.add_scenario(scop, "pluto", presets::pluto());
//! set.add_scenario(scop, "feautrier", presets::feautrier());
//!
//! let results = set.run_sharded(2);
//! let best = winner(&results).expect("both scenarios schedule");
//! assert_eq!(best.schedule.dims(), 1);
//! ```

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use polytops_deps::{analyze, Dependence};
use polytops_ir::{Schedule, ScheduleTree, Scop, StmtId, StmtSchedule, TreeNode};

use crate::config::SchedulerConfig;
use crate::error::ScheduleError;
use crate::pipeline::legality::FarkasCache;
use crate::pipeline::solve::{self, EngineOptions, PipelineStats, SeedStore};
use crate::registry::{CacheLayout, ScopEntry};
use crate::strategy::ConfigStrategy;

/// One scheduling job: a SCoP (by index into its [`ScenarioSet`])
/// paired with a complete configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label, reported back in the [`ScenarioReport`].
    pub name: String,
    /// Index of the SCoP (as returned by [`ScenarioSet::add_scop`]).
    pub scop: usize,
    /// The configuration this scenario schedules under.
    pub config: SchedulerConfig,
    /// Pipeline feature toggles (warm start; the Farkas cache is always
    /// shared by the scenario engine regardless of this flag).
    pub options: EngineOptions,
}

/// A successfully scheduled scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Index of the scenario in its [`ScenarioSet`].
    pub scenario: usize,
    /// Scenario label.
    pub name: String,
    /// Index of the scheduled SCoP.
    pub scop: usize,
    /// Name of the scheduled SCoP.
    pub scop_name: String,
    /// The legal schedule found.
    pub schedule: Schedule,
    /// This run's pipeline statistics (for component-split scenarios,
    /// the sum over all component sub-jobs).
    pub stats: PipelineStats,
    /// How many solver jobs the scenario dispatched (1 for a whole-SCoP
    /// solve, the component count when split).
    pub sub_jobs: usize,
}

/// The outcome of one scenario: a report, or the scheduling error.
pub type ScenarioResult = Result<ScenarioReport, ScheduleError>;

/// A batch of scenarios over a shared pool of SCoPs.
///
/// Adding the same SCoP once and referencing it from many scenarios is
/// what enables cross-scenario Farkas-cache sharing — scenarios of
/// *different* SCoPs never share cache entries.
#[derive(Debug, Default)]
pub struct ScenarioSet {
    scops: Vec<(String, Scop)>,
    /// Registry entries backing a SCoP slot, when admitted via
    /// [`add_resident_scop`](ScenarioSet::add_resident_scop): their
    /// whole-SCoP dependence analysis and Farkas caches are used instead
    /// of per-run ones, which is what carries amortization across runs.
    resident: Vec<Option<Arc<ScopEntry>>>,
    scenarios: Vec<Scenario>,
    split_components: bool,
    share_warm_starts: bool,
}

impl ScenarioSet {
    /// Creates an empty set.
    pub fn new() -> ScenarioSet {
        ScenarioSet::default()
    }

    /// Registers a SCoP and returns its index for
    /// [`add_scenario`](ScenarioSet::add_scenario).
    pub fn add_scop(&mut self, name: impl Into<String>, scop: Scop) -> usize {
        self.scops.push((name.into(), scop));
        self.resident.push(None);
        self.scops.len() - 1
    }

    /// Registers a registry-resident SCoP (the admission API of the
    /// `polytopsd` service): scenarios over this slot reuse the entry's
    /// persistent dependence analysis and per-layout Farkas caches
    /// instead of building fresh ones for this run, so a SCoP the
    /// registry has seen before pays only the ILP solves.
    ///
    /// The scheduled SCoP is the entry's *representative*
    /// ([`ScopEntry::scop`]), making answers bit-identical across every
    /// client that deduped onto the entry — and, because cache replay is
    /// exact, bit-identical to a fresh offline
    /// [`add_scop`](ScenarioSet::add_scop) run of the same SCoP.
    pub fn add_resident_scop(&mut self, entry: Arc<ScopEntry>) -> usize {
        self.scops
            .push((entry.name().to_string(), entry.scop().clone()));
        self.resident.push(Some(entry));
        self.scops.len() - 1
    }

    /// Adds a scenario over a registered SCoP with default
    /// [`EngineOptions`] and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `scop` is not an index returned by
    /// [`add_scop`](ScenarioSet::add_scop).
    pub fn add_scenario(
        &mut self,
        scop: usize,
        name: impl Into<String>,
        config: SchedulerConfig,
    ) -> usize {
        self.add_scenario_with_options(scop, name, config, EngineOptions::default())
    }

    /// [`add_scenario`](ScenarioSet::add_scenario) with explicit engine
    /// options.
    ///
    /// # Panics
    ///
    /// Panics if `scop` is not an index returned by
    /// [`add_scop`](ScenarioSet::add_scop).
    pub fn add_scenario_with_options(
        &mut self,
        scop: usize,
        name: impl Into<String>,
        config: SchedulerConfig,
        options: EngineOptions,
    ) -> usize {
        assert!(scop < self.scops.len(), "unknown SCoP index {scop}");
        self.scenarios.push(Scenario {
            name: name.into(),
            scop,
            config,
            options,
        });
        self.scenarios.len() - 1
    }

    /// Enables or disables component splitting: scenarios whose SCoP's
    /// dependence graph has several weakly connected components — and
    /// whose configuration sets no fusion controls, directives, custom
    /// constraints (those reference global statement ids) or tile sizes
    /// (tiling decisions are taken per band over the whole SCoP) — are
    /// solved as one sub-job per component and
    /// stitched back together under a leading constant distribution
    /// dimension. Configurations that do set any of those keep their
    /// whole-SCoP solve even when splitting is enabled.
    ///
    /// This changes the *scenario*, not just its execution: the joint
    /// solve would schedule unrelated components into common loops,
    /// while the split scenario distributes them. Splitting is
    /// therefore an explicit axis of the sweep, off by default; split
    /// results remain deterministic and oracle-legal. Note that
    /// [`run_isolated`](ScenarioSet::run_isolated) never splits, so its
    /// timings/stats are only comparable to the engine paths while
    /// splitting is off.
    pub fn split_components(&mut self, enabled: bool) {
        self.split_components = enabled;
    }

    /// Enables or disables cross-scenario warm-start sharing (off by
    /// default): scenarios of one (SCoP, ILP layout) group — the same
    /// groups that share a Farkas cache — seed each dimension's ILP
    /// solve from the first sibling optimum published for that
    /// dimension, and run in canonical-optimum mode so the donated seed
    /// can only *accelerate* the solve, never change its answer.
    ///
    /// Schedules are therefore bit-identical at any thread count, and
    /// to a sequential sharing run — but **not** necessarily to a
    /// non-sharing run: the canonical tie-break (lexicographically
    /// smallest coefficient vector among optima) may pick a different
    /// equally-optimal point than the history-dependent warm path does.
    /// That is why sharing is an explicit opt-in rather than the
    /// default.
    pub fn share_warm_starts(&mut self, enabled: bool) {
        self.share_warm_starts = enabled;
    }

    /// The registered scenarios.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The registered SCoPs as `(name, scop)` pairs.
    pub fn scops(&self) -> &[(String, Scop)] {
        &self.scops
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs every scenario on the calling thread, in scenario order,
    /// with cross-scenario cache sharing. This is the sequential
    /// baseline [`run_sharded`](ScenarioSet::run_sharded) is benchmarked
    /// against — same work, one worker.
    pub fn run_sequential(&self) -> Vec<ScenarioResult> {
        let runner = Runner::new(self);
        let slots = runner.slots();
        for job in runner.jobs() {
            runner.execute(job, &slots);
        }
        runner.assemble(slots)
    }

    /// Runs every scenario on a pool of `threads` scoped worker threads
    /// pulling jobs from a shared channel queue (work-stealing: a free
    /// worker takes the next job whatever its scenario), then assembles
    /// results in scenario order. `threads` is clamped to `1..=jobs`.
    ///
    /// Results are bit-identical to
    /// [`run_sequential`](ScenarioSet::run_sequential) — see the module
    /// docs for why.
    pub fn run_sharded(&self, threads: usize) -> Vec<ScenarioResult> {
        let runner = Runner::new(self);
        let slots = runner.slots();
        let jobs = runner.jobs();
        let workers = threads.clamp(1, jobs.len().max(1));
        let (tx, rx) = mpsc::channel::<Job>();
        for job in jobs {
            tx.send(job).expect("queue open");
        }
        drop(tx);
        let rx = Mutex::new(rx);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // Hold the queue lock only while dequeuing, never
                    // while solving.
                    let job = match rx.lock().expect("queue lock").recv() {
                        Ok(job) => job,
                        Err(_) => break, // queue drained
                    };
                    runner.execute(job, &slots);
                });
            }
        });
        runner.assemble(slots)
    }

    /// Runs every scenario independently (fresh caches, no sharing, no
    /// component splitting) — the pre-engine baseline used to measure
    /// how much work cross-scenario sharing saves.
    ///
    /// Because this path models the naive loop, it always solves whole
    /// SCoPs: with [`split_components`](ScenarioSet::split_components)
    /// enabled, `run_sequential`/`run_sharded` solve *different*
    /// (distributed) scenarios, so compare against this baseline only
    /// with splitting off (as `benches/scenarios.rs` does).
    pub fn run_isolated(&self) -> Vec<ScenarioResult> {
        self.scenarios
            .iter()
            .enumerate()
            .map(|(i, sc)| {
                let (name, scop) = &self.scops[sc.scop];
                let mut strategy = ConfigStrategy::new(sc.config.clone());
                solve::run(scop, &sc.config, &mut strategy, &sc.options).map(|(schedule, stats)| {
                    ScenarioReport {
                        scenario: i,
                        name: sc.name.clone(),
                        scop: sc.scop,
                        scop_name: name.clone(),
                        schedule,
                        stats,
                        sub_jobs: 1,
                    }
                })
            })
            .collect()
    }
}

/// Selects the best successful report under [`default_score`], ties
/// resolved toward the earlier scenario.
pub fn winner(results: &[ScenarioResult]) -> Option<&ScenarioReport> {
    winner_by(results, default_score)
}

/// Selects the best successful report under a custom score (higher is
/// better — plug in a model-driven oracle here), ties resolved toward
/// the earlier scenario.
pub fn winner_by<F: Fn(&ScenarioReport) -> i64>(
    results: &[ScenarioResult],
    score: F,
) -> Option<&ScenarioReport> {
    let mut best: Option<(&ScenarioReport, i64)> = None;
    for r in results.iter().flatten() {
        let s = score(r);
        if best.is_none_or(|(_, bs)| s > bs) {
            best = Some((r, s));
        }
    }
    best.map(|(r, _)| r)
}

/// The built-in scenario score: a static cost heuristic over the found
/// schedule.
///
/// Rewards, in decreasing weight: an outermost non-constant dimension
/// that is parallel (coarse-grain parallelism, worth the most), every
/// parallel dimension, the width of the widest permutable band
/// (tilability), and — negatively — the total dimension count (deep
/// schedules mean distribution and lost fusion).
pub fn default_score(report: &ScenarioReport) -> i64 {
    let sched = &report.schedule;
    let mut score = 0i64;
    let outer_loop = (0..sched.dims())
        .find(|&d| (0..sched.num_statements()).any(|s| !sched.stmt(StmtId(s)).row_is_constant(d)));
    if let Some(d) = outer_loop {
        if sched.parallel().get(d).copied().unwrap_or(false) {
            score += 1000;
        }
    }
    score += 100 * sched.parallel().iter().filter(|&&p| p).count() as i64;
    score += 10
        * sched
            .band_ranges()
            .into_iter()
            .map(|(a, b)| b - a)
            .max()
            .unwrap_or(0) as i64;
    score -= sched.dims() as i64;
    score
}

// ---------------------------------------------------------------------
// Execution internals.
// ---------------------------------------------------------------------

/// A dependence-closed statement group of one SCoP, with the sub-SCoP
/// it is solved as.
#[derive(Debug)]
struct ComponentPlan {
    /// Original statement ids, sorted ascending.
    stmts: Vec<usize>,
    /// The extracted sub-SCoP (statements re-numbered, everything else
    /// shared with the parent).
    scop: Scop,
}

/// A unit of work for the pool, carrying its shared dependence analysis
/// and Farkas cache.
enum Job {
    /// Solve a scenario's whole SCoP.
    Whole {
        scenario: usize,
        deps: Arc<Vec<Dependence>>,
        cache: Arc<FarkasCache>,
        seeds: Option<Arc<SeedStore>>,
        /// When the job was enqueued, for the pool's queue-wait
        /// histogram (recorded only for traced scenarios).
        queued: Instant,
    },
    /// Solve one dependence component of a split scenario.
    Component {
        scenario: usize,
        comp: usize,
        deps: Arc<Vec<Dependence>>,
        cache: Arc<FarkasCache>,
        seeds: Option<Arc<SeedStore>>,
        /// See [`Job::Whole::queued`].
        queued: Instant,
    },
}

type EngineOutcome = Result<(Schedule, PipelineStats), ScheduleError>;

/// Result slots, one per dispatched job. `OnceLock` gives each slot a
/// single writer (the worker that ran the job) without locks around the
/// result vectors themselves.
struct Slots {
    whole: Vec<OnceLock<EngineOutcome>>,
    comps: Vec<Vec<OnceLock<EngineOutcome>>>,
}

/// One `run_*` call's precomputed state: component decompositions, the
/// parent-SCoP analyses feeding them, and the cache-sharing groups.
struct Runner<'a> {
    set: &'a ScenarioSet,
    /// Per SCoP: its weakly-connected dependence components, when there
    /// are at least two (computed only for SCoPs some scenario can
    /// actually split).
    comp_sets: Vec<Option<Vec<ComponentPlan>>>,
    /// Per scenario: whether it runs as component sub-jobs.
    split: Vec<bool>,
    /// Analyses already computed during decomposition, seeding
    /// [`Runner::jobs`] so no SCoP is analyzed twice per run.
    analyses: BTreeMap<(usize, Option<usize>), Arc<Vec<Dependence>>>,
}

/// Cache-sharing key: SCoP, component (`None` = whole), and the
/// configuration fields that shape the ILP variable layout.
type CacheKey = (usize, Option<usize>, bool, bool, Vec<String>);

impl<'a> Runner<'a> {
    fn new(set: &'a ScenarioSet) -> Runner<'a> {
        let mut analyses: BTreeMap<(usize, Option<usize>), Arc<Vec<Dependence>>> = BTreeMap::new();
        // Registry-resident SCoPs bring their persistent whole-SCoP
        // analysis with them — seed the map so nothing re-analyzes them.
        for (i, entry) in set.resident.iter().enumerate() {
            if let Some(entry) = entry {
                analyses.insert((i, None), entry.deps());
            }
        }
        let comp_sets: Vec<Option<Vec<ComponentPlan>>> = set
            .scops
            .iter()
            .enumerate()
            .map(|(i, (_, scop))| {
                let wanted = set.split_components
                    && set
                        .scenarios
                        .iter()
                        .any(|sc| sc.scop == i && config_splittable(&sc.config));
                if !wanted {
                    return None;
                }
                let deps = Arc::clone(
                    analyses
                        .entry((i, None))
                        .or_insert_with(|| Arc::new(analyze(scop))),
                );
                components_of(scop, &deps)
            })
            .collect();
        let split: Vec<bool> = set
            .scenarios
            .iter()
            .map(|sc| comp_sets[sc.scop].is_some() && config_splittable(&sc.config))
            .collect();
        Runner {
            set,
            comp_sets,
            split,
            analyses,
        }
    }

    fn slots(&self) -> Slots {
        Slots {
            whole: self.set.scenarios.iter().map(|_| OnceLock::new()).collect(),
            comps: self
                .set
                .scenarios
                .iter()
                .enumerate()
                .map(|(i, sc)| {
                    let n = if self.split[i] {
                        self.comp_sets[sc.scop].as_ref().map_or(0, Vec::len)
                    } else {
                        0
                    };
                    (0..n).map(|_| OnceLock::new()).collect()
                })
                .collect(),
        }
    }

    /// Expands scenarios into pool jobs, resolving each job's shared
    /// dependence analysis by (SCoP, component) and its shared cache by
    /// (SCoP, component, layout) group. The analysis — itself a stack
    /// of exact integer feasibility tests — thus runs once per SCoP
    /// instead of once per scenario.
    fn jobs(&self) -> Vec<Job> {
        let mut caches: BTreeMap<CacheKey, Arc<FarkasCache>> = BTreeMap::new();
        // Warm-start sharing (opt-in) uses the same grouping as the
        // Farkas caches: one seed store per (SCoP, component, layout).
        // Stores are always per-run, even for registry-resident SCoPs —
        // a seed is only an accelerator, so nothing is lost by not
        // persisting them.
        let mut seed_stores: BTreeMap<CacheKey, Arc<SeedStore>> = BTreeMap::new();
        let mut analyses = self.analyses.clone();
        let mut jobs = Vec::new();
        for (i, sc) in self.set.scenarios.iter().enumerate() {
            let layout: CacheLayout = crate::registry::layout_of(&sc.config);
            let mut seeds_for = |comp: Option<usize>| {
                if !self.set.share_warm_starts {
                    return None;
                }
                let key = (sc.scop, comp, layout.0, layout.1, layout.2.clone());
                Some(Arc::clone(seed_stores.entry(key).or_default()))
            };
            let mut shared_for = |comp: Option<usize>, scop: &Scop| {
                // A resident whole-SCoP job draws both the analysis and
                // the cache from the registry entry, so its state
                // persists beyond this run (component sub-jobs keep
                // per-run sharing: their decompositions are run-local).
                if comp.is_none() {
                    if let Some(entry) = &self.set.resident[sc.scop] {
                        return (entry.deps(), entry.cache_for_layout(&layout));
                    }
                }
                let deps = Arc::clone(
                    analyses
                        .entry((sc.scop, comp))
                        .or_insert_with(|| Arc::new(analyze(scop))),
                );
                let cache = Arc::clone(
                    caches
                        .entry((sc.scop, comp, layout.0, layout.1, layout.2.clone()))
                        .or_insert_with(|| Arc::new(FarkasCache::new(deps.len(), true))),
                );
                (deps, cache)
            };
            if self.split[i] {
                let comps = self.comp_sets[sc.scop].as_ref().expect("split has comps");
                for (c, plan) in comps.iter().enumerate() {
                    let (deps, cache) = shared_for(Some(c), &plan.scop);
                    jobs.push(Job::Component {
                        scenario: i,
                        comp: c,
                        deps,
                        cache,
                        seeds: seeds_for(Some(c)),
                        queued: Instant::now(),
                    });
                }
            } else {
                let (deps, cache) = shared_for(None, &self.set.scops[sc.scop].1);
                jobs.push(Job::Whole {
                    scenario: i,
                    deps,
                    cache,
                    seeds: seeds_for(None),
                    queued: Instant::now(),
                });
            }
        }
        jobs
    }

    fn execute(&self, job: Job, slots: &Slots) {
        match job {
            Job::Whole {
                scenario,
                deps,
                cache,
                seeds,
                queued,
            } => {
                let sc = &self.set.scenarios[scenario];
                let scop = &self.set.scops[sc.scop].1;
                let (options, _job_span) = traced_options(&sc.options, scenario, queued);
                let outcome = solve_one(scop, &sc.config, &options, deps, cache, seeds);
                let _ = slots.whole[scenario].set(outcome);
            }
            Job::Component {
                scenario,
                comp,
                deps,
                cache,
                seeds,
                queued,
            } => {
                let sc = &self.set.scenarios[scenario];
                let plan = &self.comp_sets[sc.scop].as_ref().expect("split has comps")[comp];
                let (options, _job_span) = traced_options(&sc.options, scenario, queued);
                let outcome = solve_one(&plan.scop, &sc.config, &options, deps, cache, seeds);
                let _ = slots.comps[scenario][comp].set(outcome);
            }
        }
    }

    /// Collects slot contents into per-scenario results, stitching
    /// component sub-jobs back into one schedule.
    fn assemble(&self, slots: Slots) -> Vec<ScenarioResult> {
        let Slots { whole, comps } = slots;
        let mut out = Vec::with_capacity(self.set.scenarios.len());
        for (i, (w, c)) in whole.into_iter().zip(comps).enumerate() {
            let sc = &self.set.scenarios[i];
            let (scop_name, scop) = &self.set.scops[sc.scop];
            let result = if self.split[i] {
                let plans = self.comp_sets[sc.scop].as_ref().expect("split has comps");
                let mut solved = Vec::with_capacity(c.len());
                let mut err = None;
                for slot in c {
                    match slot.into_inner().expect("component job ran") {
                        Ok(ok) => solved.push(ok),
                        Err(e) => {
                            // First (in component order) error wins, so
                            // the reported error is deterministic.
                            err.get_or_insert(e);
                        }
                    }
                }
                match err {
                    Some(e) => Err(e),
                    None => Ok((plans.len(), stitch(scop, plans, solved))),
                }
            } else {
                w.into_inner()
                    .expect("whole job ran")
                    .map(|(schedule, stats)| (1, (schedule, stats)))
            };
            out.push(result.map(|(sub_jobs, (schedule, stats))| ScenarioReport {
                scenario: i,
                name: sc.name.clone(),
                scop: sc.scop,
                scop_name: scop_name.clone(),
                schedule,
                stats,
                sub_jobs,
            }));
        }
        out
    }
}

/// When the scenario carries a span link, records the job's queue wait
/// into the pool histogram and opens a per-job span (arg = scenario
/// index) that the engine's pipeline spans nest under on whichever
/// worker thread runs it. Untraced scenarios pay one `Option` check.
fn traced_options(
    options: &EngineOptions,
    scenario: usize,
    queued: Instant,
) -> (EngineOptions, Option<polytops_obs::SpanHandle>) {
    let Some(link) = &options.trace else {
        return (options.clone(), None);
    };
    let wait = u64::try_from(queued.elapsed().as_nanos()).unwrap_or(u64::MAX);
    link.recorder().histogram("pool.queue_wait_ns").record(wait);
    let span = link.span_arg("job", scenario as i64);
    let mut options = options.clone();
    options.trace = span.link();
    (options, Some(span))
}

/// Runs one engine job under shared analysis, cache and (optional)
/// warm-start seed store.
fn solve_one(
    scop: &Scop,
    config: &SchedulerConfig,
    options: &EngineOptions,
    deps: Arc<Vec<Dependence>>,
    cache: Arc<FarkasCache>,
    seeds: Option<Arc<SeedStore>>,
) -> EngineOutcome {
    let mut strategy = ConfigStrategy::new(config.clone());
    let mut options = options.clone();
    if seeds.is_some() {
        options.shared_seeds = seeds;
    }
    solve::run_shared(scop, config, &mut strategy, &options, deps, cache)
}

/// Whether a configuration can be applied per component: fusion
/// controls, directives and custom constraints all reference global
/// statement ids, and tiling decisions are taken per band over the
/// whole SCoP (a split would tile each component against only its own
/// dependences, changing which bands tile), so any of them pins the
/// scenario to a whole-SCoP solve.
fn config_splittable(config: &SchedulerConfig) -> bool {
    config.fusion.is_empty()
        && config.directives.is_empty()
        && config.custom_constraints.values().all(Vec::is_empty)
        && config.post.tile_sizes.is_empty()
}

/// Weakly connected components of a SCoP's dependence graph (union-find
/// over the precomputed dependence endpoints), as solve-ready
/// [`ComponentPlan`]s ordered by smallest statement id. Returns `None`
/// for fewer than two components.
fn components_of(scop: &Scop, deps: &[Dependence]) -> Option<Vec<ComponentPlan>> {
    let n = scop.statements.len();
    if n < 2 {
        return None;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for dep in deps {
        let a = find(&mut parent, dep.src.0);
        let b = find(&mut parent, dep.dst.0);
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for s in 0..n {
        let root = find(&mut parent, s);
        groups.entry(root).or_default().push(s);
    }
    if groups.len() < 2 {
        return None;
    }
    Some(
        groups
            .into_values()
            .enumerate()
            .map(|(c, stmts)| {
                let scop = component_scop(scop, &stmts, c);
                ComponentPlan { stmts, scop }
            })
            .collect(),
    )
}

/// Extracts the sub-SCoP of one component: selected statements
/// re-numbered, parameters/context/arrays shared with the parent (array
/// ids stay valid; β vectors keep their original values, preserving
/// textual order semantics).
fn component_scop(scop: &Scop, stmts: &[usize], comp: usize) -> Scop {
    Scop {
        name: format!("{}::c{comp}", scop.name),
        params: scop.params.clone(),
        context: scop.context.clone(),
        arrays: scop.arrays.clone(),
        statements: stmts
            .iter()
            .enumerate()
            .map(|(new_id, &s)| {
                let mut st = scop.statements[s].clone();
                st.id = StmtId(new_id);
                st
            })
            .collect(),
    }
}

/// Recombines component schedules into one schedule over the parent
/// SCoP:
///
/// * dimension 0 is a constant distribution row placing component `c`
///   at position `c` (legal: no dependence crosses components);
/// * dimension `d + 1` replays each component's dimension `d`, with
///   shorter components padded by constant-zero rows;
/// * a padded dimension's parallel flag is the conjunction over the
///   components that actually contribute a row, and band boundaries are
///   taken wherever *any* contributing component starts a band (the
///   conservative common refinement);
/// * the combined schedule *tree* is a [`TreeNode::Sequence`] of
///   [`TreeNode::Filter`]s over the component trees, remapped to parent
///   statement ids and shifted past the distribution level — marks and
///   band structure carry over verbatim.
fn stitch(
    scop: &Scop,
    plans: &[ComponentPlan],
    solved: Vec<(Schedule, PipelineStats)>,
) -> (Schedule, PipelineStats) {
    let np = scop.nparams();
    let nstmts = scop.statements.len();
    // Where each global statement lives: (component, local index).
    let mut home = vec![(0usize, 0usize); nstmts];
    for (c, plan) in plans.iter().enumerate() {
        for (local, &s) in plan.stmts.iter().enumerate() {
            home[s] = (c, local);
        }
    }
    let max_len = solved
        .iter()
        .map(|(sched, _)| sched.dims())
        .max()
        .unwrap_or(0);

    let mut per_stmt = Vec::with_capacity(nstmts);
    for (s, stmt) in scop.statements.iter().enumerate() {
        let (c, local) = home[s];
        let (sched, _) = &solved[c];
        let ss = sched.stmt(StmtId(local));
        let mut rows = StmtSchedule::new(stmt.depth(), np);
        let mut cut = vec![0i64; stmt.depth() + np + 1];
        cut[stmt.depth() + np] = c as i64;
        rows.push_row(cut);
        for d in 0..max_len {
            rows.push_row(if d < ss.len() {
                ss.rows()[d].clone()
            } else {
                vec![0i64; stmt.depth() + np + 1]
            });
        }
        per_stmt.push(rows);
    }

    let mut bands = vec![0usize];
    let mut parallel = vec![false];
    let mut next_band = 0usize;
    for d in 0..max_len {
        let contributing: Vec<&Schedule> = solved
            .iter()
            .map(|(sched, _)| sched)
            .filter(|sched| d < sched.dims())
            .collect();
        let boundary = d == 0
            || contributing
                .iter()
                .any(|sched| d < sched.dims() && sched.bands()[d] != sched.bands()[d - 1]);
        if boundary {
            next_band += 1;
        }
        bands.push(next_band);
        parallel
            .push(!contributing.is_empty() && contributing.iter().all(|sched| sched.parallel()[d]));
    }

    let mut combined = Schedule::from_parts(per_stmt, bands, parallel);
    // The combined tree is a sequence of filters over the component
    // trees: component `c` at position `c`, its statements renumbered
    // to the parent ids and every term's source dimension shifted past
    // the distribution level. Marks (tile sizes, wavefront, vectorize)
    // ride along structurally instead of being re-derived.
    let children: Vec<TreeNode> = plans
        .iter()
        .enumerate()
        .map(|(c, plan)| {
            let (sched, _) = &solved[c];
            let sub = sched.tree_or_lowered().remap(nstmts, &plan.stmts, 1);
            let mut stmts = plan.stmts.clone();
            stmts.sort_unstable();
            TreeNode::Filter {
                stmts,
                child: sub.root.boxed(),
            }
        })
        .collect();
    combined.set_tree(ScheduleTree {
        nstmts,
        root: TreeNode::Sequence(children),
    });
    let mut stats = PipelineStats::default();
    for (_, comp_stats) in &solved {
        stats.farkas_hits += comp_stats.farkas_hits;
        stats.farkas_misses += comp_stats.farkas_misses;
        stats.shared_seed_hits += comp_stats.shared_seed_hits;
        stats.fast_path_dims += comp_stats.fast_path_dims;
        stats.fast_path_fallbacks += comp_stats.fast_path_fallbacks;
        stats.ilp.absorb(&comp_stats.ilp);
    }
    stats.dimensions = combined.dims();
    (combined, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use polytops_ir::{Aff, ScopBuilder};
    use polytops_workloads::stencil_chain as chain;

    /// Two independent loops over disjoint arrays: two components.
    fn two_components() -> Scop {
        let mut b = ScopBuilder::new("indep");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let c = b.array("C", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n.clone() - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S1").write(c, &[Aff::var("j")]).add(&mut b);
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn sequential_and_sharded_agree() {
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("chain", chain());
        set.add_scenario(scop, "pluto", presets::pluto());
        set.add_scenario(scop, "feautrier", presets::feautrier());
        let seq = set.run_sequential();
        let par = set.run_sharded(2);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.schedule, b.schedule);
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn second_scenario_of_a_group_replays_the_first() {
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("chain", chain());
        set.add_scenario(scop, "a", presets::pluto());
        set.add_scenario(scop, "b", presets::pluto());
        let results = set.run_sequential();
        let (a, b) = (results[0].as_ref().unwrap(), results[1].as_ref().unwrap());
        assert!(a.stats.farkas_misses > 0, "{:?}", a.stats);
        assert_eq!(b.stats.farkas_misses, 0, "{:?}", b.stats);
        assert!(b.stats.farkas_hits > 0, "{:?}", b.stats);
    }

    #[test]
    fn different_layouts_do_not_share() {
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("chain", chain());
        set.add_scenario(scop, "pluto", presets::pluto());
        set.add_scenario(scop, "pluto_plus", presets::pluto_plus());
        let results = set.run_sequential();
        // pluto+ widens the variable layout; it must not replay pluto's
        // cache (it has its own group).
        assert!(
            results[1].as_ref().unwrap().stats.farkas_misses > 0,
            "{:?}",
            results[1].as_ref().unwrap().stats
        );
    }

    #[test]
    fn split_scenarios_distribute_components() {
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("indep", two_components());
        set.add_scenario(scop, "pluto", presets::pluto());
        set.split_components(true);
        let results = set.run_sequential();
        let report = results[0].as_ref().unwrap();
        assert_eq!(report.sub_jobs, 2);
        // Dimension 0 is the distribution cut: S0 at 0, S1 at 1.
        let sched = &report.schedule;
        assert!(sched.stmt(StmtId(0)).row_is_constant(0));
        assert_eq!(sched.stmt(StmtId(0)).rows()[0][2], 0);
        assert_eq!(sched.stmt(StmtId(1)).rows()[0][2], 1);
        // Both components keep full-rank schedules.
        for s in 0..2 {
            assert_eq!(sched.stmt(StmtId(s)).iter_matrix().rank(), 1);
        }
        // Sharded split execution agrees bit for bit.
        let par = set.run_sharded(3);
        assert_eq!(par[0].as_ref().unwrap().schedule, *sched);
    }

    #[test]
    fn tiled_configs_keep_their_whole_scop_solve_when_splitting() {
        // Tiling decisions are taken per band over the whole SCoP, so a
        // tiled scenario must pin to a whole-SCoP solve (and keep its
        // tile bands in the tree) even with splitting enabled.
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("indep", two_components());
        let mut tiled = presets::pluto();
        tiled.post.tile_sizes = vec![16];
        set.add_scenario(scop, "tiled", tiled);
        set.add_scenario(scop, "plain", presets::pluto());
        set.split_components(true);
        let results = set.run_sequential();
        let tiled_report = results[0].as_ref().unwrap();
        assert_eq!(tiled_report.sub_jobs, 1, "tiled scenario must not split");
        let tree = tiled_report.schedule.tree().expect("tree attached");
        assert!(
            tree.marks()
                .iter()
                .any(|m| matches!(m, polytops_ir::MarkKind::Tile(_))),
            "tile marks kept"
        );
        assert_eq!(results[1].as_ref().unwrap().sub_jobs, 2);
    }

    #[test]
    fn warm_start_sharing_is_bit_identical_at_any_thread_count() {
        // Four same-layout scenarios over the hardest warm-start kernel
        // (jacobi_1d goes fractional), so sibling seeds really flow.
        let build = |share: bool| {
            let mut set = ScenarioSet::new();
            let scop = set.add_scop("jacobi_1d", polytops_workloads::jacobi_1d());
            set.add_scenario(scop, "pluto", presets::pluto());
            set.add_scenario(scop, "pluto2", presets::pluto());
            set.add_scenario(scop, "feautrier", presets::feautrier());
            set.add_scenario(scop, "isl_like", presets::isl_like());
            set.share_warm_starts(share);
            set
        };
        let seq = build(true).run_sequential();
        let total_hits: usize = seq
            .iter()
            .map(|r| r.as_ref().unwrap().stats.shared_seed_hits)
            .sum();
        assert!(total_hits > 0, "sibling seeds must actually be consumed");
        for threads in [1, 2, 4] {
            let par = build(true).run_sharded(threads);
            for (a, b) in seq.iter().zip(&par) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.schedule, b.schedule, "{} @ {threads} threads", a.name);
            }
        }
        // Sharing stays off by default.
        let plain = build(false).run_sequential();
        assert!(plain
            .iter()
            .all(|r| r.as_ref().unwrap().stats.shared_seed_hits == 0));
    }

    #[test]
    fn winner_prefers_parallelism() {
        let mut set = ScenarioSet::new();
        let scop = set.add_scop("chain", chain());
        set.add_scenario(scop, "pluto", presets::pluto());
        set.add_scenario(scop, "feautrier", presets::feautrier());
        let results = set.run_sharded(2);
        let best = winner(&results).expect("schedules exist");
        // Both chains are sequential 1-d schedules; the tie resolves to
        // the earlier scenario.
        assert_eq!(best.scenario, 0);
        // A custom oracle can invert the choice.
        let by_name = winner_by(&results, |r| i64::from(r.name == "feautrier"));
        assert_eq!(by_name.unwrap().scenario, 1);
    }
}
