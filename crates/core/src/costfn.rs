//! Per-cost-function templates (paper §III-A1) and the Farkas templates
//! shared by validity and cost constraints.
//!
//! The assembly of a full dimension's constraint system and objective
//! sequence lives in [`crate::pipeline::objectives`]; this module holds
//! the reusable building blocks it composes (and that the
//! [`FarkasCache`](crate::pipeline::FarkasCache) memoizes).

use polytops_deps::Dependence;
use polytops_ir::{Scop, Statement, Subscript};
use polytops_math::{farkas_nonneg, ConstraintSystem};

use crate::error::ScheduleError;
use crate::space::IlpSpace;

/// Builds the template matrix of `Δ = φ_dst − φ_src` over a dependence's
/// `(it_src, it_dst, params, 1)` space: one row per `z` variable plus one
/// constant row, each expressing the coefficient as an affine function of
/// the ILP variables.
pub fn delta_template(dep: &Dependence, space: &IlpSpace) -> Vec<Vec<i64>> {
    let ds = dep.src_depth;
    let dr = dep.dst_depth;
    let np = space.nparams;
    let s = dep.src.0;
    let r = dep.dst.0;
    let width = space.total() + 1;
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(ds + dr + np + 1);
    for k in 0..ds {
        let mut row = vec![0i64; width];
        space.add_iter_coeff(&mut row, s, k, -1);
        rows.push(row);
    }
    for k in 0..dr {
        let mut row = vec![0i64; width];
        space.add_iter_coeff(&mut row, r, k, 1);
        rows.push(row);
    }
    for j in 0..np {
        let mut row = vec![0i64; width];
        space.add_param_coeff(&mut row, r, j, 1);
        space.add_param_coeff(&mut row, s, j, -1);
        rows.push(row);
    }
    let mut row = vec![0i64; width];
    space.add_const_coeff(&mut row, r, 1);
    space.add_const_coeff(&mut row, s, -1);
    rows.push(row);
    rows
}

/// Farkas-linearized validity constraints `Δ ≥ 0` for one dependence
/// (Eq. 2 of the paper).
///
/// # Errors
///
/// Propagates arithmetic overflow from the elimination.
pub fn validity_rows(
    dep: &Dependence,
    space: &IlpSpace,
) -> Result<ConstraintSystem, ScheduleError> {
    let template = delta_template(dep, space);
    Ok(farkas_nonneg(&dep.poly, &template, space.total())?)
}

/// Proximity constraints `Δ ≤ u·N + w` for one dependence (Eq. 4),
/// linearized with Farkas.
///
/// # Errors
///
/// Propagates arithmetic overflow from the elimination.
pub fn proximity_rows(
    dep: &Dependence,
    space: &IlpSpace,
) -> Result<ConstraintSystem, ScheduleError> {
    // e = u·N + w − Δ ≥ 0.
    let mut template = delta_template(dep, space);
    for row in &mut template {
        for v in row.iter_mut() {
            *v = -*v;
        }
    }
    let ds = dep.src_depth;
    let dr = dep.dst_depth;
    for j in 0..space.nparams {
        template[ds + dr + j][space.u(j)] += 1;
    }
    let last = template.len() - 1;
    template[last][space.w()] += 1;
    Ok(farkas_nonneg(&dep.poly, &template, space.total())?)
}

/// Feautrier constraints `Δ ≥ x_e` with `0 ≤ x_e ≤ 1` for dependence
/// index `e` in the live set; maximizing `Σ x_e` maximizes the number of
/// strongly satisfied dependences.
///
/// # Errors
///
/// Propagates arithmetic overflow from the elimination.
pub fn feautrier_rows(
    dep: &Dependence,
    dep_index: usize,
    space: &IlpSpace,
) -> Result<ConstraintSystem, ScheduleError> {
    // e = Δ − x_e ≥ 0.
    let mut template = delta_template(dep, space);
    let last = template.len() - 1;
    template[last][space.dep_var(dep_index)] -= 1;
    Ok(farkas_nonneg(&dep.poly, &template, space.total())?)
}

/// Nominal parameter value for the contiguity stride analysis: big
/// enough that any inner-dimension walk is obviously not stride-1,
/// irrelevant otherwise (only |stride| == 1 changes a coefficient).
const CONTIGUITY_ESTIMATE: i64 = 64;

/// Per-iterator contiguity support coefficients `c_{S,i}` (Eq. 5).
///
/// Iterators whose uses are genuinely stride-1 — the *linearized
/// element stride* of the access per unit step of the iterator
/// ([`polytops_machine::model::access_stride`], array extents at a
/// nominal parameter estimate) is ±1 — receive a *high* coefficient so
/// that minimization schedules them last (innermost) — exactly the
/// paper's Listing 1 example where `c_{S0} = (10, 1)` forces the
/// interchange. A transposed use like `A[j][i]` stepped by `j` strides
/// a full row, and non-affine (`⌊·/k⌋` / `mod`) uses have no constant
/// stride; both count as ordinary strided uses.
pub fn contiguity_coeffs(scop: &Scop, stmt: &Statement) -> Vec<i64> {
    let d = stmt.depth();
    let mut desire = vec![0i64; d]; // how much we want the iterator innermost
    for acc in &stmt.accesses {
        for (k, want) in desire.iter_mut().enumerate() {
            let involved = acc
                .subscripts
                .iter()
                .any(|s: &Subscript| s.expr().iter_coeffs().get(k).copied().unwrap_or(0) != 0);
            if !involved {
                continue;
            }
            match polytops_machine::model::access_stride(scop, stmt, acc, k, CONTIGUITY_ESTIMATE) {
                Some(s) if s.abs() == 1 => *want += 10, // stride-1 use
                _ => *want += 1,                        // strided / transposed / non-affine use
            }
        }
    }
    // Map desire to cost: most-desired-innermost gets the largest cost.
    desire.iter().map(|&w| 1 + w).collect()
}

/// Per-iterator BigLoopsFirst coefficients: larger iteration extents get
/// smaller costs so they are scheduled outermost. Extents are the exact
/// per-iterator domain extents with parameters fixed at
/// `param_estimate` ([`polytops_machine::model::iterator_extents`] —
/// the same inference the performance model's trip counts use).
pub fn big_loops_first_coeffs(scop: &Scop, stmt: &Statement, param_estimate: i64) -> Vec<i64> {
    let d = stmt.depth();
    let extents = polytops_machine::model::iterator_extents(stmt, scop.nparams(), param_estimate);
    // Rank extents: biggest extent -> cost 1, next -> 2, ...
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(extents[k]));
    let mut cost = vec![1i64; d];
    for (rank, &k) in order.iter().enumerate() {
        cost[k] = 1 + rank as i64;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_deps::analyze;
    use polytops_ir::{Aff, ScopBuilder};

    fn chain() -> (Scop, Vec<Dependence>) {
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        (scop, deps)
    }

    #[test]
    fn validity_accepts_forward_rejects_backward() {
        let (scop, deps) = chain();
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let sys = validity_rows(&deps[0], &space).unwrap();
        // φ = i: T_it = 1, T_cst = 0 -> legal.
        let mut p = vec![0i64; space.total()];
        let b = space.stmts[0].offset;
        p[b] = 1;
        assert!(sys.contains_point(&p));
        // φ = -i illegal (negative split disabled, so emulate via raw -1).
        p[b] = -1;
        assert!(!sys.contains_point(&p));
    }

    #[test]
    fn proximity_bounds_distance() {
        let (scop, deps) = chain();
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let sys = proximity_rows(&deps[0], &space).unwrap();
        let b = space.stmts[0].offset;
        // φ = i: Δ = 1; u = 0, w = 1 satisfies Δ <= w.
        let mut p = vec![0i64; space.total()];
        p[b] = 1;
        p[space.w()] = 1;
        assert!(sys.contains_point(&p));
        // w = 0 does not bound Δ = 1.
        p[space.w()] = 0;
        assert!(!sys.contains_point(&p));
    }

    #[test]
    fn feautrier_var_forces_satisfaction() {
        let (scop, deps) = chain();
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let sys = feautrier_rows(&deps[0], 0, &space).unwrap();
        let b = space.stmts[0].offset;
        let x = space.dep_var(0);
        // φ = i with x_e = 1: Δ = 1 >= 1 ok.
        let mut p = vec![0i64; space.total()];
        p[b] = 1;
        p[x] = 1;
        assert!(sys.contains_point(&p));
        // φ = 0 with x_e = 1: Δ = 0 < 1 violates.
        p[b] = 0;
        assert!(!sys.contains_point(&p));
        // φ = 0 with x_e = 0 is fine.
        p[x] = 0;
        assert!(sys.contains_point(&p));
    }

    #[test]
    fn contiguity_matches_listing1() {
        // Listing 1: S0 accesses c[j][i], a[j][i]; S1 accesses d[i][j], e[i][j].
        let mut b = ScopBuilder::new("listing1");
        let a = b.array("a", &[Aff::val(10), Aff::val(100)], 8);
        let c = b.array("c", &[Aff::val(10), Aff::val(100)], 8);
        let e = b.array("e", &[Aff::val(100), Aff::val(10)], 8);
        let d = b.array("d", &[Aff::val(100), Aff::val(10)], 8);
        b.open_loop("i", Aff::val(0), Aff::val(99));
        b.open_loop("j", Aff::val(0), Aff::val(9));
        b.stmt("S0")
            .read(a, &[Aff::var("j"), Aff::var("i")])
            .write(c, &[Aff::var("j"), Aff::var("i")])
            .add(&mut b);
        b.stmt("S1")
            .read(e, &[Aff::var("i"), Aff::var("j")])
            .write(d, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let c0 = contiguity_coeffs(&scop, &scop.statements[0]);
        let c1 = contiguity_coeffs(&scop, &scop.statements[1]);
        // S0: i is stride-1 (last subscript) -> larger cost than j.
        assert!(c0[0] > c0[1], "S0 coeffs {c0:?}");
        // S1: j is stride-1 -> larger cost than i.
        assert!(c1[1] > c1[0], "S1 coeffs {c1:?}");
    }

    #[test]
    fn blf_ranks_extents() {
        // for i in 0..100, j in 0..10: i has the bigger extent -> cost 1.
        let mut b = ScopBuilder::new("blf");
        let a = b.array("A", &[Aff::val(100), Aff::val(10)], 8);
        b.open_loop("i", Aff::val(0), Aff::val(99));
        b.open_loop("j", Aff::val(0), Aff::val(9));
        b.stmt("S0")
            .write(a, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let c = big_loops_first_coeffs(&scop, &scop.statements[0], 64);
        assert_eq!(c, vec![1, 2]);
    }
}
