//! Legality stage: cached Farkas linearization.
//!
//! Eliminating a dependence's Farkas multipliers (Fourier–Motzkin over
//! the dependence polyhedron) is the single most expensive constraint-
//! construction step of the scheduler, and the monolithic driver used to
//! redo it for every live dependence at every dimension. The resulting
//! system, however, only depends on the dependence polyhedron and the
//! ILP variable layout — neither changes across dimensions now that the
//! engine fixes one [`IlpSpace`] per SCoP — so [`FarkasCache`]
//! eliminates each dependence **once** and replays the cached affine
//! form at every later dimension.
//!
//! Entries are keyed by dependence id and constraint kind (validity,
//! proximity, Feautrier). Lookups happen for live dependences and — on
//! the validity side — for dependences carried inside the still-open
//! band; that is fine because an entry depends only on the dependence
//! polyhedron and the fixed variable layout, never on live/retired
//! state. Hit/miss counters feed
//! [`PipelineStats`](crate::pipeline::PipelineStats).

use std::cell::{Cell, OnceCell};

use polytops_deps::Dependence;
use polytops_math::ConstraintSystem;

use crate::costfn::{feautrier_rows, proximity_rows, validity_rows};
use crate::error::ScheduleError;
use crate::space::IlpSpace;

/// Per-SCoP cache of Farkas-eliminated constraint systems.
///
/// The cache is only sound while the ILP variable layout is stable: the
/// engine constructs one [`IlpSpace`] per SCoP (with dependence-variable
/// columns for *all* dependences, live or not) and shares it across
/// every dimension, which is asserted on each replay.
#[derive(Debug)]
pub struct FarkasCache {
    enabled: bool,
    validity: Vec<OnceCell<ConstraintSystem>>,
    proximity: Vec<OnceCell<ConstraintSystem>>,
    feautrier: Vec<OnceCell<ConstraintSystem>>,
    hits: Cell<usize>,
    misses: Cell<usize>,
}

impl FarkasCache {
    /// Creates a cache for `num_deps` dependences. When `enabled` is
    /// `false` every lookup recomputes (the cold path benchmarked
    /// against the cached one); counters are maintained either way.
    pub fn new(num_deps: usize, enabled: bool) -> FarkasCache {
        FarkasCache {
            enabled,
            validity: (0..num_deps).map(|_| OnceCell::new()).collect(),
            proximity: (0..num_deps).map(|_| OnceCell::new()).collect(),
            feautrier: (0..num_deps).map(|_| OnceCell::new()).collect(),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.get()
    }

    /// Number of lookups that ran a fresh Farkas elimination.
    pub fn misses(&self) -> usize {
        self.misses.get()
    }

    /// Appends the validity system `Δ_e ≥ 0` of dependence `e` to `out`.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_validity(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.replay(&self.validity[e], out, || validity_rows(dep, space))
    }

    /// Appends the proximity system `Δ_e ≤ u·N + w` of dependence `e`.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_proximity(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.replay(&self.proximity[e], out, || proximity_rows(dep, space))
    }

    /// Appends the Feautrier system `Δ_e ≥ x_e` of dependence `e` (the
    /// `0 ≤ x_e ≤ 1` box is the caller's, it is layout- not
    /// elimination-work).
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_feautrier(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.replay(&self.feautrier[e], out, || feautrier_rows(dep, e, space))
    }

    fn replay(
        &self,
        slot: &OnceCell<ConstraintSystem>,
        out: &mut ConstraintSystem,
        build: impl FnOnce() -> Result<ConstraintSystem, ScheduleError>,
    ) -> Result<(), ScheduleError> {
        if let Some(sys) = slot.get() {
            debug_assert_eq!(sys.num_vars(), out.num_vars(), "layout drift");
            self.hits.set(self.hits.get() + 1);
            out.extend(sys);
            return Ok(());
        }
        let sys = build()?;
        self.misses.set(self.misses.get() + 1);
        out.extend(&sys);
        if self.enabled {
            let _ = slot.set(sys);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_deps::analyze;
    use polytops_ir::{Aff, ScopBuilder};

    #[test]
    fn second_lookup_hits_and_replays_identical_rows() {
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let cache = FarkasCache::new(deps.len(), true);

        let mut first = ConstraintSystem::new(space.total());
        cache
            .extend_with_validity(0, &deps[0], &space, &mut first)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let mut second = ConstraintSystem::new(space.total());
        cache
            .extend_with_validity(0, &deps[0], &space, &mut second)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let mut b = ScopBuilder::new("chain");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(1), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let cache = FarkasCache::new(deps.len(), false);
        for _ in 0..3 {
            let mut out = ConstraintSystem::new(space.total());
            cache
                .extend_with_validity(0, &deps[0], &space, &mut out)
                .unwrap();
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
    }
}
