//! Legality stage: cached Farkas linearization.
//!
//! Eliminating a dependence's Farkas multipliers (Fourier–Motzkin over
//! the dependence polyhedron) is the single most expensive constraint-
//! construction step of the scheduler, and the monolithic driver used to
//! redo it for every live dependence at every dimension. The resulting
//! system, however, only depends on the dependence polyhedron and the
//! ILP variable layout — neither changes across dimensions now that the
//! engine fixes one [`IlpSpace`] per SCoP — so [`FarkasCache`]
//! eliminates each dependence **once** and replays the cached affine
//! form at every later dimension.
//!
//! Since the per-scenario reconfiguration loop (paper Fig. 1) solves the
//! *same* SCoP many times under different configurations, the cache is
//! also shareable **across runs**: it is `Send + Sync` (entries behind
//! [`OnceLock`], counters atomic), so the scenario engine
//! ([`crate::scenario`]) wraps one cache per (SCoP, variable-layout)
//! group in an [`Arc`] and every scenario of that group replays the same
//! eliminations — including scenarios running concurrently on other
//! worker threads. Entries are keyed by dependence identity (the index
//! assigned by [`polytops_deps::analyze`], which is deterministic for a
//! given SCoP) and constraint kind (validity, proximity, Feautrier).
//!
//! Lookups happen for live dependences and — on the validity side — for
//! dependences carried inside the still-open band; that is fine because
//! an entry depends only on the dependence polyhedron and the fixed
//! variable layout, never on live/retired state. The cache additionally
//! pins the full [`IlpSpace`] of its first lookup and compares every
//! later lookup against it, recomputing (without storing) on mismatch —
//! so a mis-grouped share degrades to the cold path instead of
//! corrupting the ILP, even when two layouts coincide in column count.
//!
//! Two counter sets exist: the cache's own atomic totals (aggregated
//! over every run that ever shared it — the scenario engine reports
//! these as cross-scenario hit rates) and the per-run [`CacheSession`]
//! counters that feed [`PipelineStats`](crate::pipeline::PipelineStats)
//! exactly even when other threads hit the same cache concurrently.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use polytops_deps::Dependence;
use polytops_math::ConstraintSystem;

use crate::costfn::{feautrier_rows, proximity_rows, validity_rows};
use crate::error::ScheduleError;
use crate::space::IlpSpace;

/// Per-SCoP cache of Farkas-eliminated constraint systems, shareable
/// across scheduling runs (and threads) of the same SCoP.
///
/// The cache is only sound while the ILP variable layout is stable: the
/// engine constructs one [`IlpSpace`] per SCoP (with dependence-variable
/// columns for *all* dependences, live or not) and shares it across
/// every dimension. Runs whose configuration changes the layout
/// (`negative_coefficients`, `parametric_shift`, `new_variables`) must
/// use a different cache — the scenario engine groups by exactly that
/// key — and the layout fingerprint pinned by the first lookup makes
/// every later lookup recompute rather than replay an entry built for
/// another layout.
#[derive(Debug)]
pub struct FarkasCache {
    enabled: bool,
    /// The ILP variable layout the stored entries were eliminated
    /// under, pinned by the first lookup. Every later lookup compares
    /// its own layout against this fingerprint — equal column *counts*
    /// with different column *meanings* (e.g. parametric-shift columns
    /// vs user variables) must not replay each other's rows.
    space: OnceLock<IlpSpace>,
    validity: Vec<OnceLock<ConstraintSystem>>,
    proximity: Vec<OnceLock<ConstraintSystem>>,
    feautrier: Vec<OnceLock<ConstraintSystem>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl FarkasCache {
    /// Creates a cache for `num_deps` dependences. When `enabled` is
    /// `false` every lookup recomputes (the cold path benchmarked
    /// against the cached one); counters are maintained either way.
    pub fn new(num_deps: usize, enabled: bool) -> FarkasCache {
        FarkasCache {
            enabled,
            space: OnceLock::new(),
            validity: (0..num_deps).map(|_| OnceLock::new()).collect(),
            proximity: (0..num_deps).map(|_| OnceLock::new()).collect(),
            feautrier: (0..num_deps).map(|_| OnceLock::new()).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Number of dependences the cache was sized for (entry slots per
    /// constraint kind).
    pub fn num_deps(&self) -> usize {
        self.validity.len()
    }

    /// Total lookups answered from the cache, across every run (and
    /// thread) that shared it.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that ran a fresh Farkas elimination, across every
    /// run (and thread) that shared it.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Appends the validity system `Δ_e ≥ 0` of dependence `e` to `out`.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_validity(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.validity_hit(e, dep, space, out).map(|_| ())
    }

    /// Appends the proximity system `Δ_e ≤ u·N + w` of dependence `e`.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_proximity(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.proximity_hit(e, dep, space, out).map(|_| ())
    }

    /// Appends the Feautrier system `Δ_e ≥ x_e` of dependence `e` (the
    /// `0 ≤ x_e ≤ 1` box is the caller's, it is layout- not
    /// elimination-work).
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_feautrier(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.feautrier_hit(e, dep, space, out).map(|_| ())
    }

    fn validity_hit(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<bool, ScheduleError> {
        self.replay(&self.validity[e], space, out, || validity_rows(dep, space))
    }

    fn proximity_hit(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<bool, ScheduleError> {
        self.replay(&self.proximity[e], space, out, || {
            proximity_rows(dep, space)
        })
    }

    fn feautrier_hit(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<bool, ScheduleError> {
        self.replay(&self.feautrier[e], space, out, || {
            feautrier_rows(dep, e, space)
        })
    }

    /// Replays `slot` into `out` when a cached system exists *and* the
    /// requesting run's variable layout equals the one the cache was
    /// pinned to by its first lookup; otherwise builds fresh (storing
    /// the result only when the cache is enabled and the layouts
    /// match — equal column counts with different column meanings must
    /// not replay each other's rows). Returns whether the lookup was a
    /// hit.
    fn replay(
        &self,
        slot: &OnceLock<ConstraintSystem>,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
        build: impl FnOnce() -> Result<ConstraintSystem, ScheduleError>,
    ) -> Result<bool, ScheduleError> {
        let matches = self.space.get_or_init(|| space.clone()) == space;
        if matches {
            if let Some(sys) = slot.get() {
                let _timing = polytops_obs::time("farkas.replay_ns");
                debug_assert_eq!(sys.num_vars(), out.num_vars(), "layout drift");
                self.hits.fetch_add(1, Ordering::Relaxed);
                out.extend(sys);
                return Ok(true);
            }
        }
        // Empty slot, or a mis-grouped share: eliminate fresh, leaving
        // any stored entry (and the pinned layout) alone.
        let sys = {
            let _timing = polytops_obs::time("farkas.eliminate_ns");
            build()?
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        out.extend(&sys);
        if self.enabled && matches {
            let _ = slot.set(sys);
        }
        Ok(false)
    }
}

/// One run's view of a (possibly [`Arc`]-shared) [`FarkasCache`].
///
/// The cache's own counters aggregate over every run that shares it —
/// concurrent scenarios would otherwise pollute each other's
/// [`PipelineStats`](crate::pipeline::PipelineStats). A session wraps
/// the shared cache with thread-local hit/miss counters so each engine
/// run reports exactly the lookups *it* performed, while entries (and
/// the global totals) remain shared.
#[derive(Debug)]
pub struct CacheSession {
    cache: Arc<FarkasCache>,
    hits: Cell<usize>,
    misses: Cell<usize>,
}

impl CacheSession {
    /// Opens a session over a shared cache.
    pub fn new(cache: Arc<FarkasCache>) -> CacheSession {
        CacheSession {
            cache,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The underlying shared cache.
    pub fn cache(&self) -> &Arc<FarkasCache> {
        &self.cache
    }

    /// Lookups this session answered from the cache (including entries
    /// eliminated by *other* sessions sharing the cache — that is the
    /// cross-scenario amortization being measured).
    pub fn hits(&self) -> usize {
        self.hits.get()
    }

    /// Lookups this session had to eliminate fresh.
    pub fn misses(&self) -> usize {
        self.misses.get()
    }

    /// Session-counted [`FarkasCache::extend_with_validity`].
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_validity(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.count(self.cache.validity_hit(e, dep, space, out)?);
        Ok(())
    }

    /// Session-counted [`FarkasCache::extend_with_proximity`].
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_proximity(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.count(self.cache.proximity_hit(e, dep, space, out)?);
        Ok(())
    }

    /// Session-counted [`FarkasCache::extend_with_feautrier`].
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from the elimination.
    pub fn extend_with_feautrier(
        &self,
        e: usize,
        dep: &Dependence,
        space: &IlpSpace,
        out: &mut ConstraintSystem,
    ) -> Result<(), ScheduleError> {
        self.count(self.cache.feautrier_hit(e, dep, space, out)?);
        Ok(())
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.set(self.hits.get() + 1);
        } else {
            self.misses.set(self.misses.get() + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_deps::analyze;
    use polytops_workloads::stencil_chain as chain;

    #[test]
    fn second_lookup_hits_and_replays_identical_rows() {
        let scop = chain();
        let deps = analyze(&scop);
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let cache = FarkasCache::new(deps.len(), true);

        let mut first = ConstraintSystem::new(space.total());
        cache
            .extend_with_validity(0, &deps[0], &space, &mut first)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let mut second = ConstraintSystem::new(space.total());
        cache
            .extend_with_validity(0, &deps[0], &space, &mut second)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(first, second);
    }

    #[test]
    fn disabled_cache_always_recomputes() {
        let scop = chain();
        let deps = analyze(&scop);
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let cache = FarkasCache::new(deps.len(), false);
        for _ in 0..3 {
            let mut out = ConstraintSystem::new(space.total());
            cache
                .extend_with_validity(0, &deps[0], &space, &mut out)
                .unwrap();
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
    }

    #[test]
    fn sessions_count_locally_while_sharing_entries() {
        let scop = chain();
        let deps = analyze(&scop);
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let cache = Arc::new(FarkasCache::new(deps.len(), true));

        let first = CacheSession::new(Arc::clone(&cache));
        let mut out = ConstraintSystem::new(space.total());
        first
            .extend_with_validity(0, &deps[0], &space, &mut out)
            .unwrap();
        assert_eq!((first.hits(), first.misses()), (0, 1));

        // A second session replays the first session's elimination: a
        // hit locally, and the global totals see both lookups.
        let second = CacheSession::new(Arc::clone(&cache));
        let mut out = ConstraintSystem::new(space.total());
        second
            .extend_with_validity(0, &deps[0], &space, &mut out)
            .unwrap();
        assert_eq!((second.hits(), second.misses()), (1, 0));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn layout_mismatch_recomputes_instead_of_replaying() {
        let scop = chain();
        let deps = analyze(&scop);
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let wide = IlpSpace::new(&scop, vec![], deps.len(), true, true);
        assert_ne!(space.total(), wide.total());
        let cache = FarkasCache::new(deps.len(), true);

        let mut out = ConstraintSystem::new(space.total());
        cache
            .extend_with_validity(0, &deps[0], &space, &mut out)
            .unwrap();
        // A lookup under a different layout must not replay the stored
        // entry (its columns would be misaligned) — it recomputes.
        let mut other = ConstraintSystem::new(wide.total());
        cache
            .extend_with_validity(0, &deps[0], &wide, &mut other)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(other.num_vars(), wide.total());
    }

    #[test]
    fn concurrent_sessions_share_one_elimination_soundly() {
        let scop = chain();
        let deps = analyze(&scop);
        let space = IlpSpace::new(&scop, vec![], deps.len(), false, false);
        let cache = Arc::new(FarkasCache::new(deps.len(), true));
        let mut reference = ConstraintSystem::new(space.total());
        cache
            .extend_with_validity(0, &deps[0], &space, &mut reference)
            .unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let session = CacheSession::new(Arc::clone(&cache));
                    let mut out = ConstraintSystem::new(space.total());
                    session
                        .extend_with_validity(0, &deps[0], &space, &mut out)
                        .unwrap();
                    assert_eq!(out, reference.clone());
                    assert_eq!((session.hits(), session.misses()), (1, 0));
                });
            }
        });
        assert_eq!(cache.hits(), 4);
    }
}
