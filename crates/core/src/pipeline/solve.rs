//! Solve stage: the iterative per-dimension driver (paper Algorithm 1).
//!
//! The engine owns the mutable scheduling state (live dependences,
//! committed rows, progression bases, band metadata) and walks one
//! dimension at a time:
//!
//! 1. the [`Strategy`] plans the dimension;
//! 2. [`objectives::assemble`] builds the dimension's ILP over the
//!    engine's **fixed** [`IlpSpace`], replaying cached Farkas systems
//!    from the [`FarkasCache`];
//! 3. [`polytops_math::ilp_lexmin_warm`] solves it, seeded with the
//!    previous solve's optimum whenever that point is still feasible;
//! 4. infeasibility falls back to an SCC cut of the live dependence
//!    graph ([`polytops_deps::sccs_topological`]);
//! 5. after the last dimension, the [`postprocess`] stage applies the
//!    configured tiling/wavefront transformations.
//!
//! The variable layout is fixed per SCoP (dependence-variable columns
//! exist for *all* dependences, pinned to zero while unused) so cached
//! Farkas systems and warm-start points stay valid across dimensions.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use polytops_deps::{analyze, sccs_topological, strongly_satisfies, zero_distance, Dependence};
use polytops_ir::{Schedule, Scop, StmtSchedule};
use polytops_math::{ilp_lexmin_canonical, ilp_lexmin_stats, ilp_lexmin_warm, IlpStats, IntMatrix};

use crate::config::{DirectiveKind, FusionHeuristic, SchedulerConfig};
use crate::error::ScheduleError;
use crate::pipeline::fastpath;
use crate::pipeline::legality::{CacheSession, FarkasCache};
use crate::pipeline::objectives::{self, expand_targets, DimensionContext};
use crate::pipeline::postprocess;
use crate::space::IlpSpace;
use crate::strategy::{DimSolution, DimensionPlan, Reaction, Strategy, StrategyState};

/// Hard cap on strategy-driven recomputations of one dimension.
const MAX_RECOMPUTE: usize = 3;

/// A cross-run store of per-dimension ILP solution points, shared by
/// runs scheduling the same SCoP under the same variable layout.
///
/// The scenario engine hands one store to every scenario of a
/// (SCoP, ILP layout) group (see
/// [`ScenarioSet::share_warm_starts`](crate::scenario::ScenarioSet::share_warm_starts)):
/// the first run to solve dimension `d` publishes its optimum, and
/// every later (or concurrent) run seeds its own dimension-`d` solve
/// from that point. Donated seeds only ever *accelerate* a solve —
/// consumers switch to [`ilp_lexmin_canonical`], whose canonical
/// tie-break makes the answer independent of the seed, so sharing
/// cannot change any schedule (bit-determinism at any thread count
/// survives). A seed that is infeasible for the consumer's system —
/// sibling configurations may constrain the space differently — is
/// silently ignored by the solver.
#[derive(Debug, Default)]
pub struct SeedStore {
    /// Dimension index → first published solution point. First writer
    /// wins; under concurrency the *winner* may vary, but canonical
    /// solves make every choice equivalent.
    points: Mutex<BTreeMap<usize, Vec<i64>>>,
}

impl SeedStore {
    /// Creates an empty store.
    pub fn new() -> SeedStore {
        SeedStore::default()
    }

    /// The published seed for dimension `dim`, if any run got there.
    pub fn seed_for(&self, dim: usize) -> Option<Vec<i64>> {
        self.points
            .lock()
            .expect("seed store lock")
            .get(&dim)
            .cloned()
    }

    /// Publishes a solved point for dimension `dim` (first writer wins).
    pub fn publish(&self, dim: usize, point: &[i64]) {
        self.points
            .lock()
            .expect("seed store lock")
            .entry(dim)
            .or_insert_with(|| point.to_vec());
    }
}

/// Pipeline feature toggles, mainly for benchmarking the staged pipeline
/// against the cold path.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Replay cached Farkas eliminations across dimensions.
    pub farkas_cache: bool,
    /// Seed each ILP solve with the previous optimum (MIP start).
    pub warm_start: bool,
    /// Cross-run warm-start sharing: when set, every ILP solve is seeded
    /// from (and publishes to) this store's per-dimension points and
    /// runs in canonical-optimum mode ([`ilp_lexmin_canonical`]), which
    /// keeps results independent of whichever sibling donated the seed.
    /// `None` (the default) keeps warm starts private to the run.
    pub shared_seeds: Option<Arc<SeedStore>>,
    /// Observability context: when set, the run binds this link on its
    /// executing thread and records pipeline/dimension/solver spans
    /// under it. `None` (the default) makes every span call inert —
    /// tracing can never perturb a schedule, only watch it.
    pub trace: Option<polytops_obs::SpanLink>,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            farkas_cache: true,
            warm_start: true,
            shared_seeds: None,
            trace: None,
        }
    }
}

/// Counters describing one scheduling run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Farkas eliminations answered from the cache.
    pub farkas_hits: usize,
    /// Farkas eliminations computed fresh.
    pub farkas_misses: usize,
    /// Scheduling dimensions emitted (including constant levels).
    pub dimensions: usize,
    /// ILP solves seeded from a sibling run's published point (only
    /// nonzero when [`EngineOptions::shared_seeds`] is set).
    pub shared_seed_hits: usize,
    /// Dimensions scheduled by the heuristic fast path (no ILP solve).
    pub fast_path_dims: usize,
    /// Dimensions where the fast path was attempted but could not
    /// produce a legal proposal, falling back to the ILP cascade.
    pub fast_path_fallbacks: usize,
    /// Aggregated ILP solver effort.
    pub ilp: IlpStats,
}

impl PipelineStats {
    /// Fraction of Farkas lookups answered from the cache (0 when no
    /// lookup happened).
    pub fn farkas_hit_rate(&self) -> f64 {
        let total = self.farkas_hits + self.farkas_misses;
        if total == 0 {
            0.0
        } else {
            self.farkas_hits as f64 / total as f64
        }
    }

    /// Lexmin stages whose root relaxation vertex was fractional, so the
    /// warm LP path could not finish and branch and bound ran
    /// ([`IlpStats::fractional_stages`]). Recorded so the dual-simplex
    /// re-optimization follow-up (ROADMAP: `jacobi_1d/pluto` is the
    /// weakest warm-start entry precisely because its u/w proximity
    /// stages go fractional) has per-run data to target.
    pub fn fractional_stages(&self) -> usize {
        self.ilp.fractional_stages
    }

    /// Dual-simplex pivots spent re-optimizing pinned lexicographic
    /// stages ([`IlpStats::dual_pivots`]) — the cheap replacement for
    /// the artificial-variable mini phase-1 the solver used to run.
    pub fn dual_pivots(&self) -> usize {
        self.ilp.dual_pivots
    }

    /// Artificial-variable phase-1 fallbacks the dual simplex could not
    /// avoid ([`IlpStats::phase1_passes`]); zero on every reference
    /// kernel.
    pub fn phase1_passes(&self) -> usize {
        self.ilp.phase1_passes
    }

    /// Folds this run's counters into a recorder's `solver.*` counters
    /// — the single accumulation path shared by the daemon's `stats`
    /// op, the tuner and the benches (replacing the per-layer counter
    /// structs that used to mirror these fields).
    pub fn accumulate_into(&self, recorder: &polytops_obs::Recorder) {
        recorder
            .counter("solver.dual_pivots")
            .add(self.dual_pivots() as u64);
        recorder
            .counter("solver.phase1_passes")
            .add(self.phase1_passes() as u64);
        recorder
            .counter("solver.shared_seed_hits")
            .add(self.shared_seed_hits as u64);
        recorder
            .counter("solver.fast_path_dims")
            .add(self.fast_path_dims as u64);
        recorder
            .counter("solver.fast_path_fallbacks")
            .add(self.fast_path_fallbacks as u64);
        recorder
            .counter("solver.dimensions")
            .add(self.dimensions as u64);
        recorder
            .counter("solver.farkas_hits")
            .add(self.farkas_hits as u64);
        recorder
            .counter("solver.farkas_misses")
            .add(self.farkas_misses as u64);
    }
}

/// Runs the full staged pipeline for one SCoP and reports statistics.
///
/// # Errors
///
/// Same contract as [`crate::schedule`].
pub fn run(
    scop: &Scop,
    config: &SchedulerConfig,
    strategy: &mut dyn Strategy,
    options: &EngineOptions,
) -> Result<(Schedule, PipelineStats), ScheduleError> {
    Engine::new(scop, config, options.clone(), None, None).run(strategy)
}

/// [`run`] with externally owned dependence analysis and
/// [`FarkasCache`] — the entry point of the scenario engine. Every run
/// sharing `cache` replays (instead of re-eliminating) the Farkas
/// systems computed by any earlier — or concurrent — run over the same
/// SCoP and variable layout, and the exact dependence analysis (itself
/// a stack of integer feasibility tests, 6–28% of a run on the
/// reference kernels) is done once per SCoP instead of once per
/// scenario.
///
/// `deps` must be [`analyze`]\ `(scop)` — cache entries are keyed by
/// position in that vector — and the cache must have been created for
/// its length (`FarkasCache::new(deps.len(), ..)`); a mis-sized cache
/// is ignored and a private one used instead, so sharing can never
/// corrupt a run. Reported [`PipelineStats`] count only this run's
/// lookups.
///
/// # Errors
///
/// Same contract as [`crate::schedule`].
pub fn run_shared(
    scop: &Scop,
    config: &SchedulerConfig,
    strategy: &mut dyn Strategy,
    options: &EngineOptions,
    deps: Arc<Vec<Dependence>>,
    cache: Arc<FarkasCache>,
) -> Result<(Schedule, PipelineStats), ScheduleError> {
    Engine::new(scop, config, options.clone(), Some(deps), Some(cache)).run(strategy)
}

/// Mutable scheduling state threaded through the iterative algorithm.
struct Engine<'a> {
    scop: &'a Scop,
    config: &'a SchedulerConfig,
    options: EngineOptions,
    /// Fixed ILP variable layout shared by every dimension.
    space: IlpSpace,
    /// This run's session over the (possibly scenario-shared) Farkas
    /// replay cache, keyed by dependence id.
    cache: CacheSession,
    /// The SCoP's dependences, possibly shared across scenarios (the
    /// analysis is deterministic, so a shared vector equals what this
    /// run would compute).
    deps: Arc<Vec<Dependence>>,
    /// `live[e]`: dependence `e` has not been strongly satisfied yet.
    live: Vec<bool>,
    /// Band id of the dimension that carried dependence `e`, once
    /// carried. A dependence carried *inside* the currently open band
    /// keeps contributing legality constraints (`Δ ≥ 0`) until the band
    /// closes, which is what makes emitted bands permutable (tilable).
    carried_band: Vec<Option<usize>>,
    /// `rows[stmt][dim]`: committed schedule rows `[T_it, T_par, T_cst]`.
    rows: Vec<Vec<Vec<i64>>>,
    /// Per-statement basis of linearly independent iterator rows.
    basis: Vec<IntMatrix>,
    /// Per-dimension band id and parallelism flag.
    bands: Vec<usize>,
    parallel: Vec<bool>,
    band_id: usize,
}

impl<'a> Engine<'a> {
    fn new(
        scop: &'a Scop,
        config: &'a SchedulerConfig,
        options: EngineOptions,
        deps: Option<Arc<Vec<Dependence>>>,
        shared: Option<Arc<FarkasCache>>,
    ) -> Engine<'a> {
        let nstmts = scop.statements.len();
        let deps = deps
            .filter(|d| d.iter().all(|d| d.src.0 < nstmts && d.dst.0 < nstmts))
            .unwrap_or_else(|| Arc::new(analyze(scop)));
        // One layout for the whole SCoP: dependence-satisfaction columns
        // exist for every dependence so cached Farkas systems replay
        // verbatim at any dimension (unused columns are pinned to zero).
        let space = IlpSpace::new(
            scop,
            config.new_variables.clone(),
            deps.len(),
            config.negative_coefficients,
            config.parametric_shift,
        );
        let cache = shared
            .filter(|c| c.num_deps() == deps.len())
            .unwrap_or_else(|| Arc::new(FarkasCache::new(deps.len(), options.farkas_cache)));
        Engine {
            scop,
            config,
            options,
            space,
            cache: CacheSession::new(cache),
            live: vec![true; deps.len()],
            carried_band: vec![None; deps.len()],
            deps,
            rows: vec![Vec::new(); nstmts],
            basis: scop
                .statements
                .iter()
                .map(|s| IntMatrix::zeros(0, s.depth()))
                .collect(),
            bands: Vec::new(),
            parallel: Vec::new(),
            band_id: 0,
        }
    }

    fn ranks(&self) -> Vec<usize> {
        self.basis.iter().map(IntMatrix::rows).collect()
    }

    fn complete(&self) -> bool {
        self.scop
            .statements
            .iter()
            .zip(&self.basis)
            .all(|(s, b)| b.rows() == s.depth())
    }

    fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn live_deps(&self) -> Vec<(usize, &Dependence)> {
        self.deps
            .iter()
            .enumerate()
            .zip(&self.live)
            .filter_map(|((e, d), &l)| l.then_some((e, d)))
            .collect()
    }

    /// Live dependences plus those carried inside the currently open
    /// band — the set whose legality the next dimension must preserve.
    fn legality_deps(&self) -> Vec<(usize, &Dependence)> {
        self.deps
            .iter()
            .enumerate()
            .filter(|&(e, _)| self.live[e] || self.carried_band[e] == Some(self.band_id))
            .collect()
    }

    /// Whether some dependence was carried inside the currently open band.
    fn has_in_band_carried(&self) -> bool {
        self.carried_band.contains(&Some(self.band_id))
    }

    fn run(
        mut self,
        strategy: &mut dyn Strategy,
    ) -> Result<(Schedule, PipelineStats), ScheduleError> {
        // Bind the caller's span context for the duration of the run:
        // every scoped span below (and in the stages this thread calls
        // into — objectives, simplex, postprocess) nests under it.
        let _ctx = self.options.trace.clone().map(|link| link.bind());
        let _pipeline = polytops_obs::span("pipeline");
        let max_depth = self.scop.max_depth();
        let nstmts = self.scop.statements.len();
        // Every dimension either grows a statement's rank or is a
        // distribution level; this budget is generous for both.
        let budget = 2 * (max_depth + nstmts) + 8;
        let mut stats = PipelineStats::default();
        let mut warm: Option<Vec<i64>> = None;
        let mut dim = 0usize;
        while !self.complete() {
            if dim >= budget {
                return Err(ScheduleError::DimensionBudgetExceeded);
            }
            let _dim_span = polytops_obs::span_arg("dimension", dim as i64);
            let ranks = self.ranks();
            let mut plan = strategy.plan(&StrategyState {
                dimension: dim,
                band: self.band_id,
                rows_so_far: &self.rows,
                parallel_so_far: &self.parallel,
                live_deps: self.live_count(),
                ranks: &ranks,
                recompute_count: 0,
            });
            let mut recompute = 0usize;
            loop {
                let (solution, band_break) =
                    self.solve_dimension(&plan, dim, &mut stats, &mut warm)?;
                let ranks = self.ranks();
                let state = StrategyState {
                    dimension: dim,
                    band: self.band_id,
                    rows_so_far: &self.rows,
                    parallel_so_far: &self.parallel,
                    live_deps: self.live_count(),
                    ranks: &ranks,
                    recompute_count: recompute,
                };
                match strategy.react(&state, &solution) {
                    Reaction::Recompute(next) if recompute < MAX_RECOMPUTE => {
                        plan = next;
                        recompute += 1;
                    }
                    _ => {
                        self.commit(&solution, band_break);
                        break;
                    }
                }
            }
            dim += 1;
        }
        self.finalize(stats)
    }

    // -----------------------------------------------------------------
    // One dimension.
    // -----------------------------------------------------------------

    /// Solves one dimension. The second component of the result is the
    /// *band break* flag: the dimension was only feasible after closing
    /// the current permutable band (dropping the legality constraints of
    /// dependences carried inside it).
    fn solve_dimension(
        &self,
        plan: &DimensionPlan,
        dim: usize,
        stats: &mut PipelineStats,
        warm: &mut Option<Vec<i64>>,
    ) -> Result<(DimSolution, bool), ScheduleError> {
        if let Some(groups) = &plan.distribute {
            return Ok((self.distribute(groups, true)?, false));
        }
        // Heuristic fast path: propose per-statement permutation/shift
        // rows directly from the dependence structure and validate them
        // with the exact legality check — no lexmin solve. Only plain
        // dimensions qualify: anything that shapes the ILP beyond
        // legality (custom constraints, user variables, directives)
        // needs the real cascade to be honored.
        if self.config.heuristic_fast_path
            && plan.extra_constraints.is_empty()
            && self.config.new_variables.is_empty()
            && self.config.directives.is_empty()
        {
            let legality = self.legality_deps();
            let live = self.live_deps();
            let proposed = {
                let _span = polytops_obs::span("fast_path");
                fastpath::propose(
                    self.scop,
                    &self.basis,
                    &legality,
                    &live,
                    self.config.constant_bound,
                )
            };
            if let Some(solution) = proposed {
                stats.fast_path_dims += 1;
                return Ok((solution, false));
            }
            stats.fast_path_fallbacks += 1;
        }
        if let Some(solution) = self.solve_ilp(plan, dim, true, stats, warm)? {
            return Ok((solution, false));
        }
        // The band's permutability constraints may be what blocks the
        // dimension: close the band and retry with live legality only.
        if self.has_in_band_carried() {
            if let Some(solution) = self.solve_ilp(plan, dim, false, stats, warm)? {
                return Ok((solution, true));
            }
        }
        // Infeasible ILP. Custom constraints are the only *user* input
        // that can legitimately empty the space (paper §III-D) — but
        // blame them only if the dimension is solvable without them.
        if !plan.extra_constraints.is_empty() {
            let unconstrained = DimensionPlan {
                distribute: None,
                cost_functions: plan.cost_functions.clone(),
                extra_constraints: Vec::new(),
            };
            if self
                .solve_ilp(&unconstrained, dim, false, stats, warm)?
                .is_some()
            {
                return Err(ScheduleError::InfeasibleCustomConstraints { dimension: dim });
            }
        }
        // Otherwise fall back to cutting the live dependence graph
        // (Algorithm 1, UnfuseSCCs).
        let groups = self.scc_groups(dim)?;
        Ok((self.distribute(&groups, false)?, false))
    }

    /// Builds and solves the ILP of one dimension. `Ok(None)` means the
    /// space is infeasible (caller decides whether to cut or fail).
    fn solve_ilp(
        &self,
        plan: &DimensionPlan,
        dim: usize,
        in_band_legality: bool,
        stats: &mut PipelineStats,
        warm: &mut Option<Vec<i64>>,
    ) -> Result<Option<DimSolution>, ScheduleError> {
        let live = self.live_deps();
        let legality = if in_band_legality {
            self.legality_deps()
        } else {
            live.clone()
        };
        let ctx = DimensionContext {
            scop: self.scop,
            config: self.config,
            space: &self.space,
            cache: &self.cache,
            legality: &legality,
            live: &live,
            basis: &self.basis,
        };
        let (sys, objectives) = {
            let _span = polytops_obs::span("objectives");
            objectives::assemble(&ctx, plan)?
        };

        let mut ilp_stats = IlpStats::default();
        let point = {
            let _span = polytops_obs::span("ilp_solve");
            if let Some(store) = &self.options.shared_seeds {
                // Prefer a sibling run's same-dimension optimum over
                // this run's previous-dimension point; the canonical
                // tie-break keeps the answer identical whichever seed
                // (or none) is used, so sharing never perturbs a
                // schedule.
                let donated = store.seed_for(dim);
                if donated.is_some() {
                    stats.shared_seed_hits += 1;
                }
                let hint = donated.as_deref().or(warm.as_deref());
                ilp_lexmin_canonical(&sys, &objectives, hint, &mut ilp_stats)
            } else if self.options.warm_start {
                ilp_lexmin_warm(&sys, &objectives, warm.as_deref(), &mut ilp_stats)
            } else {
                ilp_lexmin_stats(&sys, &objectives, &mut ilp_stats)
            }
        };
        stats.ilp.absorb(&ilp_stats);
        let Some(point) = point else {
            return Ok(None);
        };
        if let Some(store) = &self.options.shared_seeds {
            store.publish(dim, &point);
        }

        let rows: Vec<Vec<i64>> = (0..self.scop.statements.len())
            .map(|s| self.space.extract_row(&point, s))
            .collect();
        let constant = self
            .scop
            .statements
            .iter()
            .enumerate()
            .all(|(s, stmt)| rows[s][..stmt.depth()].iter().all(|&c| c == 0));
        // Parallel iff no live dependence has a nonzero distance on this
        // dimension (vacuously true without live dependences).
        let parallel = live
            .iter()
            .all(|(_, dep)| zero_distance(dep, &rows[dep.src.0], &rows[dep.dst.0]));
        *warm = Some(point);
        Ok(Some(DimSolution {
            rows,
            parallel,
            constant,
        }))
    }

    /// Emits a constant (splitting) dimension placing each fusion group
    /// at its index. `user` marks user-driven distribution, which is the
    /// only kind allowed to fail legality.
    fn distribute(&self, groups: &[Vec<usize>], user: bool) -> Result<DimSolution, ScheduleError> {
        let nstmts = self.scop.statements.len();
        let mut group_of: Vec<Option<usize>> = vec![None; nstmts];
        let mut next = 0usize;
        if groups.is_empty() {
            // Total distribution: every statement alone, textual order.
            for (s, g) in group_of.iter_mut().enumerate() {
                *g = Some(s);
            }
        } else {
            for (gi, group) in groups.iter().enumerate() {
                for &s in group {
                    if s >= nstmts {
                        return Err(ScheduleError::IllegalFusion {
                            detail: format!("statement {s} out of range in fusion group"),
                        });
                    }
                    if group_of[s].is_some() {
                        return Err(ScheduleError::IllegalFusion {
                            detail: format!("statement {s} listed in two fusion groups"),
                        });
                    }
                    group_of[s] = Some(gi);
                }
                next = gi + 1;
            }
            // Unlisted statements trail in textual order, one group each.
            for g in group_of.iter_mut() {
                if g.is_none() {
                    *g = Some(next);
                    next += 1;
                }
            }
        }
        let values: Vec<i64> = group_of
            .iter()
            .map(|g| g.expect("every statement grouped") as i64)
            .collect();
        let rows = self.constant_rows(&values);
        // Constant rows must still respect every live dependence.
        for (_, dep) in self.live_deps() {
            let src = values[dep.src.0];
            let dst = values[dep.dst.0];
            if dst < src {
                if user {
                    return Err(ScheduleError::IllegalFusion {
                        detail: format!(
                            "distribution places S{} (group {dst}) before its \
                             dependence source S{} (group {src})",
                            dep.dst.0, dep.src.0
                        ),
                    });
                }
                // Algorithm-driven cuts come from a topological SCC
                // order, so this cannot happen.
                unreachable!("SCC cut violated a dependence");
            }
        }
        Ok(DimSolution {
            rows,
            parallel: false,
            constant: true,
        })
    }

    /// Groups statements by live-dependence SCCs for an
    /// infeasibility-driven cut.
    ///
    /// The fusion heuristic only *merges* adjacent SCCs when doing so
    /// keeps a real cut: if heuristic merging collapses everything into
    /// one group (SmartFuse on equal-depth SCCs, or MaxFuse), the cut is
    /// mandatory — the ILP was infeasible — so we degrade to one group
    /// per SCC rather than fail.
    fn scc_groups(&self, dim: usize) -> Result<Vec<Vec<usize>>, ScheduleError> {
        let nstmts = self.scop.statements.len();
        let sccs = sccs_topological(
            nstmts,
            self.deps
                .iter()
                .zip(&self.live)
                .filter(|(_, &l)| l)
                .map(|(d, _)| (d.src.0, d.dst.0)),
        );
        if sccs.len() <= 1 {
            // Nothing to cut: the dimension is genuinely unschedulable.
            return Err(ScheduleError::UnschedulableDimension { dimension: dim });
        }
        let merged: Vec<Vec<usize>> = match self.config.fusion_heuristic {
            FusionHeuristic::NoFuse | FusionHeuristic::MaxFuse => sccs.clone(),
            FusionHeuristic::SmartFuse => {
                // Merge consecutive SCCs of equal dimensionality
                // (Pluto's smartfuse keeps same-depth nests together).
                let mut out: Vec<Vec<usize>> = Vec::new();
                let mut last_dim: Option<usize> = None;
                for scc in sccs.iter().cloned() {
                    let d = scc
                        .iter()
                        .map(|&s| self.scop.statements[s].depth())
                        .max()
                        .unwrap_or(0);
                    match (last_dim, out.last_mut()) {
                        (Some(ld), Some(cur)) if ld == d => cur.extend(scc),
                        _ => out.push(scc),
                    }
                    last_dim = Some(d);
                }
                out
            }
        };
        Ok(if merged.len() > 1 { merged } else { sccs })
    }

    // -----------------------------------------------------------------
    // Committing and finishing.
    // -----------------------------------------------------------------

    fn commit(&mut self, solution: &DimSolution, band_break: bool) {
        if band_break && !solution.constant {
            // The dimension was solved with the previous band closed.
            self.band_id += 1;
        }
        for (s, stmt) in self.scop.statements.iter().enumerate() {
            let row = solution.rows[s].clone();
            if !solution.constant {
                let iter_part = row[..stmt.depth()].to_vec();
                let mut candidate = self.basis[s].clone();
                candidate.push_row(iter_part);
                if candidate.rank() == candidate.rows() {
                    self.basis[s] = candidate;
                }
            }
            self.rows[s].push(row);
        }
        // Retire strongly satisfied dependences, remembering the band
        // that carried them (constant dimensions get their own band id).
        let dim_band = if solution.constant {
            self.band_id + 1
        } else {
            self.band_id
        };
        for (e, dep) in self.deps.iter().enumerate() {
            if self.live[e]
                && strongly_satisfies(dep, &solution.rows[dep.src.0], &solution.rows[dep.dst.0])
            {
                self.live[e] = false;
                self.carried_band[e] = Some(dim_band);
            }
        }
        // Bands: constant dimensions split permutable bands.
        let parallel = solution.parallel && !self.sequential_override(solution);
        if solution.constant {
            self.bands.push(dim_band);
            self.band_id += 2;
            self.parallel.push(false);
        } else {
            self.bands.push(dim_band);
            self.parallel.push(parallel);
        }
    }

    /// Whether a `sequential` directive forbids marking this dimension
    /// parallel (the row schedules the directive's iterator).
    fn sequential_override(&self, solution: &DimSolution) -> bool {
        let nstmts = self.scop.statements.len();
        self.config
            .directives
            .iter()
            .filter(|d| d.kind == DirectiveKind::Sequential)
            .any(|d| {
                expand_targets(d.stmts.as_ref(), nstmts).iter().any(|&s| {
                    let stmt = &self.scop.statements[s];
                    d.iterator < stmt.depth() && solution.rows[s][d.iterator] != 0
                })
            })
    }

    /// One constant (splitting) row per statement, placing statement `s`
    /// at position `values[s]`, over its `(iters, params, 1)` columns.
    fn constant_rows(&self, values: &[i64]) -> Vec<Vec<i64>> {
        let np = self.scop.nparams();
        self.scop
            .statements
            .iter()
            .zip(values)
            .map(|(stmt, &v)| {
                let mut row = vec![0i64; stmt.depth() + np + 1];
                row[stmt.depth() + np] = v;
                row
            })
            .collect()
    }

    /// Orders any remaining live dependences with constant rows (the β
    /// dimension of the 2d+1 form), assembles the final [`Schedule`] and
    /// runs the post-processing stage on it.
    fn finalize(
        mut self,
        mut stats: PipelineStats,
    ) -> Result<(Schedule, PipelineStats), ScheduleError> {
        let nstmts = self.scop.statements.len();
        let mut rounds = 0usize;
        while self
            .deps
            .iter()
            .zip(&self.live)
            .any(|(d, &l)| l && d.src != d.dst)
        {
            if rounds > nstmts {
                return Err(ScheduleError::DimensionBudgetExceeded);
            }
            rounds += 1;
            let order = sccs_topological(
                nstmts,
                self.deps
                    .iter()
                    .zip(&self.live)
                    .filter(|(d, &l)| l && d.src != d.dst)
                    .map(|(d, _)| (d.src.0, d.dst.0)),
            );
            let mut values = vec![0i64; nstmts];
            for (gi, scc) in order.iter().enumerate() {
                for &s in scc {
                    values[s] = gi as i64;
                }
            }
            let rows = self.constant_rows(&values);
            self.commit(
                &DimSolution {
                    rows,
                    parallel: false,
                    constant: true,
                },
                false,
            );
        }
        // If the SCoP has no statements or no dimensions at all, emit a
        // single constant dimension so downstream consumers always see a
        // total order.
        if nstmts > 0 && self.rows[0].is_empty() {
            let values: Vec<i64> = self.scop.statements.iter().map(|s| s.beta[0]).collect();
            let rows = self.constant_rows(&values);
            self.commit(
                &DimSolution {
                    rows,
                    parallel: false,
                    constant: true,
                },
                false,
            );
        }

        let np = self.scop.nparams();
        let mut per_stmt = Vec::with_capacity(nstmts);
        for (s, stmt) in self.scop.statements.iter().enumerate() {
            let mut ss = StmtSchedule::new(stmt.depth(), np);
            for row in &self.rows[s] {
                ss.push_row(row.clone());
            }
            per_stmt.push(ss);
        }
        let mut sched = Schedule::from_parts(per_stmt, self.bands.clone(), self.parallel.clone());

        // Post-processing stage: lowers the schedule to its tree form
        // and applies tiling, wavefront skewing, intra-tile
        // vectorization and vectorize marks as tree-to-tree transforms,
        // each verified against the dependence oracle before being
        // committed.
        {
            let _span = polytops_obs::span("postprocess");
            postprocess::apply(&self.deps, &mut sched, self.config);
        }

        stats.dimensions = sched.dims();
        stats.farkas_hits = self.cache.hits();
        stats.farkas_misses = self.cache.misses();
        Ok((sched, stats))
    }
}
