//! The staged scheduling pipeline.
//!
//! The monolithic per-dimension driver is split into four explicit
//! stages, mirroring how Tiramisu and the performance-vocabulary line of
//! work separate schedule *search* from schedule *application*:
//!
//! ```text
//! legality ──► objectives ──► solve ──► postprocess ──► (codegen)
//! ```
//!
//! * [`legality`] — Farkas linearization of `Δ_e ≥ 0`, eliminated once
//!   per dependence and replayed from a [`FarkasCache`] at every
//!   dimension — and, because the cache is `Send + Sync` and
//!   `Arc`-shareable, at every *scenario* re-scheduling the same SCoP
//!   (see [`crate::scenario`]);
//! * [`objectives`] — assembly of one dimension's ILP (progression,
//!   bounds, layered cost functions, custom constraints, directives,
//!   tie-break) over the engine's fixed [`IlpSpace`](crate::IlpSpace);
//! * [`solve`] — the iterative driver: warm-started lexicographic ILP
//!   solves with SCC-cut fallback, producing rows plus band metadata;
//!   with [`SchedulerConfig::heuristic_fast_path`](crate::SchedulerConfig)
//!   set, a fusion + dimension-matching heuristic (`fastpath`) proposes
//!   each dimension from the dependence structure first and only falls
//!   back to the ILP when validation fails;
//! * [`postprocess`] — the solver's schedule lowered to an explicit
//!   schedule tree, then tiling, wavefront skewing and intra-tile
//!   vectorization applied as certified tree-to-tree rewrites.
//!
//! Code generation (the tree-walking backend) lives in
//! `polytops_codegen`, downstream of this module.

pub(crate) mod fastpath;
pub mod legality;
pub mod objectives;
pub mod postprocess;
pub mod solve;

pub use legality::{CacheSession, FarkasCache};
pub use solve::{EngineOptions, PipelineStats, SeedStore};
