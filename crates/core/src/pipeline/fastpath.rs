//! Heuristic fast-path scheduler: fusion + dimension matching without
//! an ILP solve.
//!
//! Large SCoPs pay the ILP cascade dearly: the joint constraint system
//! couples every statement's coefficients, so its size — and the exact
//! rational simplex underneath — grows with the statement count even
//! when the schedule the cascade eventually finds is a plain
//! permutation. Acharya & Bondhugula's observation (*An Approach for
//! Finding Permutations Quickly*) is that for most programs that
//! permutation can be *proposed* directly from the dependence structure
//! and merely *validated*, at a cost of one small feasibility test per
//! dependence instead of one large lexmin solve per dimension.
//!
//! This module implements that proposal step for one dimension:
//!
//! 1. **Dimension matching** — each statement nominates its first
//!    original iterator that is linearly independent of its committed
//!    progression basis (a one-hot row), keeping every statement fused;
//!    statements whose schedule is already complete contribute a zero
//!    row.
//! 2. **Shift repair** — if a cross-statement dependence has a negative
//!    minimal distance under the proposal, the destination row's
//!    constant is raised by exactly that deficit (a relaxation loop,
//!    bounded by the configured constant bound, since raising one
//!    statement can re-expose a dependence upstream).
//! 3. **Validation** — every legality dependence (live ones plus those
//!    carried inside the open band, so emitted bands stay permutable)
//!    must pass [`respects`], the same exact `Δ ≥ 0` dependence-
//!    polyhedron check the Farkas stage linearizes.
//!
//! Any failure returns `None` and the caller falls back to the full ILP
//! cascade *for this dimension only* — later dimensions try the fast
//! path again. Fast-path schedules flow through the same commit,
//! post-processing and oracle-certification machinery as ILP schedules.

use polytops_deps::{respects, zero_distance, Dependence};
use polytops_ir::Scop;
use polytops_math::{ilp_minimize, IlpOutcome, IntMatrix};

use crate::strategy::DimSolution;

/// Proposes one schedule dimension from the dependence structure, or
/// `None` when no legal permutation/shift proposal exists (the caller
/// then runs the ILP cascade for this dimension).
pub(crate) fn propose(
    scop: &Scop,
    basis: &[IntMatrix],
    legality: &[(usize, &Dependence)],
    live: &[(usize, &Dependence)],
    shift_bound: i64,
) -> Option<DimSolution> {
    let np = scop.nparams();
    let nstmts = scop.statements.len();

    // 1. Dimension matching: one-hot rows on each statement's first
    //    basis-independent original iterator.
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(nstmts);
    let mut progressed = false;
    for (s, stmt) in scop.statements.iter().enumerate() {
        let depth = stmt.depth();
        let mut row = vec![0i64; depth + np + 1];
        if let Some(j) = (0..depth).find(|&j| {
            let mut onehot = vec![0i64; depth];
            onehot[j] = 1;
            let mut candidate = basis[s].clone();
            candidate.push_row(onehot);
            candidate.rank() == candidate.rows()
        }) {
            row[j] = 1;
            progressed = true;
        }
        rows.push(row);
    }
    if !progressed {
        return None;
    }

    // 2. Shift repair: raise destination constants until every
    //    cross-statement dependence has non-negative minimal distance.
    //    Each repair can lower the distance of dependences *out of* the
    //    raised statement, so relax in rounds (Bellman–Ford style); a
    //    SCoP needing more than `nstmts + 1` rounds has a negative
    //    cycle no constant shift can fix.
    for _ in 0..=nstmts {
        let mut changed = false;
        for &(_, dep) in legality {
            if respects(dep, &rows[dep.src.0], &rows[dep.dst.0]) {
                continue;
            }
            let deficit = match min_distance(dep, &rows[dep.src.0], &rows[dep.dst.0]) {
                Some(m) if m < 0 => -m,
                Some(_) => continue,
                None => return None, // unbounded below: unfixable
            };
            if dep.src == dep.dst {
                // Shifting a self-dependence moves both sides equally.
                return None;
            }
            let dst = &mut rows[dep.dst.0];
            let cpos = dst.len() - 1;
            dst[cpos] += deficit;
            if dst[cpos] > shift_bound {
                return None;
            }
            changed = true;
        }
        if !changed {
            break;
        }
    }

    // 3. Validation: the exact legality check on every dependence the
    //    dimension must preserve.
    if legality
        .iter()
        .any(|&(_, dep)| !respects(dep, &rows[dep.src.0], &rows[dep.dst.0]))
    {
        return None;
    }

    let parallel = live
        .iter()
        .all(|(_, dep)| zero_distance(dep, &rows[dep.src.0], &rows[dep.dst.0]));
    Some(DimSolution {
        rows,
        parallel,
        constant: false,
    })
}

/// The minimal schedule distance `Δ` of a dependence under candidate
/// rows, or `None` when `Δ` is unbounded below (or the polyhedron is
/// somehow empty).
fn min_distance(dep: &Dependence, src_row: &[i64], dst_row: &[i64]) -> Option<i64> {
    let delta = polytops_deps::distance_row(dep, src_row, dst_row);
    let nv = dep.poly.num_vars();
    match ilp_minimize(&dep.poly, &delta[..nv]) {
        IlpOutcome::Optimal { value, .. } => Some(value + delta[nv]),
        _ => None,
    }
}
