//! Objectives stage: assembling one scheduling dimension's ILP.
//!
//! [`assemble`] turns a [`DimensionPlan`] into a concrete
//! `(ConstraintSystem, lexicographic objectives)` pair over the engine's
//! fixed [`IlpSpace`]:
//!
//! 1. **legality** — `Δ_e ≥ 0` per live dependence, replayed from the
//!    [`FarkasCache`](crate::pipeline::FarkasCache) through the run's
//!    [`CacheSession`];
//! 2. **progression** — the next row of every incomplete statement must
//!    leave the span of its committed rows (Eq. 3);
//! 3. **box bounds** — keep branch-and-bound finite and solutions small;
//! 4. **cost functions** — layered constraint rows and objectives in
//!    priority order ([`build_costs`]);
//! 5. **custom constraints** — the mini-language of §III-A2;
//! 6. **directives** — soft constraints kept only while feasible;
//! 7. **tie-break** — a coefficient-sum objective keeping rows primitive.

use polytops_deps::Dependence;
use polytops_ir::Scop;
use polytops_math::{ilp_feasible, orthogonal_complement, ConstraintSystem, IntMatrix, RowKind};

use crate::config::{CostFn, DirectiveKind, SchedulerConfig};
use crate::constraints::parse_constraints;
use crate::costfn::{big_loops_first_coeffs, contiguity_coeffs};
use crate::error::ScheduleError;
use crate::pipeline::legality::CacheSession;
use crate::space::IlpSpace;
use crate::strategy::DimensionPlan;

/// Everything a set of cost functions contributes to one dimension's ILP.
#[derive(Debug, Clone)]
pub struct CostBuild {
    /// Extra constraint rows over the ILP space.
    pub sys: ConstraintSystem,
    /// Lexicographic objective rows (leftmost = highest priority).
    pub objectives: Vec<Vec<i64>>,
}

/// Expands a directive/fusion target list: `None` means every statement.
pub fn expand_targets(stmts: Option<&Vec<usize>>, nstmts: usize) -> Vec<usize> {
    match stmts {
        Some(ids) => ids.clone(),
        None => (0..nstmts).collect(),
    }
}

/// Read-only context shared by the assembly steps of one dimension.
pub struct DimensionContext<'a> {
    /// The SCoP being scheduled.
    pub scop: &'a Scop,
    /// Global configuration knobs (bounds, directives, estimates).
    pub config: &'a SchedulerConfig,
    /// The engine's fixed ILP variable layout.
    pub space: &'a IlpSpace,
    /// This run's session over the Farkas replay cache.
    pub cache: &'a CacheSession,
    /// Dependences whose legality (`Δ ≥ 0`) this dimension must enforce:
    /// the live ones plus those carried *inside the current band*, which
    /// is what makes the emitted bands permutable (tilable) à la Pluto.
    pub legality: &'a [(usize, &'a Dependence)],
    /// Live (uncarried) dependences as `(global id, dependence)` pairs —
    /// the set cost functions optimize over.
    pub live: &'a [(usize, &'a Dependence)],
    /// Per-statement basis of committed linearly independent rows.
    pub basis: &'a [IntMatrix],
}

/// Builds the constraint rows and objective sequence for a dimension's
/// configured cost functions, in priority order.
///
/// # Errors
///
/// Propagates arithmetic overflow and unknown user variables.
pub fn build_costs(
    ctx: &DimensionContext<'_>,
    costs: &[CostFn],
) -> Result<CostBuild, ScheduleError> {
    let space = ctx.space;
    let mut out = CostBuild {
        sys: ConstraintSystem::new(space.total()),
        objectives: Vec::new(),
    };
    for cost in costs {
        match cost {
            CostFn::Proximity => {
                for &(e, dep) in ctx.live {
                    ctx.cache
                        .extend_with_proximity(e, dep, space, &mut out.sys)?;
                }
                // Objectives: Σ u_j first, then w (Pluto's lexmin order).
                let mut urow = vec![0i64; space.total()];
                for j in 0..space.nparams {
                    urow[space.u(j)] = 1;
                }
                out.objectives.push(urow);
                let mut wrow = vec![0i64; space.total()];
                wrow[space.w()] = 1;
                out.objectives.push(wrow);
            }
            CostFn::Feautrier => {
                for &(e, dep) in ctx.live {
                    ctx.cache
                        .extend_with_feautrier(e, dep, space, &mut out.sys)?;
                }
                // Maximize Σ x_e  ⇔  minimize −Σ x_e (the 0 ≤ x_e ≤ 1 box
                // is part of the engine's bounds).
                let mut row = vec![0i64; space.total()];
                for &(e, _) in ctx.live {
                    row[space.dep_var(e)] = -1;
                }
                out.objectives.push(row);
            }
            CostFn::Contiguity => {
                let mut row = vec![0i64; space.total() + 1];
                for (sid, stmt) in ctx.scop.statements.iter().enumerate() {
                    let coeffs = contiguity_coeffs(ctx.scop, stmt);
                    for (k, &c) in coeffs.iter().enumerate() {
                        space.add_iter_coeff(&mut row, sid, k, c);
                    }
                }
                row.pop();
                out.objectives.push(row);
            }
            CostFn::BigLoopsFirst => {
                let mut row = vec![0i64; space.total() + 1];
                for (sid, stmt) in ctx.scop.statements.iter().enumerate() {
                    let coeffs =
                        big_loops_first_coeffs(ctx.scop, stmt, ctx.config.parameter_estimate);
                    for (k, &c) in coeffs.iter().enumerate() {
                        space.add_iter_coeff(&mut row, sid, k, c);
                    }
                }
                row.pop();
                out.objectives.push(row);
            }
            CostFn::UserVar(name) => {
                let v = space.user(name).ok_or_else(|| ScheduleError::Config {
                    detail: format!("cost function references unknown variable `{name}`"),
                })?;
                let mut row = vec![0i64; space.total()];
                row[v] = 1;
                out.objectives.push(row);
            }
        }
    }
    Ok(out)
}

/// Assembles the full constraint system and lexicographic objective
/// sequence of one scheduling dimension.
///
/// # Errors
///
/// Propagates arithmetic overflow, constraint-syntax errors and unknown
/// user variables.
pub fn assemble(
    ctx: &DimensionContext<'_>,
    plan: &DimensionPlan,
) -> Result<(ConstraintSystem, Vec<Vec<i64>>), ScheduleError> {
    let space = ctx.space;
    let n = space.total();
    let mut sys = ConstraintSystem::new(n);

    // 1. Legality: Farkas-linearized Δ ≥ 0 per live dependence and per
    //    dependence carried earlier in the (still open) current band.
    {
        let _span = polytops_obs::span("legality");
        for &(e, dep) in ctx.legality {
            ctx.cache.extend_with_validity(e, dep, space, &mut sys)?;
        }
    }

    // 2. Progression (Eq. 3).
    add_progression(ctx, &mut sys)?;

    // 3. Box bounds.
    let feautrier = plan.cost_functions.contains(&CostFn::Feautrier);
    add_bounds(ctx, feautrier, &mut sys);

    // 4. Cost functions, layered in priority order.
    let cost = build_costs(ctx, &plan.cost_functions)?;
    sys.extend(&cost.sys);

    // 5. Custom constraints (the mini-language of §III-A2).
    for (kind, row) in parse_constraints(&plan.extra_constraints, space)? {
        match kind {
            RowKind::Eq => sys.add_eq(row),
            RowKind::Ineq => sys.add_ineq(row),
        }
    }

    // 6. Directives are suggestions: each is kept only if the space
    //    stays feasible with it (paper §III-B1).
    apply_directives(ctx, &mut sys);

    // 7. Lexicographic objectives: the configured costs first, then a
    //    coefficient-sum tie-break that drives completed statements to
    //    all-zero rows and keeps coefficients primitive.
    let mut objectives = cost.objectives;
    let mut tie = vec![0i64; n + 1];
    for s in 0..ctx.scop.statements.len() {
        for v in space.stmt_vars(s) {
            tie[v] = 1;
        }
    }
    tie.pop();
    objectives.push(tie);

    Ok((sys, objectives))
}

/// The next row of every incomplete statement must have a nonzero
/// component in the orthogonal complement of its committed rows.
fn add_progression(
    ctx: &DimensionContext<'_>,
    sys: &mut ConstraintSystem,
) -> Result<(), ScheduleError> {
    let space = ctx.space;
    let n = space.total();
    for (s, stmt) in ctx.scop.statements.iter().enumerate() {
        let rank = ctx.basis[s].rows();
        if rank == stmt.depth() || stmt.depth() == 0 {
            continue;
        }
        // `orthogonal_complement` returns a spanning (possibly redundant,
        // sign-symmetric) row set; reduce it to a row basis first —
        // otherwise opposite-sign rows cancel in the sum constraint and
        // the per-row half-spaces collapse the cone to the already-
        // covered subspace.
        let perp = orthogonal_complement(&ctx.basis[s])?;
        let mut perp_basis = IntMatrix::zeros(0, stmt.depth());
        for h in perp.iter_rows() {
            if h.iter().all(|&c| c == 0) {
                continue;
            }
            let mut candidate = perp_basis.clone();
            candidate.push_row(h.to_vec());
            if candidate.rank() == candidate.rows() {
                perp_basis = candidate;
            }
        }
        let mut sum = vec![0i64; n + 1];
        for h in perp_basis.iter_rows() {
            let mut row = vec![0i64; n + 1];
            for (k, &c) in h.iter().enumerate() {
                space.add_iter_coeff(&mut row, s, k, c);
                space.add_iter_coeff(&mut sum, s, k, c);
            }
            if !ctx.config.negative_coefficients {
                sys.add_ineq(row);
            }
        }
        sum[n] = -1; // Σ h·t ≥ 1
        sys.add_ineq(sum);
    }
    Ok(())
}

/// Box bounds over the raw ILP variables. Dependence-satisfaction
/// variables `x_e` are boxed to `[0, 1]` only when Feautrier's cost is
/// active for a live dependence and pinned to 0 otherwise, so the fixed
/// variable layout costs nothing on the proximity-only path.
fn add_bounds(ctx: &DimensionContext<'_>, feautrier: bool, sys: &mut ConstraintSystem) {
    let space = ctx.space;
    let config = ctx.config;
    let n = space.total();
    let mut bound = |var: usize, hi: i64| {
        let mut lo_row = vec![0i64; n + 1];
        lo_row[var] = 1;
        sys.add_ineq(lo_row); // var >= 0
        let mut hi_row = vec![0i64; n + 1];
        hi_row[var] = -1;
        hi_row[n] = hi;
        sys.add_ineq(hi_row); // var <= hi
    };
    for j in 0..space.nparams {
        bound(space.u(j), config.bound_bound);
    }
    bound(space.w(), config.bound_bound);
    for i in 0..space.user_names.len() {
        bound(space.user_offset + i, config.bound_bound);
    }
    let mut live_dep = vec![false; space.num_deps];
    for &(e, _) in ctx.live {
        live_dep[e] = true;
    }
    for (e, &live) in live_dep.iter().enumerate() {
        bound(space.dep_var(e), if feautrier && live { 1 } else { 0 });
    }
    let mult = if space.negative { 2 } else { 1 };
    for (s, stmt) in ctx.scop.statements.iter().enumerate() {
        let block = space.stmt_vars(s);
        let iter_end = block.start + mult * stmt.depth();
        let const_start = block.end - mult;
        for v in block.clone() {
            let hi = if v < iter_end {
                config.coefficient_bound
            } else if v >= const_start {
                config.constant_bound
            } else {
                // Parameter-coefficient columns (parametric shift).
                config.coefficient_bound
            };
            bound(v, hi);
        }
    }
}

/// Soft directive constraints: each directive's rows are added only when
/// the system stays feasible with them.
fn apply_directives(ctx: &DimensionContext<'_>, sys: &mut ConstraintSystem) {
    let space = ctx.space;
    let n = space.total();
    let nstmts = ctx.scop.statements.len();
    for d in &ctx.config.directives {
        let targets = expand_targets(d.stmts.as_ref(), nstmts);
        let mut extra: Vec<(RowKind, Vec<i64>)> = Vec::new();
        match d.kind {
            DirectiveKind::Parallelize => {
                // Prefer φ = it_q for targets still at rank 0.
                for &s in &targets {
                    let stmt = &ctx.scop.statements[s];
                    if ctx.basis[s].rows() != 0 || d.iterator >= stmt.depth() {
                        continue;
                    }
                    for k in 0..stmt.depth() {
                        let mut row = vec![0i64; n + 1];
                        space.add_iter_coeff(&mut row, s, k, 1);
                        row[n] = if k == d.iterator { -1 } else { 0 };
                        extra.push((RowKind::Eq, row));
                    }
                }
            }
            DirectiveKind::Vectorize => {
                // Keep it_q unscheduled (innermost) while the target
                // statement still has other dimensions to place.
                for &s in &targets {
                    let stmt = &ctx.scop.statements[s];
                    if d.iterator >= stmt.depth() || ctx.basis[s].rows() + 1 >= stmt.depth() {
                        continue;
                    }
                    let mut row = vec![0i64; n + 1];
                    space.add_iter_coeff(&mut row, s, d.iterator, 1);
                    extra.push((RowKind::Eq, row));
                }
            }
            DirectiveKind::Sequential => {
                // Handled when parallel flags are assigned.
            }
        }
        if extra.is_empty() {
            continue;
        }
        let mut probe = sys.clone();
        for (kind, row) in &extra {
            match kind {
                RowKind::Eq => probe.add_eq(row.clone()),
                RowKind::Ineq => probe.add_ineq(row.clone()),
            }
        }
        if ilp_feasible(&probe) {
            *sys = probe;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_targets_defaults_to_all() {
        assert_eq!(expand_targets(None, 3), vec![0, 1, 2]);
        assert_eq!(expand_targets(Some(&vec![2, 0]), 3), vec![2, 0]);
    }
}
