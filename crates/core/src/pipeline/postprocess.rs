//! PostProcess stage: tree-to-tree transformations of the solver's
//! schedule (paper Fig. 1's post-processing block).
//!
//! The stage lowers the engine's flat schedule into an explicit
//! [`ScheduleTree`] and expresses every transformation structurally:
//!
//! * **Tiling** replaces a point band with a `Mark::Tile` over a *tile
//!   band* (one member `⌊row·x / size⌋` per point member) over the
//!   original point band.
//! * **Wavefront** skews the outermost member of a *tile* band into the
//!   sum of the band's members (`Σ ⌊rowⱼ·x / sizeⱼ⌋` — inexpressible in
//!   the flat row form, which is one reason the tree exists), falling
//!   back to point bands when the schedule is untiled. The skew commits
//!   only when it *increases* the number of coincident members: a
//!   dependence crossing tiles always crosses the skewed outer member
//!   first, so inner tile members become parallel (Pluto §5.3 lifted to
//!   tile space).
//! * **Intra-tile vectorization** rotates a coincident point member to
//!   the innermost position of its tiled band (tile members and sizes
//!   follow), and vectorization directives/auto-detection become
//!   `Mark::Vectorize` annotations.
//!
//! Every transformation is **verified before it is committed**: the
//! candidate tree's instance order must pass the independent dependence
//! oracle ([`polytops_deps::steps_respect_dependence`]) for every
//! dependence. A transformation that fails verification is silently
//! dropped — post-processing, like directives, is best-effort and never
//! breaks legality. Coincidence flags of transformed bands are
//! recomputed with the *conditioned* oracle
//! ([`polytops_deps::step_coincident`]: zero distance given equal outer
//! coordinates); untransformed bands keep the engine's flags so model
//! scores of plain schedules are unchanged.

use std::collections::HashMap;

use polytops_deps::{
    step_coincident, steps_respect_dependence, strongly_satisfies, zero_distance, Dependence,
    OrderStep,
};
use polytops_ir::{
    BandMember, MarkKind, MemberTerm, PathStep, Schedule, ScheduleTree, StmtId, TreeNode,
};

use crate::config::{DirectiveKind, SchedulerConfig};
use crate::pipeline::objectives::expand_targets;

/// Applies the configured post-processing to `sched` in place: lowers
/// the schedule to a tree, transforms it, and attaches the result
/// (every schedule leaves this stage with an explicit tree).
pub fn apply(deps: &[Dependence], sched: &mut Schedule, config: &SchedulerConfig) {
    let mut tree = sched.tree_or_lowered();
    let post = &config.post;
    if !post.tile_sizes.is_empty() {
        tile(deps, sched, &mut tree, &post.tile_sizes);
    }
    if post.wavefront {
        wavefront(deps, &mut tree);
    }
    if post.intra_tile_vectorize && !post.tile_sizes.is_empty() {
        intra_tile_vectorize(deps, &mut tree);
    }
    vectorize_marks(sched, &mut tree, config);
    sched.set_tree(tree);
}

// ---------------------------------------------------------------------
// Oracle plumbing.
// ---------------------------------------------------------------------

/// Whether every dependence is respected by the tree's instance order
/// (the commit gate of every transformation).
fn tree_respects_all(deps: &[Dependence], tree: &ScheduleTree) -> bool {
    let paths = tree.stmt_paths();
    deps.iter().all(|dep| {
        let steps = aligned_steps(&paths[dep.src.0], &paths[dep.dst.0]).0;
        steps_respect_dependence(dep, &steps)
    })
}

/// [`polytops_deps::order_steps`] plus the structural node id of each
/// member step (needed to attribute conditioned properties back to tree
/// members).
fn aligned_steps(src: &[PathStep], dst: &[PathStep]) -> (Vec<OrderStep>, Vec<Option<usize>>) {
    let mut steps = Vec::new();
    let mut ids = Vec::new();
    for (a, b) in src.iter().zip(dst.iter()) {
        match (a, b) {
            (
                PathStep::Member {
                    node: na,
                    terms: ta,
                    ..
                },
                PathStep::Member {
                    node: nb,
                    terms: tb,
                    ..
                },
            ) if na == nb => {
                steps.push(OrderStep::Value {
                    src: ta.clone(),
                    dst: tb.clone(),
                });
                ids.push(Some(*na));
            }
            (PathStep::Seq { node: na, pos: pa }, PathStep::Seq { node: nb, pos: pb })
                if na == nb =>
            {
                steps.push(OrderStep::Position { src: *pa, dst: *pb });
                ids.push(None);
                if pa != pb {
                    break;
                }
            }
            _ => break,
        }
    }
    (steps, ids)
}

/// Conditioned coincidence of every member node id in the tree: a
/// member is coincident iff, for every dependence, its step distance is
/// zero given equal coordinates on all *prefix* steps (dependences that
/// never reach the member — separated earlier or filtered apart — are
/// vacuously fine).
fn conditioned_flags(deps: &[Dependence], tree: &ScheduleTree) -> HashMap<usize, bool> {
    let paths = tree.stmt_paths();
    let mut flags: HashMap<usize, bool> = HashMap::new();
    for path in &paths {
        for step in path {
            if let PathStep::Member { node, .. } = step {
                flags.entry(*node).or_insert(true);
            }
        }
    }
    for dep in deps {
        let (steps, ids) = aligned_steps(&paths[dep.src.0], &paths[dep.dst.0]);
        for (j, id) in ids.iter().enumerate() {
            let Some(id) = id else { continue };
            let entry = flags.entry(*id).or_insert(true);
            if *entry {
                *entry = step_coincident(dep, &steps[..j], &steps[j]);
            }
        }
    }
    flags
}

// ---------------------------------------------------------------------
// Band location.
// ---------------------------------------------------------------------

/// Where a band sits when the rewrite walk reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BandCtx {
    /// An ordinary (point) band.
    Plain,
    /// Directly under a `Mark::Tile` (possibly through other marks): a
    /// tile band.
    UnderTileMark,
    /// Directly under another band: the point band of a tiled nest.
    UnderBand,
}

/// Total number of bands in the subtree.
fn count_bands(node: &TreeNode) -> usize {
    match node {
        TreeNode::Leaf => 0,
        TreeNode::Filter { child, .. } | TreeNode::Mark { child, .. } => count_bands(child),
        TreeNode::Band { child, .. } => 1 + count_bands(child),
        TreeNode::Sequence(children) => children.iter().map(count_bands).sum(),
    }
}

/// Callback of [`rewrite_nth_band`]: sees a band's context and parts
/// and returns the replacement node (or `None` to decline).
type BandRewrite<'a> = dyn FnMut(BandCtx, &[BandMember], bool, &TreeNode) -> Option<TreeNode> + 'a;

/// Rewrites the `target`-th band (depth-first order, the numbering of
/// [`count_bands`] and [`ScheduleTree::for_each_band`]) with `f`, which
/// sees the band's context and parts and returns the replacement node
/// (or `None` to decline). Returns `None` when nothing was rewritten.
fn rewrite_nth_band(
    node: &TreeNode,
    count: &mut usize,
    target: usize,
    ctx: BandCtx,
    f: &mut BandRewrite<'_>,
) -> Option<TreeNode> {
    match node {
        TreeNode::Leaf => None,
        TreeNode::Filter { stmts, child } => {
            rewrite_nth_band(child, count, target, BandCtx::Plain, f).map(|c| TreeNode::Filter {
                stmts: stmts.clone(),
                child: c.boxed(),
            })
        }
        TreeNode::Mark { kind, child } => {
            let ctx = if matches!(kind, MarkKind::Tile(_)) {
                BandCtx::UnderTileMark
            } else {
                ctx
            };
            rewrite_nth_band(child, count, target, ctx, f).map(|c| TreeNode::Mark {
                kind: kind.clone(),
                child: c.boxed(),
            })
        }
        TreeNode::Sequence(children) => {
            for (i, c) in children.iter().enumerate() {
                if let Some(nc) = rewrite_nth_band(c, count, target, BandCtx::Plain, f) {
                    let mut out = children.clone();
                    out[i] = nc;
                    return Some(TreeNode::Sequence(out));
                }
            }
            None
        }
        TreeNode::Band {
            members,
            permutable,
            child,
        } => {
            let idx = *count;
            *count += 1;
            if idx == target {
                return f(ctx, members, *permutable, child);
            }
            rewrite_nth_band(child, count, target, BandCtx::UnderBand, f).map(|c| TreeNode::Band {
                members: members.clone(),
                permutable: *permutable,
                child: c.boxed(),
            })
        }
    }
}

/// Convenience: runs [`rewrite_nth_band`] over a whole tree.
fn rewrite_band(
    tree: &ScheduleTree,
    target: usize,
    f: &mut BandRewrite<'_>,
) -> Option<ScheduleTree> {
    let mut count = 0;
    rewrite_nth_band(&tree.root, &mut count, target, BandCtx::Plain, f).map(|root| ScheduleTree {
        nstmts: tree.nstmts,
        root,
    })
}

// ---------------------------------------------------------------------
// Flat-schedule helpers (tile-loop parallelism uses the engine's
// unconditioned rule so plain-tiling model scores match the engine).
// ---------------------------------------------------------------------

/// Dependences not strongly carried by any flat dimension before
/// `start`.
fn live_at(deps: &[Dependence], sched: &Schedule, start: usize) -> Vec<usize> {
    let mut live: Vec<usize> = (0..deps.len()).collect();
    for d in 0..start {
        live.retain(|&e| {
            let dep = &deps[e];
            !strongly_satisfies(
                dep,
                &sched.stmt(dep.src).rows()[d],
                &sched.stmt(dep.dst).rows()[d],
            )
        });
    }
    live
}

// ---------------------------------------------------------------------
// Tiling.
// ---------------------------------------------------------------------

/// Tiles every point band: `Mark::Tile` over a tile band over the point
/// band, the candidate certified against the oracle before committing.
/// `tile_sizes` supplies one size per band depth and is cycled when the
/// band is deeper.
fn tile(deps: &[Dependence], sched: &Schedule, tree: &mut ScheduleTree, tile_sizes: &[i64]) {
    let mut bi = 0;
    while bi < count_bands(&tree.root) {
        let candidate = rewrite_band(tree, bi, &mut |ctx, members, permutable, child| {
            if ctx != BandCtx::Plain || !members.iter().all(BandMember::is_affine) {
                return None;
            }
            let sizes: Vec<i64> = (0..members.len())
                .map(|i| tile_sizes[i % tile_sizes.len()].max(1))
                .collect();
            // A tile loop executes outside the band's point loops, so it
            // is parallel only when every dependence live at *band
            // entry* has zero distance on its dimension — a dependence
            // carried by an earlier member of the same band still
            // crosses tiles.
            let start = members[0].source_dim();
            let live = live_at(deps, sched, start);
            let tile_members: Vec<BandMember> = members
                .iter()
                .zip(&sizes)
                .map(|(m, &size)| {
                    let t = &m.terms[0];
                    let parallel = live.iter().all(|&e| {
                        let dep = &deps[e];
                        zero_distance(
                            dep,
                            &sched.stmt(dep.src).rows()[t.source_dim],
                            &sched.stmt(dep.dst).rows()[t.source_dim],
                        )
                    });
                    BandMember {
                        terms: vec![MemberTerm {
                            rows: t.rows.clone(),
                            div: size,
                            source_dim: t.source_dim,
                        }],
                        coincident: parallel,
                    }
                })
                .collect();
            Some(TreeNode::Mark {
                kind: MarkKind::Tile(sizes),
                child: TreeNode::Band {
                    members: tile_members,
                    permutable,
                    child: TreeNode::Band {
                        members: members.to_vec(),
                        permutable,
                        child: child.clone().boxed(),
                    }
                    .boxed(),
                }
                .boxed(),
            })
        });
        match candidate {
            Some(c) if tree_respects_all(deps, &c) => {
                *tree = c;
                // The rewrite put two bands (tile + point) where one
                // was; continue past both.
                bi += 2;
            }
            _ => bi += 1,
        }
    }
}

// ---------------------------------------------------------------------
// Wavefront skewing.
// ---------------------------------------------------------------------

/// Coincident-member count of the `target`-th band.
fn coincident_count(tree: &ScheduleTree, target: usize) -> usize {
    let mut n = 0;
    let mut k = 0;
    tree.for_each_band(|_, members| {
        if k == target {
            n = members.iter().filter(|m| m.coincident).count();
        }
        k += 1;
    });
    n
}

/// Recomputes the coincidence flags of the `target`-th band with the
/// conditioned oracle (other bands keep their flags).
fn refresh_band_flags(deps: &[Dependence], tree: &mut ScheduleTree, target: usize) {
    let flags = conditioned_flags(deps, tree);
    let mut k = 0;
    tree.for_each_band_mut(|first, members| {
        if k == target {
            for (j, m) in members.iter_mut().enumerate() {
                m.coincident = flags.get(&(first + j)).copied().unwrap_or(false);
            }
        }
        k += 1;
    });
}

/// Wavefront-skews bands whose outermost member is sequential: the
/// outer member becomes the sum of the band's members. Tile bands are
/// preferred (the terms concatenate into a sum of floors); untiled
/// point bands fall back to the classic affine row sum. A skew commits
/// only when it is certified against every dependence and loses no
/// coincident members (the user asked for a wavefront; pipelining an
/// already-parallel-inside band is allowed, degrading one is not).
fn wavefront(deps: &[Dependence], tree: &mut ScheduleTree) {
    let mut bi = 0;
    while bi < count_bands(&tree.root) {
        let candidate = rewrite_band(tree, bi, &mut |ctx, members, _permutable, child| {
            if members.len() < 2 || members[0].coincident {
                return None;
            }
            let skewed = match ctx {
                BandCtx::UnderBand => return None,
                BandCtx::UnderTileMark => BandMember {
                    terms: members.iter().flat_map(|m| m.terms.clone()).collect(),
                    coincident: false,
                },
                BandCtx::Plain => {
                    if !members.iter().all(BandMember::is_affine) {
                        return None;
                    }
                    let t0 = &members[0].terms[0];
                    let rows: Vec<Vec<i64>> = (0..t0.rows.len())
                        .map(|s| {
                            let mut sum = t0.rows[s].clone();
                            for m in &members[1..] {
                                for (acc, v) in sum.iter_mut().zip(&m.terms[0].rows[s]) {
                                    *acc += v;
                                }
                            }
                            sum
                        })
                        .collect();
                    BandMember {
                        terms: vec![MemberTerm {
                            rows,
                            div: 1,
                            source_dim: t0.source_dim,
                        }],
                        coincident: false,
                    }
                }
            };
            let mut out = members.to_vec();
            out[0] = skewed;
            Some(TreeNode::Mark {
                kind: MarkKind::Wavefront,
                child: TreeNode::Band {
                    members: out,
                    // The skewed member is not freely interchangeable
                    // with the others.
                    permutable: false,
                    child: child.clone().boxed(),
                }
                .boxed(),
            })
        });
        if let Some(mut c) = candidate {
            refresh_band_flags(deps, &mut c, bi);
            if tree_respects_all(deps, &c) && coincident_count(&c, bi) >= coincident_count(tree, bi)
            {
                *tree = c;
            }
        }
        bi += 1;
    }
}

// ---------------------------------------------------------------------
// Intra-tile vectorization.
// ---------------------------------------------------------------------

/// Rotates a coincident point member to the innermost position of its
/// tiled band so it can be vectorized; the corresponding tile member
/// and the mark's size list follow. Rewrites the first eligible tiled
/// nest starting at `skip` (depth-first over `Mark::Tile` nodes).
fn rotate_tiled_nest(node: &TreeNode, skip: &mut isize) -> Option<TreeNode> {
    match node {
        TreeNode::Leaf => None,
        TreeNode::Filter { stmts, child } => {
            rotate_tiled_nest(child, skip).map(|c| TreeNode::Filter {
                stmts: stmts.clone(),
                child: c.boxed(),
            })
        }
        TreeNode::Sequence(children) => {
            for (i, c) in children.iter().enumerate() {
                if let Some(nc) = rotate_tiled_nest(c, skip) {
                    let mut out = children.clone();
                    out[i] = nc;
                    return Some(TreeNode::Sequence(out));
                }
            }
            None
        }
        TreeNode::Band {
            members,
            permutable,
            child,
        } => rotate_tiled_nest(child, skip).map(|c| TreeNode::Band {
            members: members.clone(),
            permutable: *permutable,
            child: c.boxed(),
        }),
        TreeNode::Mark { kind, child } => {
            if let MarkKind::Tile(sizes) = kind {
                let my_turn = *skip == 0;
                *skip -= 1;
                if my_turn {
                    if let Some((under, sizes)) = rotate_under_tile_mark(child, sizes) {
                        return Some(TreeNode::Mark {
                            kind: MarkKind::Tile(sizes),
                            child: under.boxed(),
                        });
                    }
                }
                None
            } else {
                rotate_tiled_nest(child, skip).map(|c| TreeNode::Mark {
                    kind: kind.clone(),
                    child: c.boxed(),
                })
            }
        }
    }
}

/// The swap itself: given the subtree under a `Mark::Tile`, finds the
/// tile band and its point band, picks the rightmost coincident point
/// member `p` (when the innermost is sequential) and swaps `p` with the
/// innermost in both bands; returns the rebuilt subtree plus the
/// reordered size list.
fn rotate_under_tile_mark(under: &TreeNode, sizes: &[i64]) -> Option<(TreeNode, Vec<i64>)> {
    match under {
        // The tile band may sit under further marks (e.g. wavefront).
        TreeNode::Mark { kind, child } => rotate_under_tile_mark(child, sizes).map(|(c, sizes)| {
            (
                TreeNode::Mark {
                    kind: kind.clone(),
                    child: c.boxed(),
                },
                sizes,
            )
        }),
        TreeNode::Band {
            members: tile_members,
            permutable,
            child,
        } => {
            let TreeNode::Band {
                members: point_members,
                permutable: point_permutable,
                child: body,
            } = child.as_ref()
            else {
                return None;
            };
            let n = point_members.len();
            if n < 2 || point_members[n - 1].coincident {
                return None;
            }
            let p = (0..n - 1).rev().find(|&d| point_members[d].coincident)?;
            // A wavefronted tile band owns a skewed member 0 that no
            // longer corresponds 1:1 to a point member; only swap tile
            // members that do.
            let mut tiles = tile_members.clone();
            if tiles.len() == n {
                tiles.swap(p, n - 1);
            }
            let mut points = point_members.clone();
            points.swap(p, n - 1);
            let mut sizes = sizes.to_vec();
            if sizes.len() == n {
                sizes.swap(p, n - 1);
            }
            Some((
                TreeNode::Band {
                    members: tiles,
                    permutable: *permutable,
                    child: TreeNode::Band {
                        members: points,
                        permutable: *point_permutable,
                        child: body.clone().boxed(),
                    }
                    .boxed(),
                },
                sizes,
            ))
        }
        _ => None,
    }
}

/// Driver: tries each tiled nest in turn, committing certified
/// rotations (flags of both bands of a rotated nest are recomputed with
/// the conditioned oracle — the permutation changes every prefix).
fn intra_tile_vectorize(deps: &[Dependence], tree: &mut ScheduleTree) {
    let ntiles = tree
        .marks()
        .iter()
        .filter(|m| matches!(m, MarkKind::Tile(_)))
        .count();
    for nest in 0..ntiles {
        let mut skip = nest as isize;
        let Some(root) = rotate_tiled_nest(&tree.root, &mut skip) else {
            continue;
        };
        let mut candidate = ScheduleTree {
            nstmts: tree.nstmts,
            root,
        };
        // Locate the rotated nest's two bands: they are the bands whose
        // members differ from `tree`'s at the same index.
        let mut before = Vec::new();
        tree.for_each_band(|_, m| before.push(m.to_vec()));
        let mut changed = Vec::new();
        let mut k = 0;
        candidate.for_each_band(|_, m| {
            if before.get(k).map(Vec::as_slice) != Some(m) {
                changed.push(k);
            }
            k += 1;
        });
        for &b in &changed {
            refresh_band_flags(deps, &mut candidate, b);
        }
        if tree_respects_all(deps, &candidate) {
            *tree = candidate;
        }
    }
}

// ---------------------------------------------------------------------
// Vectorization marks.
// ---------------------------------------------------------------------

/// Attaches `Mark::Vectorize` annotations: explicit directives first
/// (the statement's last member using the directive's iterator), then
/// the auto-vectorize heuristic (the statement's innermost member, when
/// coincident). Marks carry the statement sets and wrap the member's
/// band.
fn vectorize_marks(sched: &Schedule, tree: &mut ScheduleTree, config: &SchedulerConfig) {
    let nstmts = tree.nstmts;
    let paths = tree.stmt_paths();
    // Per statement: the structural node id of its vector member.
    let mut choice: Vec<Option<usize>> = vec![None; nstmts];
    for d in &config.directives {
        if d.kind != DirectiveKind::Vectorize {
            continue;
        }
        for s in expand_targets(d.stmts.as_ref(), nstmts) {
            let depth = sched.stmt(StmtId(s)).depth();
            if d.iterator >= depth {
                continue;
            }
            let last = paths[s].iter().rev().find_map(|step| match step {
                PathStep::Member { node, terms, .. }
                    if terms.iter().any(|(row, _)| row[d.iterator] != 0) =>
                {
                    Some(*node)
                }
                _ => None,
            });
            if last.is_some() {
                choice[s] = last;
            }
        }
    }
    if config.auto_vectorize {
        for (s, c) in choice.iter_mut().enumerate() {
            if c.is_some() {
                continue;
            }
            // Strictly the innermost member: an outer coincident member
            // is not vectorizable in place.
            *c = paths[s]
                .iter()
                .rev()
                .find_map(|step| match step {
                    PathStep::Member {
                        node, coincident, ..
                    } => Some((*node, *coincident)),
                    _ => None,
                })
                .and_then(|(node, coincident)| coincident.then_some(node));
        }
    }
    // Group statements by the band owning their chosen member.
    let mut bands: Vec<(usize, usize)> = Vec::new(); // (first member id, len)
    tree.for_each_band(|first, members| bands.push((first, members.len())));
    let mut by_band: HashMap<usize, Vec<usize>> = HashMap::new();
    for (s, c) in choice.iter().enumerate() {
        let Some(id) = c else { continue };
        if let Some(bi) = bands
            .iter()
            .position(|&(first, len)| (first..first + len).contains(id))
        {
            by_band.entry(bi).or_default().push(s);
        }
    }
    for (bi, mut stmts) in by_band {
        stmts.sort_unstable();
        let rewritten = rewrite_band(tree, bi, &mut |_, members, permutable, child| {
            Some(TreeNode::Mark {
                kind: MarkKind::Vectorize(stmts.clone()),
                child: TreeNode::Band {
                    members: members.to_vec(),
                    permutable,
                    child: child.clone().boxed(),
                }
                .boxed(),
            })
        });
        if let Some(t) = rewritten {
            *tree = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_deps::analyze;
    use polytops_ir::{Aff, Scop, ScopBuilder};

    /// `for t for i A[i] = A[i-1] + A[i+1];` — the classic skewing case.
    fn jacobi() -> Scop {
        let mut b = ScopBuilder::new("jacobi");
        let t = b.param("T");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("t", Aff::val(0), t - 1);
        b.open_loop("i", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .read(a, &[Aff::var("i") + 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    /// The first tile-marked nest of the tree: (sizes, tile band
    /// members, point band members).
    fn tiled_nest(tree: &ScheduleTree) -> Option<(Vec<i64>, Vec<BandMember>, Vec<BandMember>)> {
        fn walk(node: &TreeNode) -> Option<(Vec<i64>, Vec<BandMember>, Vec<BandMember>)> {
            match node {
                TreeNode::Leaf => None,
                TreeNode::Filter { child, .. } => walk(child),
                TreeNode::Band { child, .. } => walk(child),
                TreeNode::Sequence(children) => children.iter().find_map(walk),
                TreeNode::Mark { kind, child } => match kind {
                    MarkKind::Tile(sizes) => {
                        let mut under = child.as_ref();
                        while let TreeNode::Mark { child, .. } = under {
                            under = child.as_ref();
                        }
                        let TreeNode::Band {
                            members: tiles,
                            child,
                            ..
                        } = under
                        else {
                            return None;
                        };
                        let TreeNode::Band {
                            members: points, ..
                        } = child.as_ref()
                        else {
                            return None;
                        };
                        Some((sizes.clone(), tiles.clone(), points.clone()))
                    }
                    _ => walk(child),
                },
            }
        }
        walk(&tree.root)
    }

    #[test]
    fn tiling_builds_a_certified_tile_band() {
        let scop = jacobi();
        let deps = analyze(&scop);
        let mut cfg = crate::SchedulerConfig::default();
        cfg.post.tile_sizes = vec![16];
        let sched = crate::schedule(&scop, &cfg).unwrap();
        let tree = sched.tree().expect("post-processing attaches a tree");
        let (sizes, tiles, points) = tiled_nest(tree).expect("jacobi band tiles");
        assert_eq!(sizes, vec![16, 16]);
        assert_eq!(tiles.len(), 2);
        assert_eq!(points.len(), 2);
        assert!(tiles.iter().all(|m| m.terms[0].div == 16));
        assert!(tree_respects_all(&deps, tree));
    }

    #[test]
    fn wavefront_skews_the_tile_band_and_exposes_coincidence() {
        let scop = jacobi();
        let deps = analyze(&scop);
        let sched = crate::schedule(&scop, &crate::presets::wavefront()).unwrap();
        let tree = sched.tree().expect("tree attached");
        let (_, tiles, _) = tiled_nest(tree).expect("tiled");
        // The outer tile member is the wavefront: a sum of two floored
        // terms — and the skew makes the inner tile member coincident.
        assert_eq!(tiles[0].terms.len(), 2, "skewed outer member");
        assert!(!tiles[0].coincident);
        assert!(
            tiles[1].coincident,
            "wavefront exposes tile-level parallelism"
        );
        assert!(
            tree.marks()
                .iter()
                .any(|m| matches!(m, MarkKind::Wavefront)),
            "wavefront mark present"
        );
        assert!(tree_respects_all(&deps, tree));
    }

    #[test]
    fn tile_loops_are_stricter_than_point_loops_about_parallelism() {
        // A[i][j] = A[i-1][j-1] + A[i-1][j+1]: pluto skews to (i, i+j).
        // Dimension 1 is point-parallel (both deps carried by dim 0) but
        // its TILE loop crosses the carried deps (distances (1,0)/(1,2)
        // after the skew land in different i+j tiles within one i tile),
        // so the tile loop must NOT be marked parallel.
        let mut b = ScopBuilder::new("skewed2d");
        let n = b.param("N");
        let a = b.array("A", &[n.clone(), n.clone()], 8);
        b.open_loop("i", Aff::val(1), n.clone() - 1);
        b.open_loop("j", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1, Aff::var("j") - 1])
            .read(a, &[Aff::var("i") - 1, Aff::var("j") + 1])
            .write(a, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let mut cfg = crate::SchedulerConfig::default();
        cfg.post.tile_sizes = vec![8, 8];
        let sched = crate::schedule(&scop, &cfg).unwrap();
        let (_, tiles, points) = tiled_nest(sched.tree().unwrap()).expect("band must tile");
        assert!(
            points.last().unwrap().coincident,
            "inner point dimension is parallel"
        );
        assert!(
            tiles.iter().all(|m| !m.coincident),
            "no tile loop may be parallel here"
        );
    }

    #[test]
    fn apply_lowers_but_otherwise_preserves_default_postprocess() {
        let scop = jacobi();
        let deps = analyze(&scop);
        let mut sched = crate::schedule(&scop, &crate::SchedulerConfig::default()).unwrap();
        let before = sched.clone();
        apply(&deps, &mut sched, &crate::SchedulerConfig::default());
        // Rows, bands and flags untouched; the tree is exactly the
        // lowering of the flat schedule.
        assert_eq!(
            sched.tree(),
            Some(&ScheduleTree::lower(&before)),
            "default post-processing attaches the plain lowering"
        );
    }

    #[test]
    fn intra_tile_vectorize_rotates_a_coincident_member_innermost() {
        // matmul-like: C[i][j] += A[i][k] * B[k][j]. i and j are
        // parallel, k carries; pluto orders (i, j, k) with k innermost
        // and sequential, so intra-tile vectorization must rotate a
        // coincident member to the innermost point position.
        let mut b = ScopBuilder::new("mm");
        let n = b.param("N");
        let a = b.array("A", &[n.clone(), n.clone()], 8);
        let c = b.array("C", &[n.clone(), n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.open_loop("j", Aff::val(0), n.clone() - 1);
        b.open_loop("k", Aff::val(0), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i"), Aff::var("k")])
            .read(c, &[Aff::var("i"), Aff::var("j")])
            .write(c, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let deps = analyze(&scop);
        let mut cfg = crate::SchedulerConfig::default();
        cfg.post.tile_sizes = vec![8];
        cfg.post.intra_tile_vectorize = true;
        let sched = crate::schedule(&scop, &cfg).unwrap();
        let tree = sched.tree().unwrap();
        let (_, _, points) = tiled_nest(tree).expect("tiled");
        assert!(
            points.last().unwrap().coincident,
            "rotation must leave a coincident member innermost: {:?}",
            points.iter().map(|m| m.coincident).collect::<Vec<_>>()
        );
        assert!(tree_respects_all(&deps, tree));
    }

    #[test]
    fn auto_vectorize_marks_the_innermost_coincident_member() {
        // Parallel copy loop: innermost (only) member is coincident.
        let mut b = ScopBuilder::new("copy");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        let c = b.array("B", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n - 1);
        b.stmt("S0")
            .read(a, &[Aff::var("i")])
            .write(c, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        let scop = b.build().unwrap();
        let cfg = crate::SchedulerConfig {
            auto_vectorize: true,
            ..Default::default()
        };
        let sched = crate::schedule(&scop, &cfg).unwrap();
        let tree = sched.tree().unwrap();
        assert!(
            tree.marks()
                .iter()
                .any(|m| matches!(m, MarkKind::Vectorize(stmts) if stmts == &vec![0])),
            "vectorize mark on the copy statement: {:?}",
            tree.marks()
        );
    }
}
