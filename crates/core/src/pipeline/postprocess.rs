//! PostProcess stage: tiling, wavefront skewing and intra-tile
//! vectorization applied to the solver's schedule (paper Fig. 1's
//! post-processing block).
//!
//! Every transformation is **verified before it is committed**: the
//! candidate schedule must pass the independent legality oracle
//! ([`polytops_deps::schedule_respects_dependence`]) for every
//! dependence, and tiling additionally requires the band to be
//! permutable (each band row individually legal for every dependence
//! not carried before the band). A transformation that fails
//! verification is silently dropped — post-processing, like directives,
//! is best-effort and never breaks legality.
//!
//! * **Tiling** records [`TileBand`] metadata on the schedule (rows are
//!   unchanged — tile loops are materialized by the band-tree code
//!   generator in `polytops_codegen`).
//! * **Wavefront** replaces the first row of a band whose outer
//!   dimension is sequential but whose inner dimensions contain
//!   parallelism with the sum of the band's rows, exposing the inner
//!   parallelism (Pluto §5.3); parallel flags are recomputed afterwards.
//! * **Intra-tile vectorization** permutes a parallel point loop to the
//!   innermost position of its tiled band.

use polytops_deps::{
    respects, schedule_respects_dependence, strongly_satisfies, zero_distance, Dependence,
};
use polytops_ir::{Schedule, StmtId, TileBand};

use crate::config::PostProcess;

/// Applies the configured post-processing to `sched` in place.
pub fn apply(deps: &[Dependence], sched: &mut Schedule, post: &PostProcess) {
    if post.wavefront {
        wavefront(deps, sched);
    }
    if !post.tile_sizes.is_empty() {
        tile(deps, sched, &post.tile_sizes);
        if post.intra_tile_vectorize {
            intra_tile_vectorize(deps, sched);
        }
    }
}

/// Whether schedule dimension `d` is a loop level (some statement has a
/// non-constant row there).
fn is_loop_dim(sched: &Schedule, d: usize) -> bool {
    (0..sched.num_statements()).any(|s| !sched.stmt(StmtId(s)).row_is_constant(d))
}

/// Whether every dependence is respected by the whole candidate schedule.
fn schedule_is_legal(deps: &[Dependence], sched: &Schedule) -> bool {
    deps.iter().all(|dep| {
        schedule_respects_dependence(dep, sched.stmt(dep.src).rows(), sched.stmt(dep.dst).rows())
    })
}

/// Dependences not strongly carried by any dimension before `start`.
fn live_at(deps: &[Dependence], sched: &Schedule, start: usize) -> Vec<usize> {
    let mut live: Vec<usize> = (0..deps.len()).collect();
    for d in 0..start {
        live.retain(|&e| {
            let dep = &deps[e];
            !strongly_satisfies(
                dep,
                &sched.stmt(dep.src).rows()[d],
                &sched.stmt(dep.dst).rows()[d],
            )
        });
    }
    live
}

/// Whether band `start..end` is permutable: every band row is
/// individually legal (`Δ ≥ 0`) for every dependence live at the band.
fn band_is_permutable(deps: &[Dependence], sched: &Schedule, start: usize, end: usize) -> bool {
    live_at(deps, sched, start).iter().all(|&e| {
        let dep = &deps[e];
        (start..end).all(|d| {
            respects(
                dep,
                &sched.stmt(dep.src).rows()[d],
                &sched.stmt(dep.dst).rows()[d],
            )
        })
    })
}

/// Recomputes the parallel flag of every dimension from scratch with the
/// engine's rule: a loop dimension is parallel iff every dependence not
/// carried earlier has zero distance on it; constant (splitting) levels
/// are sequential.
fn recompute_parallel(deps: &[Dependence], sched: &mut Schedule) {
    let dims = sched.dims();
    let mut live: Vec<usize> = (0..deps.len()).collect();
    let mut flags = Vec::with_capacity(dims);
    for d in 0..dims {
        let parallel = is_loop_dim(sched, d)
            && live.iter().all(|&e| {
                let dep = &deps[e];
                zero_distance(
                    dep,
                    &sched.stmt(dep.src).rows()[d],
                    &sched.stmt(dep.dst).rows()[d],
                )
            });
        flags.push(parallel);
        live.retain(|&e| {
            let dep = &deps[e];
            !strongly_satisfies(
                dep,
                &sched.stmt(dep.src).rows()[d],
                &sched.stmt(dep.dst).rows()[d],
            )
        });
    }
    *sched.parallel_mut() = flags;
}

/// Wavefront skewing: when a band's outer dimension is sequential but an
/// inner one is parallel, replacing the outer row with the sum of the
/// band's rows carries the band's dependences on the outer (wavefront)
/// dimension and leaves the inner dimensions parallel.
fn wavefront(deps: &[Dependence], sched: &mut Schedule) {
    for (start, end) in sched.band_ranges() {
        if end - start < 2 || !(start..end).all(|d| is_loop_dim(sched, d)) {
            continue;
        }
        if sched.parallel()[start] || !(start + 1..end).any(|d| sched.parallel()[d]) {
            continue;
        }
        let mut candidate = sched.clone();
        for s in 0..sched.num_statements() {
            let ss = sched.stmt(StmtId(s));
            let mut sum = ss.rows()[start].clone();
            for d in start + 1..end {
                for (acc, v) in sum.iter_mut().zip(&ss.rows()[d]) {
                    *acc += v;
                }
            }
            candidate.stmt_mut(StmtId(s)).set_row(start, sum);
        }
        if schedule_is_legal(deps, &candidate) {
            *sched = candidate;
            recompute_parallel(deps, sched);
        }
    }
}

/// Records tiling metadata for every permutable band of loop dimensions.
/// `tile_sizes` supplies one size per band depth and is cycled when the
/// band is deeper.
fn tile(deps: &[Dependence], sched: &mut Schedule, tile_sizes: &[i64]) {
    let mut tiling = Vec::new();
    for (start, end) in sched.band_ranges() {
        if !(start..end).all(|d| is_loop_dim(sched, d)) {
            continue;
        }
        if !band_is_permutable(deps, sched, start, end) {
            continue;
        }
        let sizes: Vec<i64> = (0..end - start)
            .map(|i| tile_sizes[i % tile_sizes.len()].max(1))
            .collect();
        // A tile loop executes outside the band's point loops, so it is
        // parallel only when every dependence live at *band entry* has
        // zero distance on its dimension — a dependence carried by an
        // earlier dimension of the same band still crosses tiles.
        let live = live_at(deps, sched, start);
        let parallel: Vec<bool> = (start..end)
            .map(|d| {
                live.iter().all(|&e| {
                    let dep = &deps[e];
                    zero_distance(
                        dep,
                        &sched.stmt(dep.src).rows()[d],
                        &sched.stmt(dep.dst).rows()[d],
                    )
                })
            })
            .collect();
        tiling.push(TileBand {
            start,
            end,
            sizes,
            parallel,
        });
    }
    sched.set_tiling(tiling);
}

/// Moves a parallel point loop to the innermost position of its tiled
/// band (row swap, verified against the oracle).
fn intra_tile_vectorize(deps: &[Dependence], sched: &mut Schedule) {
    let tiling = sched.tiling().to_vec();
    for (ti, tb) in tiling.iter().enumerate() {
        let innermost = tb.end - 1;
        if sched.parallel()[innermost] {
            continue;
        }
        let Some(p) = (tb.start..innermost).rev().find(|&d| sched.parallel()[d]) else {
            continue;
        };
        let mut candidate = sched.clone();
        for s in 0..sched.num_statements() {
            let rows = sched.stmt(StmtId(s)).rows();
            let (a, b) = (rows[p].clone(), rows[innermost].clone());
            candidate.stmt_mut(StmtId(s)).set_row(p, b);
            candidate.stmt_mut(StmtId(s)).set_row(innermost, a);
        }
        // Tile metadata follows its row: swap the per-dimension size and
        // tile-parallel entries along with the rows.
        let mut tiling = candidate.tiling().to_vec();
        tiling[ti].sizes.swap(p - tb.start, innermost - tb.start);
        tiling[ti].parallel.swap(p - tb.start, innermost - tb.start);
        candidate.set_tiling(tiling);
        if schedule_is_legal(deps, &candidate) {
            *sched = candidate;
            recompute_parallel(deps, sched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PostProcess;
    use polytops_deps::analyze;
    use polytops_ir::{Aff, Scop, ScopBuilder};

    /// `for t for i A[i] = A[i-1] + A[i+1];` — the classic skewing case.
    fn jacobi() -> Scop {
        let mut b = ScopBuilder::new("jacobi");
        let t = b.param("T");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("t", Aff::val(0), t - 1);
        b.open_loop("i", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1])
            .read(a, &[Aff::var("i") + 1])
            .write(a, &[Aff::var("i")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    #[test]
    fn tiling_requires_permutability() {
        let scop = jacobi();
        let deps = analyze(&scop);
        let sched = crate::schedule(&scop, &crate::SchedulerConfig::default()).unwrap();
        // The engine's jacobi band is permutable (skewed by proximity);
        // tiling must record exactly one band over the loop dims.
        let mut tiled = sched.clone();
        tile(&deps, &mut tiled, &[16]);
        assert!(
            tiled
                .tiling()
                .iter()
                .all(|tb| band_is_permutable(&deps, &tiled, tb.start, tb.end)),
            "recorded bands must be permutable"
        );
    }

    #[test]
    fn recompute_parallel_matches_engine_flags() {
        let scop = jacobi();
        let deps = analyze(&scop);
        let mut sched = crate::schedule(&scop, &crate::SchedulerConfig::default()).unwrap();
        let engine_flags = sched.parallel().to_vec();
        recompute_parallel(&deps, &mut sched);
        assert_eq!(sched.parallel(), engine_flags.as_slice());
    }

    #[test]
    fn tile_loops_are_stricter_than_point_loops_about_parallelism() {
        // A[i][j] = A[i-1][j-1] + A[i-1][j+1]: pluto skews to (i, i+j).
        // Dimension 1 is point-parallel (both deps carried by dim 0) but
        // its TILE loop crosses the carried deps (distances (1,0)/(1,2)
        // after the skew land in different i+j tiles within one i tile),
        // so the tile loop must NOT be marked parallel.
        let mut b = ScopBuilder::new("skewed2d");
        let n = b.param("N");
        let a = b.array("A", &[n.clone(), n.clone()], 8);
        b.open_loop("i", Aff::val(1), n.clone() - 1);
        b.open_loop("j", Aff::val(1), n - 2);
        b.stmt("S0")
            .read(a, &[Aff::var("i") - 1, Aff::var("j") - 1])
            .read(a, &[Aff::var("i") - 1, Aff::var("j") + 1])
            .write(a, &[Aff::var("i"), Aff::var("j")])
            .add(&mut b);
        b.close_loop();
        b.close_loop();
        let scop = b.build().unwrap();
        let mut cfg = crate::SchedulerConfig::default();
        cfg.post.tile_sizes = vec![8, 8];
        let sched = crate::schedule(&scop, &cfg).unwrap();
        assert_eq!(sched.tiling().len(), 1, "band must tile");
        let tb = &sched.tiling()[0];
        assert!(
            sched.parallel()[tb.end - 1],
            "inner point dimension is parallel: {:?}",
            sched.parallel()
        );
        assert!(
            tb.parallel.iter().all(|&p| !p),
            "no tile loop may be parallel here: {:?}",
            tb.parallel
        );
    }

    #[test]
    fn apply_is_a_no_op_for_default_postprocess() {
        let scop = jacobi();
        let deps = analyze(&scop);
        let mut sched = crate::schedule(&scop, &crate::SchedulerConfig::default()).unwrap();
        let before = sched.clone();
        apply(&deps, &mut sched, &PostProcess::default());
        assert_eq!(sched, before);
    }
}
