//! The SCoP registry: cross-request persistence for the scheduler
//! service.
//!
//! A long-lived scheduler (the `polytopsd` daemon) sees the same kernels
//! again and again: a compiler front end re-schedules one SCoP under new
//! configurations every time its auto-tuning loop turns. The scenario
//! engine already amortizes dependence analysis and Farkas eliminations
//! *within* one [`ScenarioSet`](crate::scenario::ScenarioSet) run; this
//! module makes that state survive *across* runs — and across clients:
//!
//! * [`fingerprint`]/[`canonical_text`] give every SCoP a canonical
//!   identity that ignores its name and the order of accesses within a
//!   statement, so two clients submitting the same kernel (even with
//!   reads/writes listed in a different order, which would permute the
//!   analyzed dependence vector) land on the same entry;
//! * a [`ScopEntry`] keeps a SCoP resident together with its
//!   `Arc<Vec<Dependence>>` (the exact dependence analysis, done once
//!   ever) and one `Arc<FarkasCache>` per ILP variable layout (the same
//!   grouping rule the scenario engine applies within a run);
//! * the [`ScopRegistry`] dedupes SCoPs by canonical text, bounds
//!   residency with an LRU policy, and reports
//!   [`RegistryStats`] so callers can assert hits (the service
//!   benchmark's warm-vs-cold gate).
//!
//! # Determinism
//!
//! Scheduling a registry-resident SCoP is bit-identical to scheduling it
//! offline: a [`FarkasCache`] hit replays a constraint system equal to
//! what a fresh elimination would build (the PR 3 contract), the
//! dependence analysis is deterministic, and requests deduped onto one
//! entry are all scheduled against the entry's *representative* SCoP —
//! so the answer cannot depend on which client registered it first, nor
//! on how warm the caches already are.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use polytops_deps::{analyze, Dependence};
use polytops_ir::{parse_scop, print_scop, AccessKind, Scop, Subscript};
use polytops_math::ConstraintSystem;

use crate::config::SchedulerConfig;
use crate::error::ScheduleError;
use crate::pipeline::legality::FarkasCache;
use crate::space::IlpSpace;

/// The configuration fields that shape the ILP variable layout — SCoPs
/// only share a [`FarkasCache`] between configurations agreeing on all
/// three (the scenario engine's grouping rule).
pub type CacheLayout = (bool, bool, Vec<String>);

/// The layout key of a configuration.
pub fn layout_of(config: &SchedulerConfig) -> CacheLayout {
    (
        config.negative_coefficients,
        config.parametric_shift,
        config.new_variables.clone(),
    )
}

/// A tuning winner remembered for one SCoP under one tuning key
/// (machine model + budget; see `tune::learned_key`): the name of the
/// winning candidate in the deterministic candidate lattice, plus the
/// model score it won with. The full configuration is *not* stored —
/// the lattice is a pure function of (SCoP, machine, budget), so the
/// name alone re-derives it exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnedConfig {
    /// Candidate name in the tuner's lattice (e.g. `"pluto/t64+wave"`).
    pub winner: String,
    /// The model score ([`estimate_cycles`](polytops_machine::model))
    /// the winner was selected with.
    pub score: i64,
}

/// A registry-resident SCoP with its shared scheduling state.
#[derive(Debug)]
pub struct ScopEntry {
    name: String,
    fingerprint: u64,
    scop: Scop,
    deps: Arc<Vec<Dependence>>,
    /// One Farkas cache per ILP variable layout, created on first use.
    caches: Mutex<BTreeMap<CacheLayout, Arc<FarkasCache>>>,
    /// Remembered tuning winners, keyed by tuning key.
    learned: Mutex<BTreeMap<String, LearnedConfig>>,
}

impl ScopEntry {
    fn new(name: String, fingerprint: u64, scop: Scop) -> ScopEntry {
        let deps = Arc::new(analyze(&scop));
        ScopEntry {
            name,
            fingerprint,
            scop,
            deps,
            caches: Mutex::new(BTreeMap::new()),
            learned: Mutex::new(BTreeMap::new()),
        }
    }

    /// The name the SCoP was first registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The canonical fingerprint ([`fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The resident representative SCoP. Requests deduped onto this
    /// entry are scheduled against *this* value (not their own copy), so
    /// every client gets bit-identical answers.
    pub fn scop(&self) -> &Scop {
        &self.scop
    }

    /// The resident dependence analysis (computed once, at registration).
    pub fn deps(&self) -> Arc<Vec<Dependence>> {
        Arc::clone(&self.deps)
    }

    /// The resident Farkas cache for a configuration's variable layout,
    /// created on first use. Configurations with different layouts get
    /// independent caches (their Farkas systems differ).
    pub fn cache_for(&self, config: &SchedulerConfig) -> Arc<FarkasCache> {
        self.cache_for_layout(&layout_of(config))
    }

    /// [`cache_for`](ScopEntry::cache_for) by explicit layout key.
    pub fn cache_for_layout(&self, layout: &CacheLayout) -> Arc<FarkasCache> {
        let mut caches = self.caches.lock().expect("cache map lock");
        Arc::clone(
            caches
                .entry(layout.clone())
                .or_insert_with(|| Arc::new(FarkasCache::new(self.deps.len(), true))),
        )
    }

    /// How many distinct variable layouts have resident caches.
    pub fn layouts(&self) -> usize {
        self.caches.lock().expect("cache map lock").len()
    }

    /// The layout keys of every resident cache, in deterministic
    /// (`BTreeMap`) order — what a snapshot records so a restore can
    /// [`prewarm_layout`](ScopEntry::prewarm_layout) each one.
    pub fn layout_keys(&self) -> Vec<CacheLayout> {
        self.caches
            .lock()
            .expect("cache map lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Eagerly performs every Farkas elimination for `layout`, so later
    /// scheduling runs under that layout replay from the cache instead
    /// of paying fresh eliminations (the restore path's "serve warm"
    /// guarantee: a request against a restored entry reports
    /// `farkas_misses == 0`).
    ///
    /// The [`IlpSpace`] built here is exactly the one the solve stage
    /// builds for a configuration with this layout, so the cache's
    /// pinned-space check accepts the prewarmed entries. Idempotent:
    /// already-filled slots are replayed, not rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from an elimination (which would
    /// equally have failed when the entry was first scheduled).
    pub fn prewarm_layout(&self, layout: &CacheLayout) -> Result<(), ScheduleError> {
        let cache = self.cache_for_layout(layout);
        let &(negative, shift, ref vars) = layout;
        let space = IlpSpace::new(&self.scop, vars.clone(), self.deps.len(), negative, shift);
        for (e, dep) in self.deps.iter().enumerate() {
            // The appended rows are discarded: only the cache-slot fill
            // matters here.
            let mut sink = ConstraintSystem::new(space.total());
            cache.extend_with_validity(e, dep, &space, &mut sink)?;
            let mut sink = ConstraintSystem::new(space.total());
            cache.extend_with_proximity(e, dep, &space, &mut sink)?;
            let mut sink = ConstraintSystem::new(space.total());
            cache.extend_with_feautrier(e, dep, &space, &mut sink)?;
        }
        Ok(())
    }

    /// The remembered tuning winner for `key`, if any.
    pub fn learned_for(&self, key: &str) -> Option<LearnedConfig> {
        self.learned
            .lock()
            .expect("learned map lock")
            .get(key)
            .cloned()
    }

    /// Remembers `config` as the tuning winner for `key`. Returns
    /// whether the map changed (an identical re-record is a no-op, so
    /// the persistence layer can diff cheaply and journal replay is
    /// idempotent).
    pub fn learn(&self, key: &str, config: LearnedConfig) -> bool {
        let mut learned = self.learned.lock().expect("learned map lock");
        if learned.get(key) == Some(&config) {
            return false;
        }
        learned.insert(key.to_string(), config);
        true
    }

    /// Every remembered winner, in deterministic (`BTreeMap`) key order
    /// — what a snapshot records.
    pub fn learned_snapshot(&self) -> Vec<(String, LearnedConfig)> {
        self.learned
            .lock()
            .expect("learned map lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// How many tuning winners are remembered on this entry.
    pub fn learned_count(&self) -> usize {
        self.learned.lock().expect("learned map lock").len()
    }
}

/// One registry entry as captured by [`ScopRegistry::snapshot`]: the
/// representative SCoP serialized as polyscop exchange text (the format
/// round-trips exactly, and the dependence analysis plus every
/// [`FarkasCache`] rebuild deterministically from it) together with the
/// cache layouts that were resident at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The name the SCoP was first registered under.
    pub name: String,
    /// [`print_scop`] text of the representative SCoP.
    pub scop_text: String,
    /// Resident cache layouts, in deterministic order.
    pub layouts: Vec<CacheLayout>,
    /// Remembered tuning winners, in deterministic key order.
    pub learned: Vec<(String, LearnedConfig)>,
}

/// A point-in-time, self-contained image of a [`ScopRegistry`]:
/// entries in LRU order (coldest first), each reduced to canonical SCoP
/// text plus its resident cache layouts. Everything else — canonical
/// identity, fingerprints, dependence analyses, Farkas eliminations —
/// is a deterministic function of that text, which is what makes
/// snapshot → [`restore`](ScopRegistry::restore) → snapshot an exact
/// round trip.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    /// Entries in LRU order: front = coldest, back = warmest.
    pub entries: Vec<SnapshotEntry>,
}

/// What [`ScopRegistry::restore`] rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreReport {
    /// Entries registered (and re-analyzed) by the restore.
    pub entries: usize,
    /// Cache layouts prewarmed (every Farkas elimination re-run
    /// eagerly, off the serving path).
    pub layouts: usize,
    /// Tuning winners re-learned from the snapshot.
    pub learned: usize,
}

/// Registry counters, taken with [`ScopRegistry::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Resident entries right now.
    pub entries: usize,
    /// The LRU bound.
    pub capacity: usize,
    /// Resolutions answered by a resident entry.
    pub hits: usize,
    /// Resolutions that had to analyze a new SCoP.
    pub misses: usize,
    /// Entries dropped by the LRU bound.
    pub evictions: usize,
    /// Remembered tuning winners across all resident entries.
    pub learned: usize,
}

/// A bounded, thread-safe pool of [`ScopEntry`]s, keyed by canonical
/// SCoP identity with least-recently-used eviction.
///
/// # Example
///
/// ```
/// use polytops_core::registry::ScopRegistry;
/// use polytops_ir::{Aff, ScopBuilder};
///
/// // for (i = 1; i < N; i++) A[i] = A[i-1];
/// let mut b = ScopBuilder::new("chain");
/// let n = b.param("N");
/// let a = b.array("A", &[n.clone()], 8);
/// b.open_loop("i", Aff::val(1), n - 1);
/// b.stmt("S0")
///     .read(a, &[Aff::var("i") - 1])
///     .write(a, &[Aff::var("i")])
///     .add(&mut b);
/// b.close_loop();
/// let scop = b.build().unwrap();
///
/// let registry = ScopRegistry::new(64);
/// let (entry, hit) = registry.resolve("chain", &scop);
/// assert!(!hit); // first sight: analyzed and made resident
/// let (again, hit) = registry.resolve("chain", &scop);
/// assert!(hit); // resident: same deps, same caches, no re-analysis
/// assert!(std::sync::Arc::ptr_eq(&entry, &again));
/// ```
#[derive(Debug)]
pub struct ScopRegistry {
    /// Entries in LRU order: front = coldest, back = most recently used.
    lru: Mutex<Vec<(String, Arc<ScopEntry>)>>,
    capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl ScopRegistry {
    /// Creates a registry bounded to `capacity` resident SCoPs
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> ScopRegistry {
        ScopRegistry {
            lru: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Resolves a SCoP to its resident entry, registering (and
    /// analyzing) it on first sight. Returns the entry and whether it
    /// was already resident.
    ///
    /// Identity is the [`canonical_text`] of the SCoP — the name and the
    /// per-statement access order do not participate, so near-identical
    /// submissions dedupe. The returned entry's
    /// [`scop()`](ScopEntry::scop) is the *first-registered*
    /// representative; schedule that, not the argument, for bit-stable
    /// answers across clients.
    ///
    /// A hit moves the entry to the warm end of the LRU order; a miss
    /// may evict the coldest entry to keep the registry within its
    /// bound.
    pub fn resolve(&self, name: &str, scop: &Scop) -> (Arc<ScopEntry>, bool) {
        let canonical = canonical_text(scop);
        if let Some(entry) = self.lookup(&canonical) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (entry, true);
        }
        // Miss: run the dependence analysis *outside* the registry lock
        // (it can take the bulk of a cold request — holding the lock
        // would stall stats probes and serialize concurrent resolvers).
        // Two racing resolvers may both analyze; the re-check below
        // keeps only one entry, so answers stay bit-stable.
        let fp = fnv1a(canonical.as_bytes());
        let entry = Arc::new(ScopEntry::new(name.to_string(), fp, scop.clone()));
        let mut lru = self.lru.lock().expect("registry lock");
        if let Some(i) = lru.iter().position(|(key, _)| *key == canonical) {
            // A concurrent resolver registered it first; ours is wasted
            // work, theirs is the representative everyone shares.
            let pair = lru.remove(i);
            let resident = Arc::clone(&pair.1);
            lru.push(pair);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (resident, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        lru.push((canonical, Arc::clone(&entry)));
        if lru.len() > self.capacity {
            lru.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        (entry, false)
    }

    /// Looks up (and warms) an entry by canonical text.
    fn lookup(&self, canonical: &str) -> Option<Arc<ScopEntry>> {
        let mut lru = self.lru.lock().expect("registry lock");
        let i = lru.iter().position(|(key, _)| key == canonical)?;
        let pair = lru.remove(i);
        let entry = Arc::clone(&pair.1);
        lru.push(pair);
        Some(entry)
    }

    /// Captures the registry as a [`RegistrySnapshot`]: every resident
    /// entry in LRU order, reduced to canonical SCoP text plus resident
    /// cache layouts. The snapshot is a pure value — serialize it
    /// however persistence wants (the `polytopsd` daemon writes it as
    /// checksummed JSON; see `polytops_server`).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let lru = self.lru.lock().expect("registry lock");
        RegistrySnapshot {
            entries: lru
                .iter()
                .map(|(_, entry)| SnapshotEntry {
                    name: entry.name().to_string(),
                    scop_text: print_scop(entry.scop()),
                    layouts: entry.layout_keys(),
                    learned: entry.learned_snapshot(),
                })
                .collect(),
        }
    }

    /// Rebuilds registry state from a snapshot: each entry is parsed,
    /// registered through the normal [`resolve`](ScopRegistry::resolve)
    /// path (re-running its dependence analysis), and every recorded
    /// cache layout is [prewarmed](ScopEntry::prewarm_layout) so the
    /// first request after a restart replays instead of re-eliminating.
    ///
    /// Entries are applied in snapshot (LRU) order, so a restore into an
    /// empty registry reproduces the captured LRU order exactly; a
    /// registry with a *smaller* capacity simply evicts the coldest
    /// entries as it fills, like any admission sequence would.
    ///
    /// Restores count as ordinary misses in [`RegistryStats`] (the
    /// analyses really do run again); the warm-serving guarantee is
    /// about *Farkas eliminations during requests*, which a restored
    /// entry never pays.
    ///
    /// # Errors
    ///
    /// Returns a description of the first entry that fails to parse or
    /// prewarm, leaving previously restored entries resident.
    pub fn restore(&self, snapshot: &RegistrySnapshot) -> Result<RestoreReport, String> {
        let mut report = RestoreReport::default();
        for entry in &snapshot.entries {
            let scop = parse_scop(&entry.scop_text)
                .map_err(|e| format!("snapshot entry `{}`: {e}", entry.name))?;
            let (resident, hit) = self.resolve(&entry.name, &scop);
            if !hit {
                report.entries += 1;
            }
            for layout in &entry.layouts {
                resident
                    .prewarm_layout(layout)
                    .map_err(|e| format!("prewarm `{}`: {e}", entry.name))?;
                report.layouts += 1;
            }
            for (key, config) in &entry.learned {
                resident.learn(key, config.clone());
                report.learned += 1;
            }
        }
        Ok(report)
    }

    /// Looks up a resident entry by canonical fingerprint *without*
    /// warming its LRU position (the journal-replay path: replays must
    /// not perturb the order the snapshot captured). Fingerprints can
    /// collide in principle; a collision here would prewarm the wrong
    /// entry's caches — harmless, as prewarming never changes answers.
    pub fn find_by_fingerprint(&self, fingerprint: u64) -> Option<Arc<ScopEntry>> {
        let lru = self.lru.lock().expect("registry lock");
        lru.iter()
            .find(|(_, entry)| entry.fingerprint() == fingerprint)
            .map(|(_, entry)| Arc::clone(entry))
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lru.lock().expect("registry lock").len()
    }

    /// Whether no SCoP is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> RegistryStats {
        let learned = {
            let lru = self.lru.lock().expect("registry lock");
            lru.iter().map(|(_, e)| e.learned_count()).sum()
        };
        RegistryStats {
            entries: self.len(),
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            learned,
        }
    }
}

/// The canonical identity text of a SCoP: every scheduling-relevant
/// field — parameters, context, arrays, per-statement domains, β
/// vectors and accesses — serialized deterministically, with the SCoP
/// *name* omitted and each statement's accesses *sorted* (two
/// submissions differing only in access order produce permuted
/// dependence vectors, but describe the same scheduling problem).
pub fn canonical_text(scop: &Scop) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let join = |row: &[i64]| row.iter().map(i64::to_string).collect::<Vec<_>>().join(" ");
    let _ = writeln!(out, "params {}", scop.params.join(" "));
    for (kind, row) in scop.context.iter() {
        let _ = writeln!(out, "ctx {kind:?} {}", join(row));
    }
    for a in &scop.arrays {
        let _ = write!(out, "array {} {}", a.name, a.element_size);
        for d in &a.dims {
            let _ = write!(out, " [{}]", join(&d.to_row()));
        }
        out.push('\n');
    }
    for s in &scop.statements {
        let _ = writeln!(
            out,
            "stmt {} iters {} beta {} ops {}",
            s.name,
            s.iter_names.join(" "),
            join(&s.beta),
            s.compute_ops
        );
        for (kind, row) in s.domain.iter() {
            let _ = writeln!(out, "  dom {kind:?} {}", join(row));
        }
        // Accesses in canonical (sorted) order, not textual order.
        let mut accesses: Vec<String> = s
            .accesses
            .iter()
            .map(|a| {
                let mut line = format!(
                    "  {} {}",
                    match a.kind {
                        AccessKind::Read => "read",
                        AccessKind::Write => "write",
                    },
                    a.array.0
                );
                for sub in &a.subscripts {
                    match sub {
                        Subscript::Aff(e) => {
                            let _ = write!(line, " aff[{}]", join(&e.to_row()));
                        }
                        Subscript::FloorDiv(e, k) => {
                            let _ = write!(line, " div{k}[{}]", join(&e.to_row()));
                        }
                        Subscript::Mod(e, k) => {
                            let _ = write!(line, " mod{k}[{}]", join(&e.to_row()));
                        }
                    }
                }
                line
            })
            .collect();
        accesses.sort();
        for a in accesses {
            out.push_str(&a);
            out.push('\n');
        }
    }
    out
}

/// A 64-bit canonical fingerprint of a SCoP: FNV-1a over
/// [`canonical_text`]. Used for compact reporting (the registry dedupes
/// by the full canonical text, so a hash collision can mislabel a log
/// line but never merge two different SCoPs).
pub fn fingerprint(scop: &Scop) -> u64 {
    fnv1a(canonical_text(scop).as_bytes())
}

/// FNV-1a, 64 bit — the hash behind [`fingerprint`], exposed so the
/// persistence layer (snapshot checksums) and the consistent-hash
/// router share one definition.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
