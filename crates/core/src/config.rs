//! Scheduler configuration: the compiled form and the JSON interface of
//! the paper's Listing 2.
//!
//! Two interfaces exist, mirroring the paper:
//!
//! * **JSON** ([`SchedulerConfig::from_json`]) — static, per-dimension
//!   strategies (cost functions, custom constraints, fusion control,
//!   directives);
//! * **programmatic** (the [`Strategy`](crate::Strategy) trait) — dynamic
//!   strategies that inspect the partial schedule, the Rust analogue of
//!   the paper's C++ interface (Listing 3).

use crate::error::ScheduleError;
use crate::json::{self, Json};

/// A predefined or user-defined cost function (paper §III-A1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostFn {
    /// Pluto's dependence-distance bound `u·N + w` (temporal locality +
    /// outer parallelism).
    Proximity,
    /// Feautrier's satisfied-dependency maximization (inner parallelism).
    Feautrier,
    /// Tensor-scheduler-style spatial locality (stride-based interchange).
    Contiguity,
    /// Schedule the largest loops outermost (paper's BLF).
    BigLoopsFirst,
    /// A user variable declared in `new_variables`, minimized as-is.
    UserVar(String),
}

impl CostFn {
    fn parse(name: &str, user_vars: &[String]) -> Result<CostFn, ScheduleError> {
        match name {
            "proximity" => Ok(CostFn::Proximity),
            "feautrier" => Ok(CostFn::Feautrier),
            "contiguity" => Ok(CostFn::Contiguity),
            "bigLoopsFirst" | "big_loops_first" | "blf" => Ok(CostFn::BigLoopsFirst),
            other if user_vars.iter().any(|v| v == other) => Ok(CostFn::UserVar(other.to_string())),
            other => Err(ScheduleError::Config {
                detail: format!("unknown cost function `{other}`"),
            }),
        }
    }
}

/// Directive kind (paper §III-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// Prefer this loop outermost and parallel.
    Parallelize,
    /// Schedule this loop innermost, unfused, for vectorization.
    Vectorize,
    /// Keep this loop sequential (never mark parallel).
    Sequential,
}

/// A scheduling directive: a suggestion the scheduler satisfies unless it
/// would break legality (then it is discarded, per the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// What to do.
    pub kind: DirectiveKind,
    /// Target statements (`None` = all statements).
    pub stmts: Option<Vec<usize>>,
    /// Target iterator index (original loop nesting, outermost = 0).
    pub iterator: usize,
}

/// Explicit fusion/distribution control for one scheduling dimension
/// (paper §III-A3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionControl {
    /// Scheduling dimension where the distribution is forced.
    pub dimension: usize,
    /// Distribute every statement (groups ignored).
    pub total_distribution: bool,
    /// Ordered fusion groups: statements in one group stay fused, groups
    /// are distributed in the given order.
    pub groups: Vec<Vec<usize>>,
}

/// Automatic fusion heuristic used between SCCs when distribution is
/// forced by the algorithm (not by the user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionHeuristic {
    /// Cut between SCCs of different loop dimensionality (Pluto's
    /// `smartfuse`, the paper's default).
    #[default]
    SmartFuse,
    /// Never cut unless forced (isl-style maximal fusion).
    MaxFuse,
    /// Cut between all SCCs.
    NoFuse,
}

/// Per-dimension override map: a default value plus exceptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimMap<T> {
    default: T,
    overrides: Vec<(usize, T)>,
}

impl<T> DimMap<T> {
    /// Creates a map with only a default.
    pub fn uniform(default: T) -> DimMap<T> {
        DimMap {
            default,
            overrides: Vec::new(),
        }
    }

    /// Sets the value for a specific dimension.
    pub fn set(&mut self, dim: usize, value: T) {
        if let Some(e) = self.overrides.iter_mut().find(|(d, _)| *d == dim) {
            e.1 = value;
        } else {
            self.overrides.push((dim, value));
        }
    }

    /// Replaces the default.
    pub fn set_default(&mut self, value: T) {
        self.default = value;
    }

    /// Looks up the value for `dim`.
    pub fn get(&self, dim: usize) -> &T {
        self.overrides
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, v)| v)
            .unwrap_or(&self.default)
    }

    /// Iterates over every distinct value the map can produce: the
    /// default first, then each per-dimension override. Used e.g. by the
    /// scenario engine to prove a configuration sets no custom
    /// constraints anywhere before splitting a SCoP into components.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        std::iter::once(&self.default).chain(self.overrides.iter().map(|(_, v)| v))
    }
}

/// Post-processing options (paper Fig. 1's post-processing block).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostProcess {
    /// Tile sizes per band depth; empty disables tiling. The paper is
    /// explicit that tile-size *decisions* are external to the scheduler.
    pub tile_sizes: Vec<i64>,
    /// Skew tile loops into a wavefront when the outer band dimension is
    /// not parallel but an inner one is (Pluto §5.3).
    pub wavefront: bool,
    /// Reorder intra-tile loops to move a vectorizable loop innermost.
    pub intra_tile_vectorize: bool,
}

/// Complete scheduler configuration (compiled form).
///
/// Build one by hand, from a preset ([`crate::presets`]) or from JSON
/// ([`SchedulerConfig::from_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// User-declared ILP variables (usable in constraints and costs).
    pub new_variables: Vec<String>,
    /// Cost functions per scheduling dimension, in lexicographic priority
    /// order (leftmost minimized first).
    pub cost_functions: DimMap<Vec<CostFn>>,
    /// Custom constraint strings per dimension (parsed against the ILP
    /// space of each dimension; see [`crate::constraints`] for syntax).
    pub custom_constraints: DimMap<Vec<String>>,
    /// Explicit fusion/distribution controls.
    pub fusion: Vec<FusionControl>,
    /// Directives.
    pub directives: Vec<Directive>,
    /// Enable the auto-vectorization heuristic (paper §III-B2).
    pub auto_vectorize: bool,
    /// Fusion heuristic for algorithm-driven SCC cuts.
    pub fusion_heuristic: FusionHeuristic,
    /// Allow negative schedule coefficients (Pluto+).
    pub negative_coefficients: bool,
    /// Allow parameter coefficients in schedules (parametric shifting,
    /// Pluto+).
    pub parametric_shift: bool,
    /// Use the isl strategy: recompute a dimension with Feautrier's cost
    /// when the proximity solution is not parallel.
    pub isl_fallback: bool,
    /// Try the heuristic fast path before each dimension's ILP solve: a
    /// fusion + dimension-matching pass proposes per-statement
    /// permutation/shift rows from the dependence structure, validates
    /// them with the exact legality check, and falls back to the full
    /// ILP cascade for the dimension when validation fails. Ignores
    /// cost functions (a legal permutation wins over an optimal one),
    /// so large SCoPs schedule in time linear in the dependence count.
    pub heuristic_fast_path: bool,
    /// Box bound on iterator coefficients.
    pub coefficient_bound: i64,
    /// Box bound on schedule constants.
    pub constant_bound: i64,
    /// Box bound on the proximity `u`/`w` variables.
    pub bound_bound: i64,
    /// Parameter value estimate for extent-based heuristics (BLF).
    pub parameter_estimate: i64,
    /// Post-processing controls.
    pub post: PostProcess,
}

impl Default for SchedulerConfig {
    /// The pluto-style default: proximity cost, smartfuse, positive
    /// coefficients.
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            new_variables: Vec::new(),
            cost_functions: DimMap::uniform(vec![CostFn::Proximity]),
            custom_constraints: DimMap::uniform(Vec::new()),
            fusion: Vec::new(),
            directives: Vec::new(),
            auto_vectorize: false,
            fusion_heuristic: FusionHeuristic::SmartFuse,
            negative_coefficients: false,
            parametric_shift: false,
            isl_fallback: false,
            heuristic_fast_path: false,
            coefficient_bound: 4,
            constant_bound: 16,
            bound_bound: 32,
            parameter_estimate: 64,
            post: PostProcess::default(),
        }
    }
}

// ---------------------------------------------------------------------
// JSON interface (paper Listing 2), deserialized by hand from the
// in-tree parser (crate::json) — the build environment has no registry
// access for serde.
// ---------------------------------------------------------------------

/// `scheduling_dimension`: a concrete index or a name (only `"default"`
/// is meaningful).
enum JsonDim {
    Index(usize),
    Name(String),
}

fn cfg_err(detail: impl Into<String>) -> ScheduleError {
    ScheduleError::Config {
        detail: detail.into(),
    }
}

fn want_str(v: &Json, what: &str) -> Result<String, ScheduleError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| cfg_err(format!("`{what}` must be a string")))
}

fn want_bool(v: &Json, what: &str) -> Result<bool, ScheduleError> {
    v.as_bool()
        .ok_or_else(|| cfg_err(format!("`{what}` must be a boolean")))
}

fn want_int(v: &Json, what: &str) -> Result<i64, ScheduleError> {
    v.as_int()
        .ok_or_else(|| cfg_err(format!("`{what}` must be an integer")))
}

fn want_usize(v: &Json, what: &str) -> Result<usize, ScheduleError> {
    usize::try_from(want_int(v, what)?)
        .map_err(|_| cfg_err(format!("`{what}` must be non-negative")))
}

fn want_array<'a>(v: &'a Json, what: &str) -> Result<&'a [Json], ScheduleError> {
    v.as_array()
        .ok_or_else(|| cfg_err(format!("`{what}` must be an array")))
}

fn str_list(v: &Json, what: &str) -> Result<Vec<String>, ScheduleError> {
    want_array(v, what)?
        .iter()
        .map(|e| want_str(e, what))
        .collect()
}

fn int_list(v: &Json, what: &str) -> Result<Vec<i64>, ScheduleError> {
    want_array(v, what)?
        .iter()
        .map(|e| want_int(e, what))
        .collect()
}

fn want_dim(v: &Json) -> Result<JsonDim, ScheduleError> {
    match v {
        Json::Int(_) => Ok(JsonDim::Index(want_usize(v, "scheduling_dimension")?)),
        Json::Str(s) => Ok(JsonDim::Name(s.clone())),
        _ => Err(cfg_err("`scheduling_dimension` must be an index or a name")),
    }
}

fn parse_stmt_id(s: &str, context: &str) -> Result<usize, ScheduleError> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| cfg_err(format!("bad statement id `{s}` in {context}")))
}

impl SchedulerConfig {
    /// Parses the paper's JSON configuration format (Listing 2), plus the
    /// documented extension keys.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Config`] on malformed JSON, unknown cost
    /// functions, or unparsable numbers.
    ///
    /// # Examples
    ///
    /// ```
    /// use polytops_core::SchedulerConfig;
    ///
    /// let cfg = SchedulerConfig::from_json(r#"{
    ///   "scheduling_strategy": {
    ///     "ILP_construction": [
    ///       { "scheduling_dimension": "default",
    ///         "cost_functions": ["contiguity", "proximity"],
    ///         "constraints": ["no-skewing"] }
    ///     ]
    ///   }
    /// }"#).unwrap();
    /// assert!(!cfg.auto_vectorize);
    /// ```
    pub fn from_json(text: &str) -> Result<SchedulerConfig, ScheduleError> {
        let root = json::parse(text).map_err(cfg_err)?;
        let root = root
            .as_object()
            .ok_or_else(|| cfg_err("top level must be an object"))?;
        let js = root
            .get("scheduling_strategy")
            .ok_or_else(|| cfg_err("missing `scheduling_strategy`"))?
            .as_object()
            .ok_or_else(|| cfg_err("`scheduling_strategy` must be an object"))?;
        // The serde original used `deny_unknown_fields`; keep that.
        const KNOWN_KEYS: &[&str] = &[
            "new_variables",
            "ILP_construction",
            "custom_constraints",
            "fusion",
            "directives",
            "auto_vectorize",
            "fusion_heuristic",
            "negative_coefficients",
            "parametric_shift",
            "isl_fallback",
            "heuristic_fast_path",
            "coefficient_bound",
            "parameter_estimate",
            "tile_sizes",
            "wavefront",
            "intra_tile_vectorize",
        ];
        if let Some(unknown) = js.keys().find(|k| !KNOWN_KEYS.contains(&k.as_str())) {
            return Err(cfg_err(format!(
                "unknown field `{unknown}` in scheduling_strategy"
            )));
        }
        let new_variables = match js.get("new_variables") {
            Some(v) => str_list(v, "new_variables")?,
            None => Vec::new(),
        };
        let mut cfg = SchedulerConfig {
            new_variables: new_variables.clone(),
            ..SchedulerConfig::default()
        };
        let empty: &[Json] = &[];
        let entries = match js.get("ILP_construction") {
            Some(v) => want_array(v, "ILP_construction")?,
            None => empty,
        };
        for entry in entries {
            let obj = entry
                .as_object()
                .ok_or_else(|| cfg_err("ILP_construction entries must be objects"))?;
            let dim = want_dim(obj.get("scheduling_dimension").ok_or_else(|| {
                cfg_err("ILP_construction entry missing `scheduling_dimension`")
            })?)?;
            let names = match obj.get("cost_functions") {
                Some(v) => str_list(v, "cost_functions")?,
                None => Vec::new(),
            };
            let mut costs = Vec::with_capacity(names.len());
            for n in &names {
                costs.push(CostFn::parse(n, &new_variables)?);
            }
            // Listing 5 (right) also allows constraints in ILP entries.
            let constraints = match obj.get("constraints") {
                Some(v) => str_list(v, "constraints")?,
                None => Vec::new(),
            };
            match dim {
                JsonDim::Name(n) if n == "default" => {
                    cfg.cost_functions.set_default(costs);
                    if !constraints.is_empty() {
                        let mut cur = cfg.custom_constraints.get(usize::MAX).clone();
                        cur.extend(constraints);
                        cfg.custom_constraints.set_default(cur);
                    }
                }
                JsonDim::Index(d) => {
                    cfg.cost_functions.set(d, costs);
                    if !constraints.is_empty() {
                        cfg.custom_constraints.set(d, constraints);
                    }
                }
                JsonDim::Name(other) => {
                    return Err(cfg_err(format!("bad scheduling_dimension `{other}`")))
                }
            }
        }
        let entries = match js.get("custom_constraints") {
            Some(v) => want_array(v, "custom_constraints")?,
            None => empty,
        };
        for entry in entries {
            let obj = entry
                .as_object()
                .ok_or_else(|| cfg_err("custom_constraints entries must be objects"))?;
            let dim = want_dim(obj.get("scheduling_dimension").ok_or_else(|| {
                cfg_err("custom_constraints entry missing `scheduling_dimension`")
            })?)?;
            let constraints = str_list(
                obj.get("constraints")
                    .ok_or_else(|| cfg_err("custom_constraints entry missing `constraints`"))?,
                "constraints",
            )?;
            match dim {
                JsonDim::Name(n) if n == "default" => {
                    let mut cur = cfg.custom_constraints.get(usize::MAX).clone();
                    cur.extend(constraints);
                    cfg.custom_constraints.set_default(cur);
                }
                JsonDim::Index(d) => {
                    cfg.custom_constraints.set(d, constraints);
                }
                JsonDim::Name(other) => {
                    return Err(cfg_err(format!("bad scheduling_dimension `{other}`")))
                }
            }
        }
        let entries = match js.get("fusion") {
            Some(v) => want_array(v, "fusion")?,
            None => empty,
        };
        for entry in entries {
            let obj = entry
                .as_object()
                .ok_or_else(|| cfg_err("fusion entries must be objects"))?;
            let dimension = want_usize(
                obj.get("scheduling_dimension")
                    .ok_or_else(|| cfg_err("fusion entry missing `scheduling_dimension`"))?,
                "scheduling_dimension",
            )?;
            let total_distribution = match obj.get("total_distribution") {
                Some(v) => want_bool(v, "total_distribution")?,
                None => false,
            };
            let mut groups = Vec::new();
            if let Some(v) = obj.get("stmts_fusion") {
                for g in want_array(v, "stmts_fusion")? {
                    let names = str_list(g, "stmts_fusion")?;
                    let mut ids = Vec::with_capacity(names.len());
                    for s in &names {
                        ids.push(parse_stmt_id(s, "fusion")?);
                    }
                    groups.push(ids);
                }
            }
            cfg.fusion.push(FusionControl {
                dimension,
                total_distribution,
                groups,
            });
        }
        let entries = match js.get("directives") {
            Some(v) => want_array(v, "directives")?,
            None => empty,
        };
        for entry in entries {
            let obj = entry
                .as_object()
                .ok_or_else(|| cfg_err("directive entries must be objects"))?;
            let kind_name = want_str(
                obj.get("type")
                    .ok_or_else(|| cfg_err("directive missing `type`"))?,
                "type",
            )?;
            let kind = match kind_name.as_str() {
                "vectorize" => DirectiveKind::Vectorize,
                "parallelize" | "parallel" => DirectiveKind::Parallelize,
                "sequential" => DirectiveKind::Sequential,
                other => return Err(cfg_err(format!("unknown directive type `{other}`"))),
            };
            let stmts = match obj.get("stmts") {
                None => None,
                Some(v) => match want_str(v, "stmts")?.as_str() {
                    "all" => None,
                    list => {
                        let mut ids = Vec::new();
                        for s in list.split(',') {
                            ids.push(parse_stmt_id(s, "directive")?);
                        }
                        Some(ids)
                    }
                },
            };
            let iter_text = want_str(
                obj.get("iterator")
                    .ok_or_else(|| cfg_err("directive missing `iterator`"))?,
                "iterator",
            )?;
            let iterator = iter_text
                .trim()
                .parse::<usize>()
                .map_err(|_| cfg_err(format!("bad iterator `{iter_text}` in directive")))?;
            cfg.directives.push(Directive {
                kind,
                stmts,
                iterator,
            });
        }
        if let Some(v) = js.get("auto_vectorize") {
            cfg.auto_vectorize = want_bool(v, "auto_vectorize")?;
        }
        if let Some(v) = js.get("fusion_heuristic") {
            cfg.fusion_heuristic = match want_str(v, "fusion_heuristic")?.as_str() {
                "smartfuse" => FusionHeuristic::SmartFuse,
                "maxfuse" => FusionHeuristic::MaxFuse,
                "nofuse" => FusionHeuristic::NoFuse,
                other => return Err(cfg_err(format!("unknown fusion heuristic `{other}`"))),
            };
        }
        if let Some(v) = js.get("negative_coefficients") {
            cfg.negative_coefficients = want_bool(v, "negative_coefficients")?;
        }
        if let Some(v) = js.get("parametric_shift") {
            cfg.parametric_shift = want_bool(v, "parametric_shift")?;
        }
        if let Some(v) = js.get("isl_fallback") {
            cfg.isl_fallback = want_bool(v, "isl_fallback")?;
        }
        if let Some(v) = js.get("heuristic_fast_path") {
            cfg.heuristic_fast_path = want_bool(v, "heuristic_fast_path")?;
        }
        if let Some(v) = js.get("coefficient_bound") {
            cfg.coefficient_bound = want_int(v, "coefficient_bound")?;
        }
        if let Some(v) = js.get("parameter_estimate") {
            cfg.parameter_estimate = want_int(v, "parameter_estimate")?;
        }
        if let Some(v) = js.get("tile_sizes") {
            cfg.post.tile_sizes = int_list(v, "tile_sizes")?;
        }
        if let Some(v) = js.get("wavefront") {
            cfg.post.wavefront = want_bool(v, "wavefront")?;
        }
        if let Some(v) = js.get("intra_tile_vectorize") {
            cfg.post.intra_tile_vectorize = want_bool(v, "intra_tile_vectorize")?;
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing2_parses() {
        let cfg = SchedulerConfig::from_json(
            r#"{
          "scheduling_strategy": {
            "new_variables": ["x"],
            "ILP_construction": [
              { "scheduling_dimension": "default",
                "cost_functions": ["contiguity", "proximity", "x"] }
            ],
            "custom_constraints": [
              { "scheduling_dimension": "default",
                "constraints": ["x - Si_it_i >= 0"] }
            ],
            "fusion": [
              { "scheduling_dimension": 0,
                "total_distribution": false,
                "stmts_fusion": [["0", "1"], ["2"]] }
            ],
            "directives": [
              { "type": "vectorize", "stmts": "0", "iterator": "1" }
            ]
          }
        }"#,
        )
        .unwrap();
        assert_eq!(cfg.new_variables, vec!["x"]);
        assert_eq!(
            cfg.cost_functions.get(3),
            &vec![
                CostFn::Contiguity,
                CostFn::Proximity,
                CostFn::UserVar("x".into())
            ]
        );
        assert_eq!(
            cfg.custom_constraints.get(1),
            &vec!["x - Si_it_i >= 0".to_string()]
        );
        assert_eq!(cfg.fusion.len(), 1);
        assert_eq!(cfg.fusion[0].groups, vec![vec![0, 1], vec![2]]);
        assert_eq!(cfg.directives.len(), 1);
        assert_eq!(cfg.directives[0].kind, DirectiveKind::Vectorize);
        assert_eq!(cfg.directives[0].stmts, Some(vec![0]));
        assert_eq!(cfg.directives[0].iterator, 1);
    }

    #[test]
    fn per_dimension_overrides() {
        let cfg = SchedulerConfig::from_json(
            r#"{
          "scheduling_strategy": {
            "ILP_construction": [
              { "scheduling_dimension": "default", "cost_functions": ["proximity"] },
              { "scheduling_dimension": 0, "cost_functions": ["feautrier"] }
            ]
          }
        }"#,
        )
        .unwrap();
        assert_eq!(cfg.cost_functions.get(0), &vec![CostFn::Feautrier]);
        assert_eq!(cfg.cost_functions.get(1), &vec![CostFn::Proximity]);
    }

    #[test]
    fn unknown_cost_function_rejected() {
        let err = SchedulerConfig::from_json(
            r#"{"scheduling_strategy": {"ILP_construction": [
                {"scheduling_dimension": "default", "cost_functions": ["zzz"]}]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = SchedulerConfig::from_json(
            r#"{"scheduling_strategy": {"directives": [
                {"type": "frobnicate", "stmts": "0", "iterator": "0"}]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn extensions_parse() {
        let cfg = SchedulerConfig::from_json(
            r#"{"scheduling_strategy": {
                "auto_vectorize": true,
                "fusion_heuristic": "maxfuse",
                "negative_coefficients": true,
                "heuristic_fast_path": true,
                "tile_sizes": [32, 32],
                "wavefront": true }}"#,
        )
        .unwrap();
        assert!(cfg.auto_vectorize);
        assert_eq!(cfg.fusion_heuristic, FusionHeuristic::MaxFuse);
        assert!(cfg.negative_coefficients);
        assert!(cfg.heuristic_fast_path);
        assert_eq!(cfg.post.tile_sizes, vec![32, 32]);
        assert!(cfg.post.wavefront);
    }

    #[test]
    fn dimmap_lookup() {
        let mut m = DimMap::uniform(1);
        m.set(2, 42);
        assert_eq!(*m.get(0), 1);
        assert_eq!(*m.get(2), 42);
        m.set(2, 43);
        assert_eq!(*m.get(2), 43);
    }
}
