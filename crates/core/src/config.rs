//! Scheduler configuration: the compiled form and the JSON interface of
//! the paper's Listing 2.
//!
//! Two interfaces exist, mirroring the paper:
//!
//! * **JSON** ([`SchedulerConfig::from_json`]) — static, per-dimension
//!   strategies (cost functions, custom constraints, fusion control,
//!   directives);
//! * **programmatic** (the [`Strategy`](crate::Strategy) trait) — dynamic
//!   strategies that inspect the partial schedule, the Rust analogue of
//!   the paper's C++ interface (Listing 3).

use serde::Deserialize;

use crate::error::ScheduleError;

/// A predefined or user-defined cost function (paper §III-A1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostFn {
    /// Pluto's dependence-distance bound `u·N + w` (temporal locality +
    /// outer parallelism).
    Proximity,
    /// Feautrier's satisfied-dependency maximization (inner parallelism).
    Feautrier,
    /// Tensor-scheduler-style spatial locality (stride-based interchange).
    Contiguity,
    /// Schedule the largest loops outermost (paper's BLF).
    BigLoopsFirst,
    /// A user variable declared in `new_variables`, minimized as-is.
    UserVar(String),
}

impl CostFn {
    fn parse(name: &str, user_vars: &[String]) -> Result<CostFn, ScheduleError> {
        match name {
            "proximity" => Ok(CostFn::Proximity),
            "feautrier" => Ok(CostFn::Feautrier),
            "contiguity" => Ok(CostFn::Contiguity),
            "bigLoopsFirst" | "big_loops_first" | "blf" => Ok(CostFn::BigLoopsFirst),
            other if user_vars.iter().any(|v| v == other) => {
                Ok(CostFn::UserVar(other.to_string()))
            }
            other => Err(ScheduleError::Config {
                detail: format!("unknown cost function `{other}`"),
            }),
        }
    }
}

/// Directive kind (paper §III-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// Prefer this loop outermost and parallel.
    Parallelize,
    /// Schedule this loop innermost, unfused, for vectorization.
    Vectorize,
    /// Keep this loop sequential (never mark parallel).
    Sequential,
}

/// A scheduling directive: a suggestion the scheduler satisfies unless it
/// would break legality (then it is discarded, per the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// What to do.
    pub kind: DirectiveKind,
    /// Target statements (`None` = all statements).
    pub stmts: Option<Vec<usize>>,
    /// Target iterator index (original loop nesting, outermost = 0).
    pub iterator: usize,
}

/// Explicit fusion/distribution control for one scheduling dimension
/// (paper §III-A3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionControl {
    /// Scheduling dimension where the distribution is forced.
    pub dimension: usize,
    /// Distribute every statement (groups ignored).
    pub total_distribution: bool,
    /// Ordered fusion groups: statements in one group stay fused, groups
    /// are distributed in the given order.
    pub groups: Vec<Vec<usize>>,
}

/// Automatic fusion heuristic used between SCCs when distribution is
/// forced by the algorithm (not by the user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionHeuristic {
    /// Cut between SCCs of different loop dimensionality (Pluto's
    /// `smartfuse`, the paper's default).
    #[default]
    SmartFuse,
    /// Never cut unless forced (isl-style maximal fusion).
    MaxFuse,
    /// Cut between all SCCs.
    NoFuse,
}

/// Per-dimension override map: a default value plus exceptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimMap<T> {
    default: T,
    overrides: Vec<(usize, T)>,
}

impl<T> DimMap<T> {
    /// Creates a map with only a default.
    pub fn uniform(default: T) -> DimMap<T> {
        DimMap {
            default,
            overrides: Vec::new(),
        }
    }

    /// Sets the value for a specific dimension.
    pub fn set(&mut self, dim: usize, value: T) {
        if let Some(e) = self.overrides.iter_mut().find(|(d, _)| *d == dim) {
            e.1 = value;
        } else {
            self.overrides.push((dim, value));
        }
    }

    /// Replaces the default.
    pub fn set_default(&mut self, value: T) {
        self.default = value;
    }

    /// Looks up the value for `dim`.
    pub fn get(&self, dim: usize) -> &T {
        self.overrides
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, v)| v)
            .unwrap_or(&self.default)
    }
}

/// Post-processing options (paper Fig. 1's post-processing block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostProcess {
    /// Tile sizes per band depth; empty disables tiling. The paper is
    /// explicit that tile-size *decisions* are external to the scheduler.
    pub tile_sizes: Vec<i64>,
    /// Skew tile loops into a wavefront when the outer band dimension is
    /// not parallel but an inner one is (Pluto §5.3).
    pub wavefront: bool,
    /// Reorder intra-tile loops to move a vectorizable loop innermost.
    pub intra_tile_vectorize: bool,
}

impl Default for PostProcess {
    fn default() -> PostProcess {
        PostProcess {
            tile_sizes: Vec::new(),
            wavefront: false,
            intra_tile_vectorize: false,
        }
    }
}

/// Complete scheduler configuration (compiled form).
///
/// Build one by hand, from a preset ([`crate::presets`]) or from JSON
/// ([`SchedulerConfig::from_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// User-declared ILP variables (usable in constraints and costs).
    pub new_variables: Vec<String>,
    /// Cost functions per scheduling dimension, in lexicographic priority
    /// order (leftmost minimized first).
    pub cost_functions: DimMap<Vec<CostFn>>,
    /// Custom constraint strings per dimension (parsed against the ILP
    /// space of each dimension; see [`crate::constraints`] for syntax).
    pub custom_constraints: DimMap<Vec<String>>,
    /// Explicit fusion/distribution controls.
    pub fusion: Vec<FusionControl>,
    /// Directives.
    pub directives: Vec<Directive>,
    /// Enable the auto-vectorization heuristic (paper §III-B2).
    pub auto_vectorize: bool,
    /// Fusion heuristic for algorithm-driven SCC cuts.
    pub fusion_heuristic: FusionHeuristic,
    /// Allow negative schedule coefficients (Pluto+).
    pub negative_coefficients: bool,
    /// Allow parameter coefficients in schedules (parametric shifting,
    /// Pluto+).
    pub parametric_shift: bool,
    /// Use the isl strategy: recompute a dimension with Feautrier's cost
    /// when the proximity solution is not parallel.
    pub isl_fallback: bool,
    /// Box bound on iterator coefficients.
    pub coefficient_bound: i64,
    /// Box bound on schedule constants.
    pub constant_bound: i64,
    /// Box bound on the proximity `u`/`w` variables.
    pub bound_bound: i64,
    /// Parameter value estimate for extent-based heuristics (BLF).
    pub parameter_estimate: i64,
    /// Post-processing controls.
    pub post: PostProcess,
}

impl Default for SchedulerConfig {
    /// The pluto-style default: proximity cost, smartfuse, positive
    /// coefficients.
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            new_variables: Vec::new(),
            cost_functions: DimMap::uniform(vec![CostFn::Proximity]),
            custom_constraints: DimMap::uniform(Vec::new()),
            fusion: Vec::new(),
            directives: Vec::new(),
            auto_vectorize: false,
            fusion_heuristic: FusionHeuristic::SmartFuse,
            negative_coefficients: false,
            parametric_shift: false,
            isl_fallback: false,
            coefficient_bound: 4,
            constant_bound: 16,
            bound_bound: 32,
            parameter_estimate: 64,
            post: PostProcess::default(),
        }
    }
}

// ---------------------------------------------------------------------
// JSON interface (paper Listing 2).
// ---------------------------------------------------------------------

#[derive(Deserialize)]
struct JsonRoot {
    scheduling_strategy: JsonStrategy,
}

#[derive(Deserialize, Default)]
#[serde(deny_unknown_fields)]
struct JsonStrategy {
    #[serde(default)]
    new_variables: Vec<String>,
    #[serde(rename = "ILP_construction", default)]
    ilp_construction: Vec<JsonIlpDim>,
    #[serde(default)]
    custom_constraints: Vec<JsonConstraints>,
    #[serde(default)]
    fusion: Vec<JsonFusion>,
    #[serde(default)]
    directives: Vec<JsonDirective>,
    // --- extensions beyond Listing 2 (documented in the crate docs) ---
    #[serde(default)]
    auto_vectorize: Option<bool>,
    #[serde(default)]
    fusion_heuristic: Option<String>,
    #[serde(default)]
    negative_coefficients: Option<bool>,
    #[serde(default)]
    parametric_shift: Option<bool>,
    #[serde(default)]
    isl_fallback: Option<bool>,
    #[serde(default)]
    coefficient_bound: Option<i64>,
    #[serde(default)]
    parameter_estimate: Option<i64>,
    #[serde(default)]
    tile_sizes: Option<Vec<i64>>,
    #[serde(default)]
    wavefront: Option<bool>,
    #[serde(default)]
    intra_tile_vectorize: Option<bool>,
}

#[derive(Deserialize)]
#[serde(untagged)]
enum JsonDim {
    Index(usize),
    Name(String),
}

#[derive(Deserialize)]
struct JsonIlpDim {
    scheduling_dimension: JsonDim,
    #[serde(default)]
    cost_functions: Vec<String>,
    /// Listing 5 (right) also allows constraints in ILP entries.
    #[serde(default)]
    constraints: Vec<String>,
}

#[derive(Deserialize)]
struct JsonConstraints {
    scheduling_dimension: JsonDim,
    constraints: Vec<String>,
}

#[derive(Deserialize)]
struct JsonFusion {
    scheduling_dimension: usize,
    #[serde(default)]
    total_distribution: bool,
    #[serde(default)]
    stmts_fusion: Vec<Vec<String>>,
}

#[derive(Deserialize)]
struct JsonDirective {
    #[serde(rename = "type")]
    kind: String,
    #[serde(default)]
    stmts: Option<String>,
    #[serde(default)]
    iterator: String,
}

impl SchedulerConfig {
    /// Parses the paper's JSON configuration format (Listing 2), plus the
    /// documented extension keys.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Config`] on malformed JSON, unknown cost
    /// functions, or unparsable numbers.
    ///
    /// # Examples
    ///
    /// ```
    /// use polytops::SchedulerConfig;
    ///
    /// let cfg = SchedulerConfig::from_json(r#"{
    ///   "scheduling_strategy": {
    ///     "ILP_construction": [
    ///       { "scheduling_dimension": "default",
    ///         "cost_functions": ["contiguity", "proximity"],
    ///         "constraints": ["no-skewing"] }
    ///     ]
    ///   }
    /// }"#).unwrap();
    /// assert!(!cfg.auto_vectorize);
    /// ```
    pub fn from_json(text: &str) -> Result<SchedulerConfig, ScheduleError> {
        let root: JsonRoot =
            serde_json::from_str(text).map_err(|e| ScheduleError::Config {
                detail: e.to_string(),
            })?;
        let js = root.scheduling_strategy;
        let mut cfg = SchedulerConfig {
            new_variables: js.new_variables.clone(),
            ..SchedulerConfig::default()
        };
        for entry in &js.ilp_construction {
            let costs: Result<Vec<CostFn>, ScheduleError> = entry
                .cost_functions
                .iter()
                .map(|n| CostFn::parse(n, &js.new_variables))
                .collect();
            let costs = costs?;
            match &entry.scheduling_dimension {
                JsonDim::Name(n) if n == "default" => {
                    cfg.cost_functions.set_default(costs);
                    if !entry.constraints.is_empty() {
                        let mut cur = cfg.custom_constraints.get(usize::MAX).clone();
                        cur.extend(entry.constraints.iter().cloned());
                        cfg.custom_constraints.set_default(cur);
                    }
                }
                JsonDim::Index(d) => {
                    cfg.cost_functions.set(*d, costs);
                    if !entry.constraints.is_empty() {
                        cfg.custom_constraints.set(*d, entry.constraints.clone());
                    }
                }
                JsonDim::Name(other) => {
                    return Err(ScheduleError::Config {
                        detail: format!("bad scheduling_dimension `{other}`"),
                    })
                }
            }
        }
        for entry in &js.custom_constraints {
            match &entry.scheduling_dimension {
                JsonDim::Name(n) if n == "default" => {
                    let mut cur = cfg.custom_constraints.get(usize::MAX).clone();
                    cur.extend(entry.constraints.iter().cloned());
                    cfg.custom_constraints.set_default(cur);
                }
                JsonDim::Index(d) => {
                    cfg.custom_constraints.set(*d, entry.constraints.clone());
                }
                JsonDim::Name(other) => {
                    return Err(ScheduleError::Config {
                        detail: format!("bad scheduling_dimension `{other}`"),
                    })
                }
            }
        }
        for f in &js.fusion {
            let groups: Result<Vec<Vec<usize>>, ScheduleError> = f
                .stmts_fusion
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|s| {
                            s.parse::<usize>().map_err(|_| ScheduleError::Config {
                                detail: format!("bad statement id `{s}` in fusion"),
                            })
                        })
                        .collect()
                })
                .collect();
            cfg.fusion.push(FusionControl {
                dimension: f.scheduling_dimension,
                total_distribution: f.total_distribution,
                groups: groups?,
            });
        }
        for d in &js.directives {
            let kind = match d.kind.as_str() {
                "vectorize" => DirectiveKind::Vectorize,
                "parallelize" | "parallel" => DirectiveKind::Parallelize,
                "sequential" => DirectiveKind::Sequential,
                other => {
                    return Err(ScheduleError::Config {
                        detail: format!("unknown directive type `{other}`"),
                    })
                }
            };
            let stmts = match d.stmts.as_deref() {
                None | Some("all") => None,
                Some(list) => {
                    let ids: Result<Vec<usize>, ScheduleError> = list
                        .split(',')
                        .map(|s| {
                            s.trim().parse::<usize>().map_err(|_| ScheduleError::Config {
                                detail: format!("bad statement id `{s}` in directive"),
                            })
                        })
                        .collect();
                    Some(ids?)
                }
            };
            let iterator = d.iterator.trim().parse::<usize>().map_err(|_| {
                ScheduleError::Config {
                    detail: format!("bad iterator `{}` in directive", d.iterator),
                }
            })?;
            cfg.directives.push(Directive {
                kind,
                stmts,
                iterator,
            });
        }
        if let Some(v) = js.auto_vectorize {
            cfg.auto_vectorize = v;
        }
        if let Some(h) = &js.fusion_heuristic {
            cfg.fusion_heuristic = match h.as_str() {
                "smartfuse" => FusionHeuristic::SmartFuse,
                "maxfuse" => FusionHeuristic::MaxFuse,
                "nofuse" => FusionHeuristic::NoFuse,
                other => {
                    return Err(ScheduleError::Config {
                        detail: format!("unknown fusion heuristic `{other}`"),
                    })
                }
            };
        }
        if let Some(v) = js.negative_coefficients {
            cfg.negative_coefficients = v;
        }
        if let Some(v) = js.parametric_shift {
            cfg.parametric_shift = v;
        }
        if let Some(v) = js.isl_fallback {
            cfg.isl_fallback = v;
        }
        if let Some(v) = js.coefficient_bound {
            cfg.coefficient_bound = v;
        }
        if let Some(v) = js.parameter_estimate {
            cfg.parameter_estimate = v;
        }
        if let Some(v) = js.tile_sizes {
            cfg.post.tile_sizes = v;
        }
        if let Some(v) = js.wavefront {
            cfg.post.wavefront = v;
        }
        if let Some(v) = js.intra_tile_vectorize {
            cfg.post.intra_tile_vectorize = v;
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing2_parses() {
        let cfg = SchedulerConfig::from_json(
            r#"{
          "scheduling_strategy": {
            "new_variables": ["x"],
            "ILP_construction": [
              { "scheduling_dimension": "default",
                "cost_functions": ["contiguity", "proximity", "x"] }
            ],
            "custom_constraints": [
              { "scheduling_dimension": "default",
                "constraints": ["x - Si_it_i >= 0"] }
            ],
            "fusion": [
              { "scheduling_dimension": 0,
                "total_distribution": false,
                "stmts_fusion": [["0", "1"], ["2"]] }
            ],
            "directives": [
              { "type": "vectorize", "stmts": "0", "iterator": "1" }
            ]
          }
        }"#,
        )
        .unwrap();
        assert_eq!(cfg.new_variables, vec!["x"]);
        assert_eq!(
            cfg.cost_functions.get(3),
            &vec![
                CostFn::Contiguity,
                CostFn::Proximity,
                CostFn::UserVar("x".into())
            ]
        );
        assert_eq!(cfg.custom_constraints.get(1), &vec!["x - Si_it_i >= 0".to_string()]);
        assert_eq!(cfg.fusion.len(), 1);
        assert_eq!(cfg.fusion[0].groups, vec![vec![0, 1], vec![2]]);
        assert_eq!(cfg.directives.len(), 1);
        assert_eq!(cfg.directives[0].kind, DirectiveKind::Vectorize);
        assert_eq!(cfg.directives[0].stmts, Some(vec![0]));
        assert_eq!(cfg.directives[0].iterator, 1);
    }

    #[test]
    fn per_dimension_overrides() {
        let cfg = SchedulerConfig::from_json(
            r#"{
          "scheduling_strategy": {
            "ILP_construction": [
              { "scheduling_dimension": "default", "cost_functions": ["proximity"] },
              { "scheduling_dimension": 0, "cost_functions": ["feautrier"] }
            ]
          }
        }"#,
        )
        .unwrap();
        assert_eq!(cfg.cost_functions.get(0), &vec![CostFn::Feautrier]);
        assert_eq!(cfg.cost_functions.get(1), &vec![CostFn::Proximity]);
    }

    #[test]
    fn unknown_cost_function_rejected() {
        let err = SchedulerConfig::from_json(
            r#"{"scheduling_strategy": {"ILP_construction": [
                {"scheduling_dimension": "default", "cost_functions": ["zzz"]}]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = SchedulerConfig::from_json(
            r#"{"scheduling_strategy": {"directives": [
                {"type": "frobnicate", "stmts": "0", "iterator": "0"}]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn extensions_parse() {
        let cfg = SchedulerConfig::from_json(
            r#"{"scheduling_strategy": {
                "auto_vectorize": true,
                "fusion_heuristic": "maxfuse",
                "negative_coefficients": true,
                "tile_sizes": [32, 32],
                "wavefront": true }}"#,
        )
        .unwrap();
        assert!(cfg.auto_vectorize);
        assert_eq!(cfg.fusion_heuristic, FusionHeuristic::MaxFuse);
        assert!(cfg.negative_coefficients);
        assert_eq!(cfg.post.tile_sizes, vec![32, 32]);
        assert!(cfg.post.wavefront);
    }

    #[test]
    fn dimmap_lookup() {
        let mut m = DimMap::uniform(1);
        m.set(2, 42);
        assert_eq!(*m.get(0), 1);
        assert_eq!(*m.get(2), 42);
        m.set(2, 43);
        assert_eq!(*m.get(2), 43);
    }
}
