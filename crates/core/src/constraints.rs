//! The custom-constraint mini-language of the paper (§III-A2).
//!
//! Constraints are affine (in)equalities over the current dimension's ILP
//! variables. Coefficients of the transformation vectors are addressed as
//!
//! ```text
//! S<stmt>_<kind>_<idx>      e.g.  S0_it_1, S3_par_0, S2_cst
//! ```
//!
//! where `<kind>` is `it` (iterator coefficients `T_it`), `par`
//! (parameter coefficients `T_par`) or `cst` (the constant `T_cst`, which
//! takes no index). Replacing `<stmt>` or `<idx>` with the wildcard `i`
//! sums over all statements / indices, so the paper's example
//! `S3_it_i <= 1` means `Σ_k T_it_k(S3) ≤ 1` — i.e. no skewing for S3.
//! User variables declared in `new_variables` may appear by name. The
//! shorthand keyword `no-skewing` expands to one such constraint per
//! statement.
//!
//! Grammar: `expr (>=|<=|=|==) expr` with `expr` a sum of optionally
//! `const *`-scaled atoms.

use polytops_math::RowKind;

use crate::error::ScheduleError;
use crate::space::IlpSpace;

/// A parsed constraint row over `space.total() + 1` columns.
pub type ConstraintRow = (RowKind, Vec<i64>);

/// Parses a list of constraint strings against an ILP space.
///
/// # Errors
///
/// Returns [`ScheduleError::ConstraintSyntax`] with the offending text.
///
/// # Examples
///
/// ```
/// use polytops_core::{constraints::parse_constraints, space::IlpSpace};
/// use polytops_ir::{Aff, ScopBuilder};
///
/// let mut b = ScopBuilder::new("k");
/// let n = b.param("N");
/// let a = b.array("A", &[n.clone()], 8);
/// b.open_loop("i", Aff::val(0), n - 1);
/// b.stmt("S0").write(a, &[Aff::var("i")]).add(&mut b);
/// b.close_loop();
/// let scop = b.build().unwrap();
/// let space = IlpSpace::new(&scop, vec![], 0, false, false);
/// let rows = parse_constraints(&["S0_it_0 >= 1".to_string()], &space).unwrap();
/// assert_eq!(rows.len(), 1);
/// ```
pub fn parse_constraints(
    texts: &[String],
    space: &IlpSpace,
) -> Result<Vec<ConstraintRow>, ScheduleError> {
    let mut out = Vec::new();
    for text in texts {
        if text.trim() == "no-skewing" {
            // Per statement: sum of iterator coefficients <= 1.
            for s in 0..space.stmts.len() {
                let mut row = vec![0i64; space.total() + 1];
                for i in 0..space.stmts[s].depth {
                    space.add_iter_coeff(&mut row, s, i, -1);
                }
                row[space.total()] = 1; // 1 - Σ T_it >= 0
                out.push((RowKind::Ineq, row));
            }
            continue;
        }
        out.push(parse_one(text, space)?);
    }
    Ok(out)
}

fn err(text: &str, detail: impl Into<String>) -> ScheduleError {
    ScheduleError::ConstraintSyntax {
        text: text.to_string(),
        detail: detail.into(),
    }
}

/// Splits on the comparison operator and combines both sides.
fn parse_one(text: &str, space: &IlpSpace) -> Result<ConstraintRow, ScheduleError> {
    let (op, lhs_txt, rhs_txt) =
        split_relop(text).ok_or_else(|| err(text, "expected one of `>=`, `<=`, `=`, `==`"))?;
    let lhs = parse_expr(lhs_txt, text, space)?;
    let rhs = parse_expr(rhs_txt, text, space)?;
    let n = space.total();
    let mut row = vec![0i64; n + 1];
    match op {
        ">=" => {
            for k in 0..=n {
                row[k] = lhs[k] - rhs[k];
            }
            Ok((RowKind::Ineq, row))
        }
        "<=" => {
            for k in 0..=n {
                row[k] = rhs[k] - lhs[k];
            }
            Ok((RowKind::Ineq, row))
        }
        "=" | "==" => {
            for k in 0..=n {
                row[k] = lhs[k] - rhs[k];
            }
            Ok((RowKind::Eq, row))
        }
        _ => unreachable!(),
    }
}

fn split_relop(text: &str) -> Option<(&'static str, &str, &str)> {
    for op in [">=", "<=", "=="] {
        if let Some(pos) = text.find(op) {
            return Some((
                if op == "==" { "=" } else { op },
                &text[..pos],
                &text[pos + 2..],
            ));
        }
    }
    // Single `=` (not part of >= / <=).
    if let Some(pos) = text.find('=') {
        let before = text.as_bytes().get(pos.wrapping_sub(1)).copied();
        if before != Some(b'>') && before != Some(b'<') {
            return Some(("=", &text[..pos], &text[pos + 1..]));
        }
    }
    None
}

/// Parses a sum of terms into a dense row (coefficients + constant).
fn parse_expr(expr: &str, whole: &str, space: &IlpSpace) -> Result<Vec<i64>, ScheduleError> {
    let mut row = vec![0i64; space.total() + 1];
    let toks = tokenize(expr, whole)?;
    let mut i = 0usize;
    let mut sign: i64 = 1;
    let mut expect_term = true;
    while i < toks.len() {
        match &toks[i] {
            Token::Plus => {
                if expect_term {
                    return Err(err(whole, "unexpected `+`"));
                }
                sign = 1;
                expect_term = true;
                i += 1;
            }
            Token::Minus => {
                if expect_term {
                    sign = -sign;
                } else {
                    sign = -1;
                }
                expect_term = true;
                i += 1;
            }
            _ if expect_term => {
                // term := int [* atom] | atom [* int]
                let (coeff, atom, advance) = read_term(&toks[i..], whole)?;
                apply_atom(&mut row, sign * coeff, &atom, whole, space)?;
                i += advance;
                sign = 1;
                expect_term = false;
            }
            other => {
                return Err(err(whole, format!("unexpected token {other:?}")));
            }
        }
    }
    if expect_term && !toks.is_empty() {
        return Err(err(whole, "dangling operator"));
    }
    Ok(row)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Int(i64),
    Ident(String),
    Plus,
    Minus,
    Star,
}

fn tokenize(expr: &str, whole: &str) -> Result<Vec<Token>, ScheduleError> {
    let mut out = Vec::new();
    let mut chars = expr.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '-' => {
                chars.next();
                out.push(Token::Minus);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '0'..='9' => {
                let mut v: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(dv) = d.to_digit(10) {
                        v = v * 10 + dv as i64;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(name));
            }
            other => return Err(err(whole, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

/// Reads one term starting at `toks[0]`; returns `(coefficient, atom
/// name or empty for pure constant, tokens consumed)`.
fn read_term(toks: &[Token], whole: &str) -> Result<(i64, String, usize), ScheduleError> {
    match &toks[0] {
        Token::Int(v) => {
            if toks.get(1) == Some(&Token::Star) {
                match toks.get(2) {
                    Some(Token::Ident(name)) => Ok((*v, name.clone(), 3)),
                    _ => Err(err(whole, "expected identifier after `*`")),
                }
            } else {
                Ok((*v, String::new(), 1))
            }
        }
        Token::Ident(name) => {
            if toks.get(1) == Some(&Token::Star) {
                match toks.get(2) {
                    Some(Token::Int(v)) => Ok((*v, name.clone(), 3)),
                    _ => Err(err(whole, "expected integer after `*`")),
                }
            } else {
                Ok((1, name.clone(), 1))
            }
        }
        other => Err(err(whole, format!("unexpected token {other:?}"))),
    }
}

/// Adds `coeff * atom` into the row. Empty atom = constant.
fn apply_atom(
    row: &mut [i64],
    coeff: i64,
    atom: &str,
    whole: &str,
    space: &IlpSpace,
) -> Result<(), ScheduleError> {
    if atom.is_empty() {
        *row.last_mut().expect("row has constant column") += coeff;
        return Ok(());
    }
    // Transformation coefficient reference?
    if let Some(rest) = atom.strip_prefix('S') {
        let parts: Vec<&str> = rest.split('_').collect();
        if parts.len() >= 2 && matches!(parts[1], "it" | "par" | "cst") {
            let stmts: Vec<usize> = if parts[0] == "i" {
                (0..space.stmts.len()).collect()
            } else {
                let id: usize = parts[0]
                    .parse()
                    .map_err(|_| err(whole, format!("bad statement id `{}`", parts[0])))?;
                if id >= space.stmts.len() {
                    return Err(err(whole, format!("statement {id} out of range")));
                }
                vec![id]
            };
            match parts[1] {
                "cst" => {
                    for &s in &stmts {
                        space.add_const_coeff(row, s, coeff);
                    }
                }
                kind => {
                    let idx_part = parts.get(2).copied().unwrap_or("i");
                    for &s in &stmts {
                        let count = if kind == "it" {
                            space.stmts[s].depth
                        } else {
                            space.nparams
                        };
                        let idxs: Vec<usize> = if idx_part == "i" {
                            (0..count).collect()
                        } else {
                            let k: usize = idx_part
                                .parse()
                                .map_err(|_| err(whole, format!("bad index `{idx_part}`")))?;
                            if k >= count {
                                // Out-of-range indices for *this* statement
                                // are skipped when addressing via wildcards
                                // would differ per statement; a direct
                                // reference is an error.
                                if parts[0] == "i" {
                                    continue;
                                }
                                return Err(err(whole, format!("index {k} out of range for S{s}")));
                            }
                            vec![k]
                        };
                        for k in idxs {
                            if kind == "it" {
                                space.add_iter_coeff(row, s, k, coeff);
                            } else {
                                space.add_param_coeff(row, s, k, coeff);
                            }
                        }
                    }
                }
            }
            return Ok(());
        }
    }
    // User variable?
    if let Some(v) = space.user(atom) {
        row[v] += coeff;
        return Ok(());
    }
    Err(err(whole, format!("unknown name `{atom}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytops_ir::{Aff, Scop, ScopBuilder};

    fn scop2() -> Scop {
        let mut b = ScopBuilder::new("two");
        let n = b.param("N");
        let a = b.array("A", &[n.clone()], 8);
        b.open_loop("i", Aff::val(0), n.clone() - 1);
        b.open_loop("j", Aff::val(0), n - 1);
        b.stmt("S0").write(a, &[Aff::var("i")]).add(&mut b);
        b.stmt("S1").write(a, &[Aff::var("j")]).add(&mut b);
        b.close_loop();
        b.close_loop();
        b.build().unwrap()
    }

    fn space() -> IlpSpace {
        IlpSpace::new(&scop2(), vec!["x".into()], 0, false, false)
    }

    #[test]
    fn single_coefficient() {
        let sp = space();
        let rows = parse_constraints(&["S0_it_1 >= 1".into()], &sp).unwrap();
        let (kind, row) = &rows[0];
        assert_eq!(*kind, RowKind::Ineq);
        // Column for S0 it[1] must be +1, constant -1.
        let mut expect = vec![0i64; sp.total() + 1];
        sp.add_iter_coeff(&mut expect, 0, 1, 1);
        expect[sp.total()] = -1;
        assert_eq!(row, &expect);
    }

    #[test]
    fn wildcard_sums_iterators() {
        let sp = space();
        // Paper example: S0_it_i <= 1 (no skewing for S0).
        let rows = parse_constraints(&["S0_it_i <= 1".into()], &sp).unwrap();
        let (_, row) = &rows[0];
        let mut expect = vec![0i64; sp.total() + 1];
        sp.add_iter_coeff(&mut expect, 0, 0, -1);
        sp.add_iter_coeff(&mut expect, 0, 1, -1);
        expect[sp.total()] = 1;
        assert_eq!(row, &expect);
    }

    #[test]
    fn statement_wildcard() {
        let sp = space();
        let rows = parse_constraints(&["Si_cst >= 0".into()], &sp).unwrap();
        let (_, row) = &rows[0];
        let mut expect = vec![0i64; sp.total() + 1];
        sp.add_const_coeff(&mut expect, 0, 1);
        sp.add_const_coeff(&mut expect, 1, 1);
        assert_eq!(row, &expect);
    }

    #[test]
    fn user_variable_and_arithmetic() {
        let sp = space();
        let rows = parse_constraints(&["x - S0_it_0 >= 0".into()], &sp).unwrap();
        let (_, row) = &rows[0];
        let mut expect = vec![0i64; sp.total() + 1];
        expect[sp.user("x").unwrap()] = 1;
        sp.add_iter_coeff(&mut expect, 0, 0, -1);
        assert_eq!(row, &expect);
    }

    #[test]
    fn equality_and_scaling() {
        let sp = space();
        let rows = parse_constraints(&["2*S1_it_0 = 4".into()], &sp).unwrap();
        let (kind, row) = &rows[0];
        assert_eq!(*kind, RowKind::Eq);
        let mut expect = vec![0i64; sp.total() + 1];
        sp.add_iter_coeff(&mut expect, 1, 0, 2);
        expect[sp.total()] = -4;
        assert_eq!(row, &expect);
    }

    #[test]
    fn no_skewing_expands_per_statement() {
        let sp = space();
        let rows = parse_constraints(&["no-skewing".into()], &sp).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors_are_reported() {
        let sp = space();
        assert!(parse_constraints(&["S9_it_0 >= 0".into()], &sp).is_err());
        assert!(parse_constraints(&["S0_it_7 >= 0".into()], &sp).is_err());
        assert!(parse_constraints(&["wat >= 0".into()], &sp).is_err());
        assert!(parse_constraints(&["S0_it_0".into()], &sp).is_err());
        assert!(parse_constraints(&["S0_it_0 >= ".into()], &sp).is_ok()); // empty rhs = 0
    }
}
