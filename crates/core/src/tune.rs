//! The autotuner: machine-driven synthesis of scenario sweeps.
//!
//! Everything below the tuner is mechanism: the scenario engine runs N
//! (SCoP × config) jobs in parallel ([`crate::scenario`]), and the
//! static performance model scores the schedules they produce
//! ([`polytops_machine::model`]). This module supplies the *policy*:
//! [`candidate_lattice`] synthesizes a grid of [`SchedulerConfig`]s
//! from a [`MachineModel`] — base cost-function stacks crossed with
//! post-processing variants whose tile sizes are derived from the cache
//! budget — and [`explore`] runs the grid through a [`ScenarioSet`] on
//! the work-stealing pool, scores every legal schedule with
//! [`model_score`], and returns the winner with its feature vector,
//! model score and oracle verdict.
//!
//! # Determinism
//!
//! The whole loop inherits the engine's bit-identity contract: the
//! candidate grid is a pure function of (SCoP, machine, budget),
//! sharded execution equals sequential execution bit for bit, feature
//! extraction and scoring are exact integer arithmetic, and score ties
//! resolve toward the earlier candidate — so [`explore`] picks the same
//! winner, with the same schedule bytes, on any thread count.
//! `crates/core/tests/model.rs` asserts exactly this.

use polytops_deps::schedule_respects_dependence;
use polytops_ir::{Schedule, Scop};
use polytops_machine::model::{extract_features, model_score, ScheduleFeatures};
pub use polytops_machine::MachineModel;

use crate::config::{PostProcess, SchedulerConfig};
use crate::error::ScheduleError;
use crate::presets;
use crate::registry::{LearnedConfig, ScopRegistry};
use crate::scenario::{ScenarioReport, ScenarioSet};

/// How much exploration [`explore`] may spend.
#[derive(Debug, Clone)]
pub struct TuneBudget {
    /// Maximum candidate configurations (the lattice is truncated
    /// deterministically — plain presets first, then tiled variants).
    pub max_candidates: usize,
    /// Worker threads for the scenario engine's pool (the winner is
    /// identical for every value — see the module docs).
    pub threads: usize,
    /// Assumed trip count of parametric loops during feature
    /// extraction (the model's `param_estimate`). The default of 256 is
    /// deliberately larger than the scheduler's extent-heuristic
    /// estimate (64): ranking transformations means weighing loop work
    /// against fixed costs (barriers, fork/join), and tiny trip counts
    /// would make the model reject parallelism that pays off at any
    /// production size.
    pub param_estimate: i64,
}

impl Default for TuneBudget {
    /// 16 candidates on an engine pool sized like the service default.
    fn default() -> TuneBudget {
        TuneBudget {
            max_candidates: 16,
            threads: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 8)),
            param_estimate: 256,
        }
    }
}

/// One synthesized configuration of the lattice.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Lattice label, e.g. `pluto/tile32+wave`.
    pub name: String,
    /// The configuration itself.
    pub config: SchedulerConfig,
}

/// The outcome of one [`explore`] run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winning scenario report (schedule + pipeline stats).
    pub winner: ScenarioReport,
    /// The winning configuration.
    pub config: SchedulerConfig,
    /// The winner's model score (negated estimated cycles).
    pub score: i64,
    /// The winner's extracted feature vector.
    pub features: ScheduleFeatures,
    /// Whether the winner passed the independent legality oracle
    /// (`schedule_respects_dependence` over every dependence). The
    /// engine schedules legally by construction, so this is `true`
    /// unless there is an internal bug — callers (the service, the
    /// bench) refuse to act on an uncertified winner.
    pub certified: bool,
    /// Every candidate with its model score (`None` when scheduling
    /// failed), in lattice order. On a learned (warm) serve only the
    /// winner appears — the loser scores were not persisted.
    pub candidates: Vec<(String, Option<i64>)>,
    /// How many candidate scenarios were actually scheduled. A learned
    /// serve reports the single winner re-derivation as `0` explored
    /// scenarios — nothing was *explored*, the answer was remembered.
    pub explored_scenarios: usize,
    /// Whether the winner came from the registry's learned store
    /// instead of a fresh exploration.
    pub learned: bool,
}

/// The deterministic tuning key a learned winner is remembered under:
/// every input that shapes the candidate lattice or the scoring —
/// machine fields, the candidate budget and the parameter estimate.
/// The engine's *thread count* is deliberately excluded: exploration is
/// bit-identical on every thread count (the PR 3 contract), so a
/// winner learned on 1 thread serves requests tuned on 8.
pub fn learned_key(machine: &MachineModel, budget: &TuneBudget) -> String {
    format!(
        "line{}:cache{}:vec{}:cores{}:miss{}:sync{}:max{}:est{}",
        machine.cache_line_bytes,
        machine.cache_bytes,
        machine.vector_bytes,
        machine.num_cores,
        machine.miss_penalty_cycles,
        machine.sync_cycles,
        budget.max_candidates,
        budget.param_estimate,
    )
}

/// Largest power of two `≤ v`, clamped into `lo..=hi` (all powers).
/// Shared with [`crate::presets::for_machine`], which must stay
/// consistent with the lattice's tile-edge range.
pub(crate) fn pow2_floor(v: u64, lo: i64, hi: i64) -> i64 {
    let mut p = 1i64;
    while p * 2 <= i64::try_from(v).unwrap_or(i64::MAX) && p * 2 <= hi {
        p *= 2;
    }
    p.max(lo)
}

/// Tile edges worth trying for `scop` on `machine`: the largest
/// power-of-two square-tile edge whose per-array footprint fits the
/// cache budget (clamped into `8..=128`), its half, and the classic 32
/// when the derivation lands elsewhere — **ascending**, so budget
/// truncation keeps the smallest edge's variants (small tiles bound
/// both the footprint and the modeled barrier count of wavefronts;
/// larger edges only help when the small ones leave cache headroom
/// unused, which the scoring pass decides).
pub fn tile_edges(scop: &Scop, machine: &MachineModel) -> Vec<i64> {
    let element = scop
        .arrays
        .iter()
        .map(|a| a.element_size)
        .max()
        .unwrap_or(8)
        .max(1);
    let arrays = u32::try_from(scop.arrays.len().max(1)).unwrap_or(u32::MAX);
    let edge = pow2_floor(machine.square_tile_edge(element, arrays), 8, 128);
    let mut edges = vec![edge, (edge / 2).max(8), 32];
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Synthesizes the candidate lattice for `scop` on `machine`:
///
/// * **base cost stacks** — the `pluto`, `feautrier` and `isl_like`
///   presets (plain `pluto` is always first, so the tuner can never do
///   worse than the default preset under its own model);
/// * **× post-processing variants** — untouched, tiled at each
///   [`tile_edges`] edge, tiled + wavefront, tiled + wavefront +
///   vectorize, tiled + vectorize.
///
/// Truncated (never reordered) to `max` entries.
pub fn candidate_lattice(scop: &Scop, machine: &MachineModel, max: usize) -> Vec<Candidate> {
    let bases: [(&str, SchedulerConfig); 3] = [
        ("pluto", presets::pluto()),
        ("feautrier", presets::feautrier()),
        ("isl_like", presets::isl_like()),
    ];
    let mut out: Vec<Candidate> = bases
        .iter()
        .map(|(name, config)| Candidate {
            name: (*name).to_string(),
            config: config.clone(),
        })
        .collect();
    for edge in tile_edges(scop, machine) {
        for (base, config) in &bases {
            let variants: [(&str, bool, bool); 4] = [
                ("", false, false),
                ("+wave", true, false),
                ("+wave+vec", true, true),
                ("+vec", false, true),
            ];
            for (suffix, wavefront, vectorize) in variants {
                let mut config = config.clone();
                config.post = PostProcess {
                    tile_sizes: vec![edge],
                    wavefront,
                    intra_tile_vectorize: vectorize,
                };
                config.auto_vectorize = vectorize;
                out.push(Candidate {
                    name: format!("{base}/tile{edge}{suffix}"),
                    config,
                });
            }
        }
    }
    out.truncate(max.max(1));
    out
}

/// Explores the candidate lattice of `scop` on `machine` and returns
/// the model's pick.
///
/// Runs every candidate through one [`ScenarioSet`] on
/// `budget.threads` workers (sharing the SCoP's dependence analysis
/// and Farkas caches exactly like any other sweep), extracts features
/// and scores each legal schedule, and selects the highest score —
/// ties toward the earlier candidate. The winner is re-verified
/// against the independent legality oracle
/// ([`TuneOutcome::certified`]).
///
/// # Errors
///
/// Returns the first candidate's [`ScheduleError`] when *no* candidate
/// produces a schedule (a SCoP the engine cannot schedule at all).
pub fn explore(
    scop: &Scop,
    machine: &MachineModel,
    budget: &TuneBudget,
) -> Result<TuneOutcome, ScheduleError> {
    // A one-shot registry entry carries the dependence analysis: the
    // engine seeds its per-run analysis map from resident entries, and
    // feature extraction / certification reuse the same vector — one
    // analyze() per exploration instead of two. The entry's
    // representative is the submitted SCoP verbatim (first
    // registration), so results equal a plain `add_scop` run.
    let (entry, _) = ScopRegistry::new(1).resolve(&scop.name, scop);
    explore_entry(&entry, machine, budget)
}

/// [`explore`] over an already-resolved registry entry — the daemon's
/// entry point: repeated autotune requests for a resident SCoP reuse
/// its persistent dependence analysis and per-layout Farkas caches
/// instead of re-analyzing per request. Tunes the entry's
/// *representative* SCoP (the same value the `schedule` op answers
/// from), so responses stay bit-stable across deduped clients.
///
/// # Errors
///
/// Same contract as [`explore`].
pub fn explore_entry(
    entry: &std::sync::Arc<crate::registry::ScopEntry>,
    machine: &MachineModel,
    budget: &TuneBudget,
) -> Result<TuneOutcome, ScheduleError> {
    let key = learned_key(machine, budget);
    if let Some(remembered) = entry.learned_for(&key) {
        if let Some(outcome) = serve_learned(entry, machine, budget, &remembered) {
            return Ok(outcome);
        }
        // A remembered winner that no longer re-derives (it should:
        // the lattice is pure) falls through to a fresh exploration,
        // which re-learns whatever wins now.
    }
    let outcome = explore_candidates(entry, machine, budget)?;
    entry.learn(
        &key,
        LearnedConfig {
            winner: outcome.winner.name.clone(),
            score: outcome.score,
        },
    );
    Ok(outcome)
}

/// Serves a remembered winner without exploration: re-derive the named
/// candidate from the (pure) lattice, schedule just that one scenario,
/// and certify it. Because scenario results are independent of batch
/// composition (the engine's bit-identity contract), the schedule —
/// and therefore the features and score — is byte-identical to what
/// the original full exploration produced. Returns `None` when the
/// name no longer resolves or the single run fails or scores
/// differently (stale memory: the caller re-explores).
fn serve_learned(
    entry: &std::sync::Arc<crate::registry::ScopEntry>,
    machine: &MachineModel,
    budget: &TuneBudget,
    remembered: &LearnedConfig,
) -> Option<TuneOutcome> {
    let scop = entry.scop();
    let candidates = candidate_lattice(scop, machine, budget.max_candidates);
    let candidate = candidates.iter().find(|c| c.name == remembered.winner)?;
    let deps = entry.deps();
    let mut set = ScenarioSet::new();
    let id = set.add_resident_scop(std::sync::Arc::clone(entry));
    set.add_scenario(id, candidate.name.clone(), candidate.config.clone());
    let results = set.run_sequential();
    let winner = results.into_iter().next()?.ok()?;
    let features = extract_features(scop, &winner.schedule, &deps, budget.param_estimate);
    let score = model_score(machine, &features);
    if score != remembered.score {
        return None;
    }
    let certified = deps.iter().all(|d| {
        schedule_respects_dependence(
            d,
            winner.schedule.stmt(d.src).rows(),
            winner.schedule.stmt(d.dst).rows(),
        )
    });
    Some(TuneOutcome {
        config: candidate.config.clone(),
        winner,
        score,
        features,
        certified,
        candidates: vec![(remembered.winner.clone(), Some(score))],
        explored_scenarios: 0,
        learned: true,
    })
}

/// The cold path of [`explore_entry`]: run the full lattice.
fn explore_candidates(
    entry: &std::sync::Arc<crate::registry::ScopEntry>,
    machine: &MachineModel,
    budget: &TuneBudget,
) -> Result<TuneOutcome, ScheduleError> {
    let scop = entry.scop();
    let candidates = candidate_lattice(scop, machine, budget.max_candidates);
    let deps = entry.deps();
    let mut set = ScenarioSet::new();
    let id = set.add_resident_scop(std::sync::Arc::clone(entry));
    for c in &candidates {
        set.add_scenario(id, c.name.clone(), c.config.clone());
    }
    let results = set.run_sharded(budget.threads);
    let mut best: Option<(usize, i64, ScheduleFeatures)> = None;
    let mut scored = Vec::with_capacity(results.len());
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(report) => {
                let features =
                    extract_features(scop, &report.schedule, &deps, budget.param_estimate);
                let score = model_score(machine, &features);
                scored.push((candidates[i].name.clone(), Some(score)));
                if best.as_ref().is_none_or(|&(_, b, _)| score > b) {
                    best = Some((i, score, features));
                }
            }
            Err(_) => scored.push((candidates[i].name.clone(), None)),
        }
    }
    let Some((idx, score, features)) = best else {
        return Err(results
            .into_iter()
            .find_map(Result::err)
            .unwrap_or(ScheduleError::Config {
                detail: "autotuner has no candidates".to_string(),
            }));
    };
    let winner = results[idx].as_ref().cloned().expect("best is Ok");
    let certified = deps.iter().all(|d| {
        schedule_respects_dependence(
            d,
            winner.schedule.stmt(d.src).rows(),
            winner.schedule.stmt(d.dst).rows(),
        )
    });
    let explored_scenarios = results.len();
    Ok(TuneOutcome {
        config: candidates[idx].config.clone(),
        winner,
        score,
        features,
        certified,
        candidates: scored,
        explored_scenarios,
        learned: false,
    })
}

/// Scores an already-built schedule under the model — the comparison
/// hook the `autotune` bench uses to line the tuner's pick up against
/// a fixed preset's schedule. Returns the feature vector and its
/// score. (Runs its own dependence analysis; inside [`explore`] the
/// analysis is shared instead.)
pub fn score_schedule(
    scop: &Scop,
    sched: &Schedule,
    machine: &MachineModel,
    param_estimate: i64,
) -> (ScheduleFeatures, i64) {
    let deps = polytops_deps::analyze(scop);
    let features = extract_features(scop, sched, &deps, param_estimate);
    let score = model_score(machine, &features);
    (features, score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_leads_with_the_default_preset_and_truncates() {
        let scop = polytops_workloads::matmul();
        let machine = MachineModel::default();
        let lattice = candidate_lattice(&scop, &machine, 16);
        assert_eq!(lattice.len(), 16);
        assert_eq!(lattice[0].name, "pluto");
        assert_eq!(lattice[0].config, presets::pluto());
        assert!(lattice.iter().any(|c| c.name.contains("+wave")));
        let small = candidate_lattice(&scop, &machine, 2);
        assert_eq!(small.len(), 2);
        assert_eq!(small[0].name, "pluto");
    }

    #[test]
    fn second_exploration_is_served_from_the_learned_store() {
        let scop = polytops_workloads::jacobi_1d();
        let machine = MachineModel::default();
        let budget = TuneBudget {
            max_candidates: 6,
            threads: 2,
            ..TuneBudget::default()
        };
        let registry = ScopRegistry::new(4);
        let (entry, _) = registry.resolve(&scop.name, &scop);
        let cold = explore_entry(&entry, &machine, &budget).unwrap();
        assert!(!cold.learned);
        assert_eq!(cold.explored_scenarios, 6);
        assert_eq!(entry.learned_count(), 1);
        let warm = explore_entry(&entry, &machine, &budget).unwrap();
        assert!(warm.learned && warm.certified);
        assert_eq!(warm.explored_scenarios, 0);
        // The warm serve is byte-identical to the cold winner.
        assert_eq!(warm.winner.name, cold.winner.name);
        assert_eq!(warm.winner.schedule, cold.winner.schedule);
        assert_eq!(warm.score, cold.score);
        assert_eq!(warm.features, cold.features);
        assert_eq!(
            warm.candidates,
            vec![(cold.winner.name.clone(), Some(cold.score))]
        );
        // A different budget is a different key: cold again.
        let other = TuneBudget {
            max_candidates: 4,
            ..budget.clone()
        };
        let again = explore_entry(&entry, &machine, &other).unwrap();
        assert!(!again.learned);
        assert_eq!(entry.learned_count(), 2);
    }

    #[test]
    fn tile_edges_shrink_with_the_cache() {
        let scop = polytops_workloads::matmul();
        let big = tile_edges(&scop, &MachineModel::default());
        let small = tile_edges(
            &scop,
            &MachineModel {
                cache_bytes: 8 << 10,
                ..MachineModel::default()
            },
        );
        assert!(big[0] >= small[0], "{big:?} vs {small:?}");
        assert!(small.iter().all(|&e| e >= 8));
    }
}
