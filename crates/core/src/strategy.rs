//! Dynamic scheduling strategies — the Rust analogue of the paper's C++
//! configuration interface (Listing 3).
//!
//! A [`Strategy`] is consulted before each scheduling dimension
//! ([`Strategy::plan`]) and after each solution ([`Strategy::react`]),
//! with full access to the partial schedule. The isl behaviour —
//! Pluto-style proximity with a Feautrier recomputation when the solution
//! is not parallel — is eight lines of [`react`](Strategy::react), just
//! like the paper's listing.

use crate::config::{CostFn, SchedulerConfig};

/// What the strategy wants for the next scheduling dimension.
#[derive(Debug, Clone, Default)]
pub struct DimensionPlan {
    /// Force a distribution: ordered fusion groups of statement ids.
    /// `Some` short-circuits the ILP for this dimension.
    pub distribute: Option<Vec<Vec<usize>>>,
    /// Cost functions in lexicographic priority order.
    pub cost_functions: Vec<CostFn>,
    /// Extra constraint strings (custom-constraint mini-language).
    pub extra_constraints: Vec<String>,
}

/// A found dimension, as shown to [`Strategy::react`].
#[derive(Debug, Clone)]
pub struct DimSolution {
    /// Per-statement schedule rows `[T_it, T_par, T_cst]`.
    pub rows: Vec<Vec<i64>>,
    /// Whether the dimension is parallel (carries no live dependence).
    pub parallel: bool,
    /// Whether the dimension is a constant (splitting) level.
    pub constant: bool,
}

/// Reaction to a found dimension.
#[derive(Debug, Clone)]
pub enum Reaction {
    /// Keep the dimension and move on.
    Accept,
    /// Discard the dimension and solve again with a new plan (at most a
    /// bounded number of times per dimension).
    Recompute(DimensionPlan),
}

/// Read-only scheduler state exposed to strategies.
#[derive(Debug)]
pub struct StrategyState<'a> {
    /// Index of the dimension being planned (0-based).
    pub dimension: usize,
    /// Current band id.
    pub band: usize,
    /// Rows found so far: `rows_so_far[stmt][dim]`.
    pub rows_so_far: &'a [Vec<Vec<i64>>],
    /// Parallel flag of each emitted dimension.
    pub parallel_so_far: &'a [bool],
    /// Number of live (not yet carried) dependences.
    pub live_deps: usize,
    /// Per-statement progression rank (rows spanning the iteration
    /// space); a statement is *complete* when its rank equals its depth.
    pub ranks: &'a [usize],
    /// How many times this dimension has been recomputed already.
    pub recompute_count: usize,
}

/// A dynamic scheduling strategy (paper §III-C2).
pub trait Strategy {
    /// Plans the next dimension.
    fn plan(&mut self, state: &StrategyState<'_>) -> DimensionPlan;

    /// Reacts to a found dimension (default: accept).
    fn react(&mut self, _state: &StrategyState<'_>, _solution: &DimSolution) -> Reaction {
        Reaction::Accept
    }

    /// Strategy name for diagnostics.
    fn name(&self) -> &str {
        "custom"
    }
}

/// The static strategy induced by a [`SchedulerConfig`] (the JSON
/// interface): per-dimension cost functions and constraints, user fusion
/// controls, and optionally the isl-style Feautrier fallback.
#[derive(Debug, Clone)]
pub struct ConfigStrategy {
    config: SchedulerConfig,
}

impl ConfigStrategy {
    /// Wraps a configuration.
    pub fn new(config: SchedulerConfig) -> ConfigStrategy {
        ConfigStrategy { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }
}

impl Strategy for ConfigStrategy {
    fn plan(&mut self, state: &StrategyState<'_>) -> DimensionPlan {
        let dim = state.dimension;
        let distribute = self
            .config
            .fusion
            .iter()
            .find(|f| f.dimension == dim)
            .and_then(|f| {
                if f.total_distribution {
                    Some(Vec::new()) // empty = engine distributes every statement
                } else if f.groups.is_empty() {
                    None // no groups listed and no total distribution: a no-op
                } else {
                    Some(f.groups.clone())
                }
            });
        DimensionPlan {
            distribute,
            cost_functions: self.config.cost_functions.get(dim).clone(),
            extra_constraints: self.config.custom_constraints.get(dim).clone(),
        }
    }

    fn react(&mut self, state: &StrategyState<'_>, solution: &DimSolution) -> Reaction {
        // Listing 3: isl style — when the proximity solution is not
        // parallel and we have not recomputed yet, retry the dimension
        // with Feautrier's cost function.
        if self.config.isl_fallback
            && !solution.parallel
            && !solution.constant
            && state.recompute_count == 0
            && state.live_deps > 0
        {
            return Reaction::Recompute(DimensionPlan {
                distribute: None,
                cost_functions: vec![CostFn::Feautrier],
                extra_constraints: self.config.custom_constraints.get(state.dimension).clone(),
            });
        }
        Reaction::Accept
    }

    fn name(&self) -> &str {
        if self.config.isl_fallback {
            "isl-style"
        } else {
            "config"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FusionControl;

    fn state<'a>(
        rows: &'a [Vec<Vec<i64>>],
        parallel: &'a [bool],
        ranks: &'a [usize],
        recompute_count: usize,
    ) -> StrategyState<'a> {
        StrategyState {
            dimension: 0,
            band: 0,
            rows_so_far: rows,
            parallel_so_far: parallel,
            live_deps: 3,
            ranks,
            recompute_count,
        }
    }

    #[test]
    fn config_strategy_exposes_fusion() {
        let mut cfg = SchedulerConfig::default();
        cfg.fusion.push(FusionControl {
            dimension: 0,
            total_distribution: false,
            groups: vec![vec![0, 1], vec![2]],
        });
        let mut s = ConfigStrategy::new(cfg);
        let plan = s.plan(&state(&[], &[], &[], 0));
        assert_eq!(plan.distribute, Some(vec![vec![0, 1], vec![2]]));
    }

    #[test]
    fn isl_fallback_recomputes_once() {
        let cfg = SchedulerConfig {
            isl_fallback: true,
            ..SchedulerConfig::default()
        };
        let mut s = ConfigStrategy::new(cfg);
        let sol = DimSolution {
            rows: vec![],
            parallel: false,
            constant: false,
        };
        match s.react(&state(&[], &[], &[], 0), &sol) {
            Reaction::Recompute(plan) => {
                assert_eq!(plan.cost_functions, vec![CostFn::Feautrier]);
            }
            Reaction::Accept => panic!("expected recompute"),
        }
        // Second time: accept.
        assert!(matches!(
            s.react(&state(&[], &[], &[], 1), &sol),
            Reaction::Accept
        ));
        // Parallel solutions are accepted directly.
        let par = DimSolution {
            rows: vec![],
            parallel: true,
            constant: false,
        };
        assert!(matches!(
            s.react(&state(&[], &[], &[], 0), &par),
            Reaction::Accept
        ));
    }
}
